//! The science-user client: submit by name, poll status, fetch results.
//!
//! Implements the paper's workflow (§IV, Fig. 5): the client expresses a
//! semantically named compute Interest with no knowledge of cluster
//! locations, receives a job id, checks `/ndn/k8s/status/...` periodically,
//! and finally retrieves the result from the data lake. Every step is
//! timestamped, which is exactly what the `fig5` workflow-trace experiment
//! reports.

use std::collections::HashMap;

use lidc_ndn::app::{Consumer, ConsumerEvent, RetxTimer};
use lidc_ndn::face::FaceIdAlloc;
use lidc_ndn::forwarder::AppRx;
use lidc_ndn::name::Name;
use lidc_ndn::net::attach_app;
use lidc_ndn::packet::{ContentType, Data, Interest};
use lidc_simcore::engine::{Actor, ActorId, Ctx, Msg, Sim};
use lidc_simcore::time::{SimDuration, SimTime};

use crate::naming::{ComputeRequest, JobId};
use crate::status::{JobState, SubmitAck};

/// Client behaviour knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Status poll period.
    pub poll_interval: SimDuration,
    /// Fetch the result object (manifest / small object) after completion.
    pub fetch_results: bool,
    /// Set MustBeFresh on compute submissions (bypasses Content-Store
    /// caching of submit acks; turn off for the caching experiments).
    pub submit_must_be_fresh: bool,
    /// Consumer retransmissions per Interest.
    pub retries: u32,
    /// Consecutive status-poll timeouts before the job is declared lost.
    pub max_status_failures: u32,
    /// Whole-request resubmissions after a lost job or submit NACK
    /// (the overlay then routes to a surviving cluster).
    pub resubmit_attempts: u32,
    /// Base delay for the resubmission backoff: attempt *n* waits a
    /// uniformly jittered `backoff_base × 2^(n-1)` (full jitter, so a
    /// population of clients that failed together does not retry together).
    pub backoff_base: SimDuration,
    /// Upper bound on the (pre-jitter) backoff delay.
    pub backoff_cap: SimDuration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            poll_interval: SimDuration::from_secs(30),
            fetch_results: true,
            submit_must_be_fresh: true,
            retries: 3,
            max_status_failures: 3,
            resubmit_attempts: 2,
            backoff_base: SimDuration::from_secs(1),
            backoff_cap: SimDuration::from_secs(30),
        }
    }
}

/// The full record of one submitted request (the fig-5 timeline).
#[derive(Debug, Clone)]
pub struct JobRun {
    /// The request.
    pub request: ComputeRequest,
    /// Submission instant.
    pub submitted_at: SimTime,
    /// Ack (job id) received.
    pub ack_at: Option<SimTime>,
    /// Assigned job id.
    pub job_id: Option<String>,
    /// Cluster that accepted the job.
    pub cluster: Option<String>,
    /// First `Running` status observed.
    pub first_running_at: Option<SimTime>,
    /// Latest predicted-seconds-to-completion from a Running status (§VII).
    pub last_eta_secs: Option<u64>,
    /// `Completed` status observed.
    pub completed_at: Option<SimTime>,
    /// Result object name.
    pub result_name: Option<Name>,
    /// Result size (bytes).
    pub result_size: u64,
    /// Result object (or manifest) retrieved.
    pub fetched_at: Option<SimTime>,
    /// Terminal error, if the run failed.
    pub error: Option<String>,
    /// Status polls issued.
    pub polls: u32,
    /// Whole-request resubmissions performed.
    pub resubmits: u32,
    /// Answered from a result cache (ack said Completed immediately).
    pub served_from_cache: bool,
    status_failures: u32,
}

impl JobRun {
    fn new(request: ComputeRequest, now: SimTime) -> Self {
        JobRun {
            request,
            submitted_at: now,
            ack_at: None,
            job_id: None,
            cluster: None,
            first_running_at: None,
            last_eta_secs: None,
            completed_at: None,
            result_name: None,
            result_size: 0,
            fetched_at: None,
            error: None,
            polls: 0,
            resubmits: 0,
            served_from_cache: false,
            status_failures: 0,
        }
    }

    /// True when the run reached `Completed` (and fetched the result when
    /// fetching was requested).
    pub fn is_success(&self) -> bool {
        self.completed_at.is_some() && self.error.is_none()
    }

    /// Submission → completed-observed latency.
    pub fn turnaround(&self) -> Option<SimDuration> {
        self.completed_at.map(|t| t.since(self.submitted_at))
    }

    /// Submission → ack latency (the placement latency the network adds).
    pub fn ack_latency(&self) -> Option<SimDuration> {
        self.ack_at.map(|t| t.since(self.submitted_at))
    }
}

/// Submit a compute request (message to the client actor).
#[derive(Debug)]
pub struct Submit(pub ComputeRequest);

#[derive(Debug)]
struct PollTick {
    record: usize,
}

#[derive(Debug)]
struct Resubmit {
    record: usize,
}

/// The client actor.
pub struct ScienceClient {
    consumer: Option<Consumer>,
    config: ClientConfig,
    runs: Vec<JobRun>,
    /// Pending compute-Interest name → record indexes. One name can carry
    /// several records: duplicate submissions of the same request share an
    /// Interest (the PIT aggregates them and the gateway's result cache
    /// dedups them), so every waiter must resolve when the one reply — or
    /// timeout — lands. A single-record map here silently stranded the
    /// overwritten run.
    active_submits: HashMap<Name, Vec<usize>>,
    /// Pending status-Interest name → record indexes (duplicate
    /// submissions are acked with the same job id, so their polls share a
    /// status name too).
    active_polls: HashMap<Name, Vec<usize>>,
    /// Pending result-fetch name → record indexes.
    active_fetches: HashMap<Name, Vec<usize>>,
}

impl ScienceClient {
    /// Build an (unattached) client.
    pub fn new(config: ClientConfig) -> Self {
        ScienceClient {
            consumer: None,
            config,
            runs: Vec::new(),
            active_submits: HashMap::new(),
            active_polls: HashMap::new(),
            active_fetches: HashMap::new(),
        }
    }

    /// Spawn a client and attach it to `fwd` (usually the overlay's access
    /// router). Returns the actor id; send [`Submit`] messages to drive it.
    pub fn deploy(
        config: ClientConfig,
        sim: &mut Sim,
        fwd: ActorId,
        alloc: &FaceIdAlloc,
        label: impl Into<String>,
    ) -> ActorId {
        let client = sim.spawn(label.into(), ScienceClient::new(config));
        let face = attach_app(sim, fwd, client, alloc);
        sim.actor_mut::<ScienceClient>(client).unwrap().consumer =
            Some(Consumer::new(fwd, face));
        client
    }

    /// The recorded runs.
    pub fn runs(&self) -> &[JobRun] {
        &self.runs
    }

    /// Count of successful runs.
    pub fn successes(&self) -> usize {
        self.runs.iter().filter(|r| r.is_success()).count()
    }

    /// The run with id `record` — the single chokepoint for record-index
    /// resolution.
    fn run(&self, record: usize) -> &JobRun {
        // lidc-lint: allow(panic-path) reason="record ids are minted at runs.push and flow only through this client's own maps and self-scheduled messages; runs never shrinks, so every id stays in range"
        &self.runs[record]
    }

    /// Mutable twin of [`ScienceClient::run`].
    fn run_mut(&mut self, record: usize) -> &mut JobRun {
        // lidc-lint: allow(panic-path) reason="record ids are minted at runs.push and flow only through this client's own maps and self-scheduled messages; runs never shrinks, so every id stays in range"
        &mut self.runs[record]
    }

    /// The attached consumer — installed by `deploy` before the actor can
    /// receive a single message.
    fn consumer_mut(&mut self) -> &mut Consumer {
        // lidc-lint: allow(panic-path) reason="deploy() installs the consumer before the actor id escapes, so no message can arrive while it is None"
        self.consumer.as_mut().expect("deployed")
    }

    fn express_submit(&mut self, record: usize, ctx: &mut Ctx<'_>) {
        let request = self.run(record).request.clone();
        let name = request.to_name();
        let interest = Interest::new(name.clone())
            .must_be_fresh(self.config.submit_must_be_fresh)
            .with_lifetime(SimDuration::from_secs(4));
        self.active_submits.entry(name).or_default().push(record);
        let retries = self.config.retries;
        self.consumer_mut().express(ctx, interest, retries);
    }

    fn on_submit(&mut self, request: ComputeRequest, ctx: &mut Ctx<'_>) {
        let record = self.runs.len();
        self.runs.push(JobRun::new(request, ctx.now()));
        self.express_submit(record, ctx);
        ctx.metrics().incr("client.submissions", 1);
    }

    fn schedule_poll(&mut self, record: usize, delay: SimDuration, ctx: &mut Ctx<'_>) {
        ctx.schedule_self(delay, PollTick { record });
    }

    fn express_poll(&mut self, record: usize, ctx: &mut Ctx<'_>) {
        let Some(job_id) = self.run(record).job_id.clone() else {
            return;
        };
        let name = JobId(job_id).status_name();
        let interest = Interest::new(name.clone())
            .must_be_fresh(true)
            .with_lifetime(SimDuration::from_secs(4));
        self.active_polls.entry(name).or_default().push(record);
        self.run_mut(record).polls += 1;
        let retries = self.config.retries;
        self.consumer_mut().express(ctx, interest, retries);
    }

    fn maybe_resubmit(&mut self, record: usize, why: &str, ctx: &mut Ctx<'_>) {
        let attempts = self.config.resubmit_attempts;
        let run = self.run_mut(record);
        if run.resubmits < attempts {
            run.resubmits += 1;
            run.job_id = None;
            run.cluster = None;
            run.ack_at = None;
            run.status_failures = 0;
            ctx.metrics().incr("client.resubmissions", 1);
            let delay = self.backoff_delay(self.run(record).resubmits, ctx);
            ctx.schedule_self(delay, Resubmit { record });
        } else {
            run.error = Some(why.to_owned());
            ctx.metrics().incr("client.failed_runs", 1);
        }
    }

    /// Full-jitter exponential backoff: attempt `n` draws uniformly from
    /// `(0, min(backoff_base × 2^(n-1), backoff_cap)]`. A fixed interval
    /// would make every client that a fault knocked out retry in lock-step
    /// (a synchronized retry storm); the jitter spreads the retry instants.
    fn backoff_delay(&self, attempt: u32, ctx: &mut Ctx<'_>) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(30);
        let ceiling = self
            .config
            .backoff_base
            .mul_f64(f64::from(1u32 << exp))
            .min(self.config.backoff_cap)
            .max(SimDuration::from_nanos(1));
        // Floor at 1% of the ceiling so the delay is never (near) zero.
        ceiling.mul_f64(ctx.rng().next_f64().max(0.01))
    }

    fn on_data(&mut self, data: Data, ctx: &mut Ctx<'_>) {
        // Defense in depth: forwarders already refuse to cache or deliver
        // unverifiable Data, but the client re-checks the signature on the
        // packet it actually received (the last hop is an app face with no
        // verification of its own). A bad packet is treated exactly like a
        // timeout so the resubmission/backoff path steers around the
        // offending producer.
        if !data.verify(None) {
            ctx.metrics().incr("client.verify_failed", 1);
            self.on_failure(Interest::new(data.name.clone()), "verify", ctx);
            return;
        }
        let name = data.name.clone();
        // Drain *every* record waiting on the name: duplicate submissions
        // share one Interest, so one reply settles all of them (records
        // are in submission order; the drain preserves it).
        if let Some(records) = self.active_submits.remove(&name) {
            for record in records {
                self.on_submit_reply(record, &data, ctx);
            }
            return;
        }
        if let Some(records) = self.active_polls.remove(&name) {
            for record in records {
                self.on_poll_reply(record, &data, ctx);
            }
            return;
        }
        // Result fetches may return the object itself or a manifest; either
        // way the name matches what we asked for (or extends it via
        // CanBePrefix — not used here).
        if let Some(records) = self.active_fetches.remove(&name) {
            for record in records {
                if data.content_type == ContentType::Nack {
                    self.run_mut(record).error = Some("result-fetch-nack".to_owned());
                } else {
                    self.run_mut(record).fetched_at = Some(ctx.now());
                    ctx.metrics().incr("client.results_fetched", 1);
                }
            }
        }
    }

    fn on_submit_reply(&mut self, record: usize, data: &Data, ctx: &mut Ctx<'_>) {
        if data.content_type == ContentType::Nack {
            let message = String::from_utf8_lossy(&data.content).into_owned();
            if message.contains("cluster-unavailable") {
                // The gateway's cluster has no ready nodes right now;
                // that is transient, so back off and resubmit (the
                // anycast prefix may route elsewhere) instead of
                // treating it as a terminal rejection.
                self.maybe_resubmit(record, &message, ctx);
                return;
            }
            self.run_mut(record).error = Some(message);
            ctx.metrics().incr("client.rejected_runs", 1);
            return;
        }
        let Some(ack) = SubmitAck::from_text(&String::from_utf8_lossy(&data.content)) else {
            self.run_mut(record).error = Some("unparseable ack".to_owned());
            return;
        };
        let run = self.run_mut(record);
        run.ack_at = Some(ctx.now());
        run.job_id = Some(ack.job_id.clone());
        run.cluster = Some(ack.cluster.clone());
        if ack.state == "Completed" {
            run.served_from_cache = true;
            // Ask for the result pointer right away.
            self.schedule_poll(record, SimDuration::ZERO, ctx);
        } else {
            self.schedule_poll(record, self.config.poll_interval, ctx);
        }
    }

    fn on_poll_reply(&mut self, record: usize, data: &Data, ctx: &mut Ctx<'_>) {
        if data.content_type == ContentType::Nack {
            // Unknown job (e.g. the request was rerouted after a crash).
            self.maybe_resubmit(record, "status-nack", ctx);
            return;
        }
        let Some(state) = JobState::from_text(&String::from_utf8_lossy(&data.content)) else {
            self.run_mut(record).error = Some("unparseable status".to_owned());
            return;
        };
        self.run_mut(record).status_failures = 0;
        match state {
            JobState::Pending => {
                self.schedule_poll(record, self.config.poll_interval, ctx);
            }
            JobState::Running { eta_secs } => {
                let run = self.run_mut(record);
                if run.first_running_at.is_none() {
                    run.first_running_at = Some(ctx.now());
                }
                run.last_eta_secs = eta_secs;
                self.schedule_poll(record, self.config.poll_interval, ctx);
            }
            JobState::Completed { result, size } => {
                let fetch = self.config.fetch_results;
                let run = self.run_mut(record);
                run.completed_at = Some(ctx.now());
                run.result_name = Some(result.clone());
                run.result_size = size;
                ctx.metrics().incr("client.completed_runs", 1);
                if fetch {
                    let interest = Interest::new(result.clone())
                        .with_lifetime(SimDuration::from_secs(4));
                    self.active_fetches.entry(result).or_default().push(record);
                    let retries = self.config.retries;
                    self.consumer_mut().express(ctx, interest, retries);
                }
            }
            JobState::Failed { error } => {
                self.run_mut(record).error = Some(format!("job-failed: {error}"));
                ctx.metrics().incr("client.failed_runs", 1);
            }
        }
    }

    fn on_failure(&mut self, interest: Interest, what: &str, ctx: &mut Ctx<'_>) {
        let name = interest.name.clone();
        if let Some(records) = self.active_submits.remove(&name) {
            for record in records {
                self.maybe_resubmit(record, &format!("submit-{what}"), ctx);
            }
            return;
        }
        if let Some(records) = self.active_polls.remove(&name) {
            for record in records {
                let run = self.run_mut(record);
                run.status_failures += 1;
                if run.status_failures >= self.config.max_status_failures {
                    self.maybe_resubmit(record, &format!("status-{what}"), ctx);
                } else {
                    self.schedule_poll(record, self.config.poll_interval, ctx);
                }
            }
            return;
        }
        if let Some(records) = self.active_fetches.remove(&name) {
            for record in records {
                self.run_mut(record).error = Some(format!("fetch-{what}"));
            }
        }
    }
}

impl Actor for ScienceClient {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let msg = match msg.downcast::<Submit>() {
            Ok(s) => {
                self.on_submit(s.0, ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<PollTick>() {
            Ok(t) => {
                self.express_poll(t.record, ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Resubmit>() {
            Ok(r) => {
                self.express_submit(r.record, ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<AppRx>() {
            Ok(rx) => {
                let event = self.consumer_mut().on_app_rx(&rx);
                match event {
                    Some(ConsumerEvent::Data(data)) => self.on_data(data, ctx),
                    Some(ConsumerEvent::Nack(_, interest)) => {
                        self.on_failure(interest, "nack", ctx)
                    }
                    Some(ConsumerEvent::Timeout(interest)) => {
                        self.on_failure(interest, "timeout", ctx)
                    }
                    None => {}
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(t) = msg.downcast::<RetxTimer>() {
            let event = self.consumer_mut().on_timer(ctx, &t);
            match event {
                Some(ConsumerEvent::Timeout(interest)) => self.on_failure(interest, "timeout", ctx),
                Some(ConsumerEvent::Data(data)) => self.on_data(data, ctx),
                Some(ConsumerEvent::Nack(_, interest)) => self.on_failure(interest, "nack", ctx),
                None => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Draws backoff delays through a real actor context (each actor has
    /// its own derived RNG stream, exactly as a deployed client would).
    struct BackoffProbe {
        config: ClientConfig,
        delays: Vec<SimDuration>,
    }
    struct Go;
    impl Actor for BackoffProbe {
        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            if msg.downcast::<Go>().is_ok() {
                let client = ScienceClient::new(self.config.clone());
                for attempt in 1u32..=8 {
                    self.delays.push(client.backoff_delay(attempt, ctx));
                }
            }
        }
    }

    /// The resubmission backoff is full-jitter exponential: every delay
    /// stays inside the `base × 2^(n-1)` (capped) envelope, consecutive
    /// draws spread out instead of repeating, and two clients that failed
    /// at the same instant do not retry at the same instants.
    #[test]
    fn backoff_is_jittered_exponential() {
        let mut sim = Sim::new(5);
        let config = ClientConfig::default();
        let a = sim.spawn("a", BackoffProbe {
            config: config.clone(),
            delays: Vec::new(),
        });
        let b = sim.spawn("b", BackoffProbe {
            config: config.clone(),
            delays: Vec::new(),
        });
        sim.send(a, Go);
        sim.send(b, Go);
        sim.run();
        let da = sim.actor::<BackoffProbe>(a).unwrap().delays.clone();
        let db = sim.actor::<BackoffProbe>(b).unwrap().delays.clone();
        for (i, d) in da.iter().enumerate() {
            let ceiling = config
                .backoff_base
                .mul_f64(f64::from(1u32 << i))
                .min(config.backoff_cap);
            assert!(
                *d > SimDuration::ZERO && *d <= ceiling,
                "attempt {}: {d:?} outside (0, {ceiling:?}]",
                i + 1
            );
        }
        let distinct: std::collections::BTreeSet<_> = da.iter().collect();
        assert!(distinct.len() >= 6, "jitter spreads the delays: {da:?}");
        assert_ne!(da, db, "sibling clients draw from distinct streams");
    }
}
