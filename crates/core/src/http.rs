//! HTTP(S) front-end for the LIDC framework (§II: "HTTP(s)-based naming of
//! computational jobs can also match them to appropriate endpoints").
//!
//! The [`HttpBridge`] is a protocol translator deployed next to any NDN
//! forwarder: it accepts (simulated) HTTP requests, rewrites them into the
//! same semantic names the NDN clients use, expresses the Interests, and
//! maps the replies back onto HTTP status codes. Science users who cannot
//! speak NDN still get location-independent compute:
//!
//! | HTTP | NDN name |
//! |---|---|
//! | `POST /compute?mem=4&cpu=2&app=BLAST&srr=…` | `/ndn/k8s/compute/mem=4&cpu=2&…` |
//! | `GET /status/<cluster>/<job>` | `/ndn/k8s/status/<cluster>/<job>` |
//! | `GET /data/<path…>` | `/ndn/k8s/data/<path…>` |

use std::collections::HashMap;

use lidc_ndn::app::{Consumer, ConsumerEvent, RetxTimer};
use lidc_ndn::face::FaceIdAlloc;
use lidc_ndn::forwarder::AppRx;
use lidc_ndn::name::Name;
use lidc_ndn::net::attach_app;
use lidc_ndn::packet::{ContentType, Interest};
use lidc_simcore::engine::{Actor, ActorId, Ctx, Msg, Sim};
use lidc_simcore::time::SimDuration;

use crate::naming::{compute_prefix, data_prefix, status_prefix, ComputeRequest};

/// A minimal HTTP request (the simulation carries no headers/bodies beyond
/// what the bridge needs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// `GET` / `POST`.
    pub method: String,
    /// Path plus optional query string, e.g. `/compute?app=BLAST&cpu=2`.
    pub target: String,
}

impl HttpRequest {
    /// Convenience constructor.
    pub fn new(method: impl Into<String>, target: impl Into<String>) -> Self {
        HttpRequest {
            method: method.into(),
            target: target.into(),
        }
    }
}

/// A minimal HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (`202` accepted, `200` ok, `400/404/502/504`).
    pub status: u16,
    /// Body text/bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Send an HTTP request through the bridge; the bridge answers the sender
/// with an [`HttpReply`] carrying the same `tag`.
#[derive(Debug)]
pub struct HttpCall {
    /// The request.
    pub request: HttpRequest,
    /// Who receives the [`HttpReply`].
    pub reply_to: ActorId,
    /// Correlation tag echoed in the reply.
    pub tag: u64,
}

/// The bridge's answer to an [`HttpCall`].
#[derive(Debug)]
pub struct HttpReply {
    /// Correlation tag from the call.
    pub tag: u64,
    /// The response.
    pub response: HttpResponse,
}

struct PendingHttp {
    reply_to: ActorId,
    tag: u64,
}

/// The HTTP→NDN protocol translator actor.
pub struct HttpBridge {
    consumer: Option<Consumer>,
    pending: HashMap<Name, PendingHttp>,
    /// Requests translated (diagnostics).
    pub translated: u64,
    /// Requests rejected before hitting the network (diagnostics).
    pub rejected: u64,
}

impl HttpBridge {
    /// Deploy a bridge attached to `fwd` (an access router or a cluster's
    /// gateway NFD).
    pub fn deploy(
        sim: &mut Sim,
        fwd: ActorId,
        alloc: &FaceIdAlloc,
        label: impl Into<String>,
    ) -> ActorId {
        let bridge = sim.spawn(label.into(), HttpBridge {
            consumer: None,
            pending: HashMap::new(),
            translated: 0,
            rejected: 0,
        });
        let face = attach_app(sim, fwd, bridge, alloc);
        sim.actor_mut::<HttpBridge>(bridge).unwrap().consumer = Some(Consumer::new(fwd, face));
        bridge
    }

    /// Rewrite an HTTP target into the NDN name it denotes.
    pub fn translate(request: &HttpRequest) -> Result<Name, HttpResponse> {
        let target = request.target.as_str();
        if let Some(query) = target
            .strip_prefix("/compute?")
            .or_else(|| target.strip_prefix("/compute/?"))
        {
            let url = format!("https://lidc/compute?{query}");
            return match ComputeRequest::from_http_url(&url) {
                Ok(req) => Ok(req.to_name()),
                Err(e) => Err(HttpResponse {
                    status: 400,
                    body: format!("bad compute query: {e:?}").into_bytes(),
                }),
            };
        }
        if let Some(rest) = target.strip_prefix("/status/") {
            let mut name = status_prefix();
            for part in rest.split('/').filter(|p| !p.is_empty()) {
                name = name.child_str(part);
            }
            if name.len() == status_prefix().len() {
                return Err(HttpResponse {
                    status: 400,
                    body: b"missing job id".to_vec(),
                });
            }
            return Ok(name);
        }
        if let Some(rest) = target.strip_prefix("/data/") {
            let mut name = data_prefix();
            for part in rest.split('/').filter(|p| !p.is_empty()) {
                name = name.child_str(part);
            }
            if name.len() == data_prefix().len() {
                return Err(HttpResponse {
                    status: 400,
                    body: b"missing data path".to_vec(),
                });
            }
            return Ok(name);
        }
        Err(HttpResponse {
            status: 404,
            body: format!("no such route: {target}").into_bytes(),
        })
    }

    fn success_status(name: &Name) -> u16 {
        // Compute submissions are accepted-for-processing; reads are plain OK.
        if compute_prefix().is_prefix_of(name) {
            202
        } else {
            200
        }
    }

    fn respond(&mut self, name: &Name, response: HttpResponse, ctx: &mut Ctx<'_>) {
        if let Some(pending) = self.pending.remove(name) {
            ctx.send(pending.reply_to, HttpReply {
                tag: pending.tag,
                response,
            });
        }
    }
}

impl Actor for HttpBridge {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let msg = match msg.downcast::<HttpCall>() {
            Ok(call) => {
                match Self::translate(&call.request) {
                    Ok(name) => {
                        self.translated += 1;
                        ctx.metrics().incr("http.translated", 1);
                        self.pending.insert(name.clone(), PendingHttp {
                            reply_to: call.reply_to,
                            tag: call.tag,
                        });
                        let must_be_fresh = !data_prefix().is_prefix_of(&name);
                        let interest = Interest::new(name)
                            .must_be_fresh(must_be_fresh)
                            .with_lifetime(SimDuration::from_secs(4));
                        self.consumer
                            .as_mut()
                            // lidc-lint: allow(panic-path) reason="deploy() installs the consumer before the bridge id escapes, so no message can arrive while it is None"
                            .expect("deployed")
                            .express(ctx, interest, 2);
                    }
                    Err(response) => {
                        self.rejected += 1;
                        ctx.metrics().incr("http.rejected", 1);
                        ctx.send(call.reply_to, HttpReply {
                            tag: call.tag,
                            response,
                        });
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<AppRx>() {
            Ok(rx) => {
                // lidc-lint: allow(panic-path) reason="deploy() installs the consumer before the bridge id escapes, so no message can arrive while it is None"
                match self.consumer.as_mut().expect("deployed").on_app_rx(&rx) {
                    Some(ConsumerEvent::Data(data)) => {
                        let name = data.name.clone();
                        let response = if data.content_type == ContentType::Nack {
                            HttpResponse {
                                status: 404,
                                body: data.content.to_vec(),
                            }
                        } else {
                            HttpResponse {
                                status: Self::success_status(&name),
                                body: data.content.to_vec(),
                            }
                        };
                        self.respond(&name, response, ctx);
                    }
                    Some(ConsumerEvent::Nack(reason, interest)) => {
                        let response = HttpResponse {
                            status: 502,
                            body: format!("network nack: {reason:?}").into_bytes(),
                        };
                        self.respond(&interest.name.clone(), response, ctx);
                    }
                    Some(ConsumerEvent::Timeout(interest)) => {
                        let response = HttpResponse {
                            status: 504,
                            body: b"gateway timeout".to_vec(),
                        };
                        self.respond(&interest.name.clone(), response, ctx);
                    }
                    None => {}
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(t) = msg.downcast::<RetxTimer>() {
            if let Some(ConsumerEvent::Timeout(interest)) =
                // lidc-lint: allow(panic-path) reason="deploy() installs the consumer before the bridge id escapes, so no message can arrive while it is None"
                self.consumer.as_mut().expect("deployed").on_timer(ctx, &t)
            {
                let response = HttpResponse {
                    status: 504,
                    body: b"gateway timeout".to_vec(),
                };
                self.respond(&interest.name.clone(), response, ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{LidcCluster, LidcClusterConfig};
    use crate::status::SubmitAck;
    use lidc_simcore::engine::Sim;

    /// Test double collecting HTTP replies.
    struct WebUser {
        replies: Vec<(u64, HttpResponse)>,
    }
    impl Actor for WebUser {
        fn on_message(&mut self, msg: Msg, _ctx: &mut Ctx<'_>) {
            if let Ok(r) = msg.downcast::<HttpReply>() {
                self.replies.push((r.tag, r.response));
            }
        }
    }

    fn world() -> (Sim, LidcCluster, ActorId, ActorId) {
        let mut sim = Sim::new(9);
        let alloc = FaceIdAlloc::new();
        let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("edge"));
        let bridge = HttpBridge::deploy(&mut sim, cluster.gateway_fwd, &alloc, "http-bridge");
        let user = sim.spawn("browser", WebUser { replies: vec![] });
        (sim, cluster, bridge, user)
    }

    fn call(sim: &mut Sim, bridge: ActorId, user: ActorId, tag: u64, method: &str, target: &str) {
        sim.send(bridge, HttpCall {
            request: HttpRequest::new(method, target),
            reply_to: user,
            tag,
        });
    }

    #[test]
    fn translation_table() {
        let name = HttpBridge::translate(&HttpRequest::new(
            "POST",
            "/compute?mem=4&cpu=2&app=BLAST&srr=SRR2931415&ref=HUMAN",
        ))
        .unwrap();
        assert!(compute_prefix().is_prefix_of(&name));
        let name =
            HttpBridge::translate(&HttpRequest::new("GET", "/status/edge/job-0")).unwrap();
        assert_eq!(name.to_uri(), "/ndn/k8s/status/edge/job-0");
        let name = HttpBridge::translate(&HttpRequest::new("GET", "/data/sra/SRR2931415")).unwrap();
        assert_eq!(name.to_uri(), "/ndn/k8s/data/sra/SRR2931415");
        assert_eq!(
            HttpBridge::translate(&HttpRequest::new("GET", "/nope")).unwrap_err().status,
            404
        );
        assert_eq!(
            HttpBridge::translate(&HttpRequest::new("GET", "/compute?cpu=2")).unwrap_err().status,
            400,
            "missing app"
        );
        assert_eq!(
            HttpBridge::translate(&HttpRequest::new("GET", "/status/")).unwrap_err().status,
            400
        );
    }

    #[test]
    fn http_submit_status_and_fetch_full_cycle() {
        let (mut sim, _cluster, bridge, user) = world();
        call(
            &mut sim,
            bridge,
            user,
            1,
            "POST",
            "/compute?mem=4&cpu=2&app=BLAST&srr=SRR2931415&ref=HUMAN",
        );
        sim.run();
        let (job_id, _) = {
            let replies = &sim.actor::<WebUser>(user).unwrap().replies;
            assert_eq!(replies.len(), 1);
            let (tag, response) = &replies[0];
            assert_eq!(*tag, 1);
            assert_eq!(response.status, 202, "{}", response.body_text());
            let ack = SubmitAck::from_text(&response.body_text()).expect("ack body");
            (ack.job_id, ack.cluster)
        };

        // Poll status over HTTP until completed.
        call(&mut sim, bridge, user, 2, "GET", &format!("/status/{job_id}"));
        sim.run();
        {
            let replies = &sim.actor::<WebUser>(user).unwrap().replies;
            let (_, response) = &replies[1];
            assert_eq!(response.status, 200);
            assert!(response.body_text().contains("state="));
        }

        // Data fetch over HTTP (catalog object fits one segment).
        call(&mut sim, bridge, user, 3, "GET", "/data/_catalog");
        sim.run();
        let replies = &sim.actor::<WebUser>(user).unwrap().replies;
        let (_, response) = &replies[2];
        assert_eq!(response.status, 200);
        assert!(response.body_text().contains("/ndn/k8s/data/"));
    }

    #[test]
    fn http_errors_mapped_to_status_codes() {
        let (mut sim, _cluster, bridge, user) = world();
        // Unknown data object → application NACK → 404.
        call(&mut sim, bridge, user, 1, "GET", "/data/does-not-exist");
        // Unknown job → 404.
        call(&mut sim, bridge, user, 2, "GET", "/status/edge/job-999");
        // Bad query → 400 without touching the network.
        call(&mut sim, bridge, user, 3, "POST", "/compute?cpu=notanumber&app=X");
        sim.run();
        let replies = &sim.actor::<WebUser>(user).unwrap().replies;
        assert_eq!(replies.len(), 3);
        let by_tag: std::collections::HashMap<u64, u16> =
            replies.iter().map(|(t, r)| (*t, r.status)).collect();
        assert_eq!(by_tag[&1], 404);
        assert_eq!(by_tag[&2], 404);
        assert_eq!(by_tag[&3], 400);
        let bridge_state = sim.actor::<HttpBridge>(bridge).unwrap();
        assert_eq!(bridge_state.rejected, 1);
        assert_eq!(bridge_state.translated, 2);
    }

    #[test]
    fn http_and_ndn_share_one_result_cache_entry() {
        // An HTTP submission and an NDN submission of the same computation
        // dedupe through the gateway result cache — the naming front-end
        // does not fragment the namespace.
        let mut sim = Sim::new(10);
        let alloc = FaceIdAlloc::new();
        let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig {
            result_cache_capacity: 8,
            ..LidcClusterConfig::named("edge")
        });
        let bridge = HttpBridge::deploy(&mut sim, cluster.gateway_fwd, &alloc, "http-bridge");
        let user = sim.spawn("browser", WebUser { replies: vec![] });
        let client = crate::client::ScienceClient::deploy(
            crate::client::ClientConfig::default(),
            &mut sim,
            cluster.gateway_fwd,
            &alloc,
            "ndn-user",
        );
        sim.send(client, crate::client::Submit(
            ComputeRequest::new("BLAST", 2, 4)
                .with_param("srr", "SRR2931415")
                .with_param("ref", "HUMAN"),
        ));
        sim.run();
        call(
            &mut sim,
            bridge,
            user,
            7,
            "POST",
            "/compute?mem=4&cpu=2&app=BLAST&srr=SRR2931415&ref=HUMAN",
        );
        sim.run();
        let replies = &sim.actor::<WebUser>(user).unwrap().replies;
        let (_, response) = &replies[0];
        assert_eq!(response.status, 202);
        let ack = SubmitAck::from_text(&response.body_text()).unwrap();
        assert_eq!(ack.state, "Completed", "served from the result cache");
        assert_eq!(cluster.gateway_stats(&sim).jobs_created, 1, "no second job");
    }
}
