//! Placement policies: how the network chooses among clusters.
//!
//! In LIDC the placement decision *is* the forwarding decision: several
//! clusters advertise `/ndn/k8s/compute`, and the strategy on the access
//! router picks the face = cluster. The paper ships nearest-cluster
//! forwarding and sketches "intelligence in the network" (§VI/§VII); the
//! ablation `ablate_placement` compares these policies:
//!
//! * [`PlacementPolicy::Nearest`] — lowest routing cost (the paper's
//!   deployed behaviour).
//! * [`PlacementPolicy::RoundRobin`] — spread blindly.
//! * [`PlacementPolicy::Adaptive`] — smoothed-RTT forwarding (network-level
//!   "past performances").
//! * [`PlacementPolicy::LeastLoaded`] — clusters advertise utilisation on a
//!   [`LoadBoard`]; the router picks the least-loaded cluster.
//! * [`PlacementPolicy::Learned`] — predicted completion time (runtime
//!   prediction × load factor), the §VII future-work policy.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use lidc_k8s::apiserver::SharedApi;
use lidc_ndn::face::FaceId;
use lidc_ndn::name::Name;
use lidc_ndn::strategy::{BestRoute, RoundRobin, RttEstimating, Strategy, StrategyCtx};
use lidc_simcore::engine::{Actor, ActorId, Ctx, Msg};
use lidc_simcore::time::SimDuration;

use crate::gateway::SharedPredictor;
use crate::naming::{classify, RequestKind};
use crate::predictor::JobFeatures;

/// Placement policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Lowest-cost (nearest) cluster — the paper's deployed behaviour.
    #[default]
    Nearest,
    /// Cycle through clusters.
    RoundRobin,
    /// Smoothed-RTT adaptive forwarding.
    Adaptive,
    /// Least advertised utilisation.
    LeastLoaded,
    /// Predicted completion time (learned, §VII).
    Learned,
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PlacementPolicy::Nearest => "nearest",
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::Adaptive => "adaptive-rtt",
            PlacementPolicy::LeastLoaded => "least-loaded",
            PlacementPolicy::Learned => "learned",
        };
        f.write_str(s)
    }
}

/// A shared board of per-face (per-cluster) advertised load in `[0, ∞)`.
/// 0 = idle, 1 = fully utilised, >1 = queueing.
#[derive(Clone, Default)]
pub struct LoadBoard {
    // lidc-lint: allow(actor-isolation, horizon-safety) reason="models the NDN load-advertisement side channel: reporters publish and the router strategy reads point values keyed by face, with no cross-event lock holds; horizon runs clamp the sharing groups to zero lookahead (see Overlay::add_cluster and docs/ENGINE.md)"
    inner: Arc<RwLock<HashMap<FaceId, f64>>>,
}

impl LoadBoard {
    /// Empty board.
    pub fn new() -> Self {
        LoadBoard::default()
    }

    /// Publish the load behind `face`.
    pub fn publish(&self, face: FaceId, load: f64) {
        self.inner.write().insert(face, load.max(0.0));
    }

    /// Read the load behind `face` (unknown faces read as 0 = idle,
    /// optimistically).
    pub fn load(&self, face: FaceId) -> f64 {
        self.inner.read().get(&face).copied().unwrap_or(0.0)
    }

    /// Snapshot (diagnostics).
    pub fn snapshot(&self) -> Vec<(FaceId, f64)> {
        let mut v: Vec<(FaceId, f64)> = self.inner.read().iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by_key(|(f, _)| *f);
        v
    }
}

/// Strategy: forward to the least-loaded advertised cluster.
pub struct LeastLoadedStrategy {
    board: LoadBoard,
}

impl LeastLoadedStrategy {
    /// Build over a board.
    pub fn new(board: LoadBoard) -> Self {
        LeastLoadedStrategy { board }
    }
}

impl Strategy for LeastLoadedStrategy {
    fn strategy_name(&self) -> &'static str {
        "least-loaded"
    }

    fn select(&mut self, ctx: &mut StrategyCtx<'_>) -> Vec<FaceId> {
        ctx.nexthops
            .iter()
            .map(|nh| nh.face)
            .min_by(|a, b| {
                let la = self.board.load(*a);
                let lb = self.board.load(*b);
                la.partial_cmp(&lb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(b))
            })
            .map(|f| vec![f])
            .unwrap_or_default()
    }
}

/// Strategy: forward to the cluster with the lowest predicted completion
/// time = predicted runtime × (1 + advertised load). Falls back to pure
/// load when the predictor has no model for the app yet.
pub struct LearnedStrategy {
    board: LoadBoard,
    predictor: SharedPredictor,
}

impl LearnedStrategy {
    /// Build over a board and predictor.
    pub fn new(board: LoadBoard, predictor: SharedPredictor) -> Self {
        LearnedStrategy { board, predictor }
    }

    fn score(&self, face: FaceId, interest_name: &Name) -> f64 {
        let load = self.board.load(face);
        let runtime = match classify(interest_name) {
            RequestKind::Compute(req) => {
                let features = JobFeatures {
                    input_bytes: req
                        .param("size")
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(1_000_000_000),
                    cpu_cores: req.cpu_cores,
                    mem_gib: req.mem_gib,
                };
                self.predictor
                    .read()
                    .predict(&req.app, features)
                    .unwrap_or(1.0)
            }
            _ => 1.0,
        };
        runtime * (1.0 + load)
    }
}

impl Strategy for LearnedStrategy {
    fn strategy_name(&self) -> &'static str {
        "learned"
    }

    fn select(&mut self, ctx: &mut StrategyCtx<'_>) -> Vec<FaceId> {
        let name = ctx.interest.name.clone();
        ctx.nexthops
            .iter()
            .map(|nh| nh.face)
            .min_by(|a, b| {
                let sa = self.score(*a, &name);
                let sb = self.score(*b, &name);
                sa.partial_cmp(&sb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(b))
            })
            .map(|f| vec![f])
            .unwrap_or_default()
    }
}

/// Instantiate the NDN strategy implementing a policy.
pub fn strategy_for(
    policy: PlacementPolicy,
    board: &LoadBoard,
    predictor: &SharedPredictor,
) -> Box<dyn Strategy> {
    match policy {
        PlacementPolicy::Nearest => Box::new(BestRoute::new()),
        PlacementPolicy::RoundRobin => Box::new(RoundRobin::new()),
        PlacementPolicy::Adaptive => Box::new(RttEstimating::new()),
        PlacementPolicy::LeastLoaded => Box::new(LeastLoadedStrategy::new(board.clone())),
        PlacementPolicy::Learned => {
            Box::new(LearnedStrategy::new(board.clone(), predictor.clone()))
        }
    }
}

/// Periodically publishes a cluster's utilisation onto a [`LoadBoard`]
/// (the cluster-capability advertisement of §VII).
pub struct LoadReporter {
    api: SharedApi,
    board: LoadBoard,
    face: FaceId,
    interval: SimDuration,
}

struct ReportTick;

impl LoadReporter {
    /// Build a reporter for the cluster behind `face`.
    pub fn new(api: SharedApi, board: LoadBoard, face: FaceId, interval: SimDuration) -> Self {
        LoadReporter {
            api,
            board,
            face,
            interval,
        }
    }

    fn report(&self) {
        let api = self.api.read();
        let allocatable = api.cluster_allocatable();
        let free = api.cluster_free();
        let used = allocatable.saturating_sub(&free);
        let mut load = used.dominant_utilisation(&allocatable);
        // Unschedulable (queued) pods push the advertised load above 1.
        let queued = api
            .pods
            .values()
            .filter(|p| {
                p.status.phase == lidc_k8s::pod::PodPhase::Pending && p.status.node.is_none()
            })
            .count();
        load += 0.25 * queued as f64;
        self.board.publish(self.face, load);
    }
}

impl Actor for LoadReporter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.report();
        // Background timer: an idle overlay must not keep the sim alive
        // just because load advertisements would tick forever.
        ctx.schedule_self_background(self.interval, ReportTick);
    }

    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        if msg.downcast::<ReportTick>().is_ok() {
            self.report();
            ctx.schedule_self_background(self.interval, ReportTick);
        }
    }
}

/// Spawn a load reporter actor.
pub fn spawn_load_reporter(
    sim: &mut lidc_simcore::engine::Sim,
    label: impl Into<String>,
    api: SharedApi,
    board: LoadBoard,
    face: FaceId,
    interval: SimDuration,
) -> ActorId {
    sim.spawn(label.into(), LoadReporter::new(api, board, face, interval))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidc_ndn::name;
    use lidc_ndn::packet::Interest;
    use lidc_ndn::tables::fib::NextHop;
    use lidc_simcore::rng::DetRng;
    use lidc_simcore::time::SimTime;

    fn f(id: u64) -> FaceId {
        FaceId::from_raw(id)
    }

    fn hops(ids: &[u64]) -> Vec<NextHop> {
        ids.iter().map(|id| NextHop { face: f(*id), cost: 1 }).collect()
    }

    fn run_select(s: &mut dyn Strategy, nexthops: &[NextHop], uri: &str) -> Vec<FaceId> {
        let interest = Interest::new(Name::parse(uri).unwrap());
        let prefix = name!("/ndn/k8s");
        let mut rng = DetRng::new(0);
        let mut ctx = StrategyCtx {
            interest: &interest,
            nexthops,
            prefix: &prefix,
            in_face: f(99),
            is_retransmission: false,
            now: SimTime::ZERO,
            rng: &mut rng,
        };
        s.select(&mut ctx)
    }

    #[test]
    fn load_board_defaults_optimistic() {
        let board = LoadBoard::new();
        assert_eq!(board.load(f(1)), 0.0);
        board.publish(f(1), 0.7);
        assert_eq!(board.load(f(1)), 0.7);
        board.publish(f(2), -3.0);
        assert_eq!(board.load(f(2)), 0.0, "clamped non-negative");
        assert_eq!(board.snapshot().len(), 2);
    }

    #[test]
    fn least_loaded_picks_minimum() {
        let board = LoadBoard::new();
        board.publish(f(1), 0.9);
        board.publish(f(2), 0.2);
        board.publish(f(3), 0.5);
        let mut s = LeastLoadedStrategy::new(board);
        let sel = run_select(&mut s, &hops(&[1, 2, 3]), "/ndn/k8s/compute/mem=1&cpu=1&app=X");
        assert_eq!(sel, vec![f(2)]);
    }

    #[test]
    fn least_loaded_tie_breaks_by_face() {
        let board = LoadBoard::new();
        board.publish(f(1), 0.5);
        board.publish(f(2), 0.5);
        let mut s = LeastLoadedStrategy::new(board);
        let sel = run_select(&mut s, &hops(&[2, 1]), "/ndn/k8s/compute/mem=1&cpu=1&app=X");
        assert_eq!(sel, vec![f(1)], "deterministic tie-break");
    }

    #[test]
    fn learned_prefers_lower_predicted_completion() {
        let board = LoadBoard::new();
        board.publish(f(1), 1.0); // busy
        board.publish(f(2), 0.0); // idle
        let predictor: SharedPredictor =
            Arc::new(RwLock::new(crate::predictor::RuntimePredictor::new()));
        // Same runtime predicted everywhere; load decides.
        predictor.write().observe(
            "BLAST",
            JobFeatures {
                input_bytes: 1_000_000_000,
                cpu_cores: 2,
                mem_gib: 4,
            },
            100.0,
        );
        let mut s = LearnedStrategy::new(board, predictor);
        let sel = run_select(
            &mut s,
            &hops(&[1, 2]),
            "/ndn/k8s/compute/mem=4&cpu=2&app=BLAST&ref=HUMAN&srr=SRR2931415",
        );
        assert_eq!(sel, vec![f(2)]);
    }

    #[test]
    fn empty_nexthops_empty_selection() {
        let board = LoadBoard::new();
        let mut s = LeastLoadedStrategy::new(board.clone());
        assert!(run_select(&mut s, &[], "/ndn/k8s/compute/mem=1&cpu=1&app=X").is_empty());
        let predictor: SharedPredictor =
            Arc::new(RwLock::new(crate::predictor::RuntimePredictor::new()));
        let mut s = LearnedStrategy::new(board, predictor);
        assert!(run_select(&mut s, &[], "/ndn/k8s/compute/mem=1&cpu=1&app=X").is_empty());
    }

    #[test]
    fn strategy_factory_covers_all_policies() {
        let board = LoadBoard::new();
        let predictor: SharedPredictor =
            Arc::new(RwLock::new(crate::predictor::RuntimePredictor::new()));
        for policy in [
            PlacementPolicy::Nearest,
            PlacementPolicy::RoundRobin,
            PlacementPolicy::Adaptive,
            PlacementPolicy::LeastLoaded,
            PlacementPolicy::Learned,
        ] {
            let s = strategy_for(policy, &board, &predictor);
            assert!(!s.strategy_name().is_empty());
        }
    }
}
