//! Gateway-level result caching (paper §VII, implemented future work).
//!
//! "Implementing result caching in the framework would be beneficial,
//! primarily when multiple clients issue identical requests. This can be
//! achieved by uniquely identifying names and using various storage
//! solutions to store the mapping information." — [`ResultCache`] keys on
//! the canonical request name and stores the mapping to the published
//! result object. (The second caching layer is the NDN Content Store on
//! the network path; `ablate_caching` measures both.)
//!
//! Eviction is true LRU: recency is a monotonic tick per entry, indexed by
//! a `BTreeMap<tick, key>`, so evicting the least-recently-used mapping is
//! an O(log n) `pop_first` instead of the full-map scan (plus key clone)
//! the seed shipped with — that scan made insert-heavy gateway churn
//! quadratic. Like the Content Store, the cache can also budget by
//! **bytes** ([`ResultCache::with_budget`]): each mapping already records
//! the result object's size, so a byte budget keeps a few huge BLAST
//! results from squatting on the whole cache. A `budget_bytes` of 0 means
//! no byte limit, and a single result larger than the whole budget is
//! refused without evicting live mappings.

use std::collections::{BTreeMap, HashMap};

use lidc_ndn::name::Name;

/// A cached result mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult {
    /// Data-lake name of the result object.
    pub result: Name,
    /// Result size in bytes.
    pub size: u64,
    /// Job that produced it (provenance).
    pub job_id: String,
}

/// Canonical-request-name → result mapping with LRU eviction.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    /// Byte budget over `CachedResult::size` (0 = no byte limit).
    budget_bytes: u64,
    entries: HashMap<String, (CachedResult, u64)>,
    /// Recency index: tick → key. Ticks are unique, so `pop_first` is the
    /// exact LRU victim.
    lru: BTreeMap<u64, String>,
    bytes_used: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Results refused because they exceed the whole byte budget.
    admission_rejections: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` mappings (0 disables it), with
    /// no byte limit.
    pub fn new(capacity: usize) -> Self {
        Self::with_budget(capacity, 0)
    }

    /// A cache bounded by both a mapping count and a byte budget over the
    /// cached results' sizes (`budget_bytes` 0 = no byte limit).
    pub fn with_budget(capacity: usize, budget_bytes: u64) -> Self {
        ResultCache {
            capacity,
            budget_bytes,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            bytes_used: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            admission_rejections: 0,
        }
    }

    /// Whether caching is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of cached mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Sum of the cached results' sizes.
    pub fn bytes_used(&self) -> u64 {
        self.bytes_used
    }

    /// The configured byte budget (0 = no byte limit).
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Lifetime LRU evictions (count- or byte-driven).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Lifetime results refused for exceeding the whole byte budget.
    pub fn admission_rejections(&self) -> u64 {
        self.admission_rejections
    }

    /// Look up a canonical request key.
    pub fn get(&mut self, key: &str) -> Option<CachedResult> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((result, last_used)) => {
                self.lru.remove(last_used);
                *last_used = self.tick;
                self.lru.insert(self.tick, key.to_owned());
                self.hits += 1;
                Some(result.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Record a completed result.
    pub fn insert(&mut self, key: impl Into<String>, result: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        if self.budget_bytes > 0 && result.size > self.budget_bytes {
            // A result the budget can never hold: refuse it instead of
            // flushing every live mapping (any resident entry under this
            // key stays).
            self.admission_rejections += 1;
            return;
        }
        self.tick += 1;
        let key = key.into();
        let size = result.size;
        if let Some((old, old_tick)) = self.entries.insert(key.clone(), (result, self.tick)) {
            self.lru.remove(&old_tick);
            self.bytes_used -= old.size;
        }
        self.bytes_used += size;
        self.lru.insert(self.tick, key);
        while self.entries.len() > self.capacity
            || (self.budget_bytes > 0 && self.bytes_used > self.budget_bytes)
        {
            let Some((_, victim)) = self.lru.pop_first() else {
                break;
            };
            if let Some((old, _)) = self.entries.remove(&victim) {
                self.bytes_used -= old.size;
                self.evictions += 1;
            }
        }
    }

    /// Drop a mapping (e.g. when the result object is deleted).
    pub fn invalidate(&mut self, key: &str) -> bool {
        match self.entries.remove(key) {
            Some((old, tick)) => {
                self.lru.remove(&tick);
                self.bytes_used -= old.size;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidc_ndn::name;

    fn result(job: &str) -> CachedResult {
        CachedResult {
            result: name!("/ndn/k8s/data/results/x"),
            size: 941,
            job_id: job.to_owned(),
        }
    }

    fn sized_result(job: &str, size: u64) -> CachedResult {
        CachedResult {
            size,
            ..result(job)
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = ResultCache::new(4);
        assert_eq!(c.get("k1"), None);
        c.insert("k1", result("job-1"));
        assert_eq!(c.get("k1").unwrap().job_id, "job-1");
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut c = ResultCache::new(2);
        c.insert("a", result("1"));
        c.insert("b", result("2"));
        let _ = c.get("a"); // refresh a
        c.insert("c", result("3")); // evicts b
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none());
        assert!(c.get("c").is_some());
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ResultCache::new(0);
        assert!(!c.enabled());
        c.insert("a", result("1"));
        assert!(c.is_empty());
        assert_eq!(c.get("a"), None);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = ResultCache::new(2);
        c.insert("a", result("1"));
        assert!(c.invalidate("a"));
        assert!(!c.invalidate("a"));
        assert_eq!(c.get("a"), None);
        assert_eq!(c.bytes_used(), 0);
    }

    #[test]
    fn overwrite_same_key_keeps_len() {
        let mut c = ResultCache::new(2);
        c.insert("a", result("1"));
        c.insert("a", result("2"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("a").unwrap().job_id, "2");
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let mut c = ResultCache::with_budget(16, 1000);
        c.insert("a", sized_result("1", 400));
        c.insert("b", sized_result("2", 400));
        let _ = c.get("a"); // "b" becomes LRU
        c.insert("c", sized_result("3", 400)); // 1200 > 1000: evict "b"
        assert_eq!(c.bytes_used(), 800);
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none(), "LRU evicted by byte pressure");
        assert!(c.get("c").is_some());
    }

    #[test]
    fn zero_budget_means_no_byte_limit() {
        let mut c = ResultCache::new(3);
        assert_eq!(c.budget_bytes(), 0);
        for i in 0..3 {
            c.insert(format!("k{i}"), sized_result("big", u64::MAX / 8));
        }
        assert_eq!(c.len(), 3, "huge results admitted without a budget");
        assert_eq!(c.admission_rejections(), 0);
    }

    #[test]
    fn oversized_result_refused_without_flushing() {
        let mut c = ResultCache::with_budget(16, 1000);
        c.insert("a", sized_result("1", 300));
        c.insert("huge", sized_result("2", 5000));
        assert_eq!(c.admission_rejections(), 1);
        assert!(c.get("huge").is_none());
        assert!(c.get("a").is_some(), "live mapping untouched");
        assert_eq!(c.bytes_used(), 300);
    }

    #[test]
    fn overwrite_reaccounts_bytes() {
        let mut c = ResultCache::with_budget(4, 1000);
        c.insert("a", sized_result("1", 600));
        c.insert("a", sized_result("2", 200));
        assert_eq!(c.bytes_used(), 200, "overwrite releases the old size");
        c.insert("b", sized_result("3", 700));
        assert_eq!(c.len(), 2, "200 + 700 fits after the re-account");
    }
}
