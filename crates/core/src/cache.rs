//! Gateway-level result caching (paper §VII, implemented future work).
//!
//! "Implementing result caching in the framework would be beneficial,
//! primarily when multiple clients issue identical requests. This can be
//! achieved by uniquely identifying names and using various storage
//! solutions to store the mapping information." — [`ResultCache`] keys on
//! the canonical request name and stores the mapping to the published
//! result object. (The second caching layer is the NDN Content Store on
//! the network path; `ablate_caching` measures both.)

use std::collections::HashMap;

use lidc_ndn::name::Name;

/// A cached result mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResult {
    /// Data-lake name of the result object.
    pub result: Name,
    /// Result size in bytes.
    pub size: u64,
    /// Job that produced it (provenance).
    pub job_id: String,
}

/// Canonical-request-name → result mapping with LRU eviction.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    entries: HashMap<String, (CachedResult, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` mappings (0 disables it).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Whether caching is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of cached mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Look up a canonical request key.
    pub fn get(&mut self, key: &str) -> Option<CachedResult> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((result, last_used)) => {
                *last_used = self.tick;
                self.hits += 1;
                Some(result.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Record a completed result.
    pub fn insert(&mut self, key: impl Into<String>, result: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        self.entries.insert(key.into(), (result, self.tick));
        while self.entries.len() > self.capacity {
            // Evict the least-recently-used entry (deterministic: the
            // smallest tick; ties impossible since ticks are unique).
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k.clone())
                .expect("nonempty");
            self.entries.remove(&lru);
        }
    }

    /// Drop a mapping (e.g. when the result object is deleted).
    pub fn invalidate(&mut self, key: &str) -> bool {
        self.entries.remove(key).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidc_ndn::name;

    fn result(job: &str) -> CachedResult {
        CachedResult {
            result: name!("/ndn/k8s/data/results/x"),
            size: 941,
            job_id: job.to_owned(),
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = ResultCache::new(4);
        assert_eq!(c.get("k1"), None);
        c.insert("k1", result("job-1"));
        assert_eq!(c.get("k1").unwrap().job_id, "job-1");
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut c = ResultCache::new(2);
        c.insert("a", result("1"));
        c.insert("b", result("2"));
        let _ = c.get("a"); // refresh a
        c.insert("c", result("3")); // evicts b
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none());
        assert!(c.get("c").is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ResultCache::new(0);
        assert!(!c.enabled());
        c.insert("a", result("1"));
        assert!(c.is_empty());
        assert_eq!(c.get("a"), None);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = ResultCache::new(2);
        c.insert("a", result("1"));
        assert!(c.invalidate("a"));
        assert!(!c.invalidate("a"));
        assert_eq!(c.get("a"), None);
    }

    #[test]
    fn overwrite_same_key_keeps_len() {
        let mut c = ResultCache::new(2);
        c.insert("a", result("1"));
        c.insert("a", result("2"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("a").unwrap().job_id, "2");
    }
}
