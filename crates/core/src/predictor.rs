//! Completion-time prediction from past runs (paper §VII, implemented
//! future work).
//!
//! "We aim to … optimize the system by leveraging machine learning
//! algorithms to predict completion times. Once the network knows cluster
//! capabilities, it can select the best cluster based on computing and
//! timing requirements, data size, past performances, and other factors."
//!
//! [`RuntimePredictor`] is an online least-squares regressor over
//! `(log input size, cpu, mem, app)` features, trained incrementally from
//! observed completions. The `Learned` placement policy combines its
//! predictions with advertised cluster load.

use std::collections::HashMap;

/// Feature vector for one job observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobFeatures {
    /// Input size in bytes.
    pub input_bytes: u64,
    /// Requested CPU cores.
    pub cpu_cores: u64,
    /// Requested memory (GiB).
    pub mem_gib: u64,
}

impl JobFeatures {
    fn vector(&self) -> [f64; 4] {
        [
            1.0,
            // log1p keeps multi-GB inputs on a sane scale.
            ((self.input_bytes as f64) + 1.0).ln(),
            self.cpu_cores as f64,
            self.mem_gib as f64,
        ]
    }
}

/// Per-application online linear model trained by stochastic gradient
/// descent on normalised features.
#[derive(Debug, Clone)]
struct AppModel {
    weights: [f64; 4],
    observations: u64,
    /// Running mean of the target (used before the model has converged and
    /// as a sanity fallback).
    mean_secs: f64,
}

impl AppModel {
    fn new() -> Self {
        AppModel {
            weights: [0.0; 4],
            observations: 0,
            mean_secs: 0.0,
        }
    }

    fn predict(&self, features: &JobFeatures) -> f64 {
        let x = features.vector();
        let raw: f64 = self.weights.iter().zip(&x).map(|(w, xi)| w * xi).sum();
        if self.observations < 3 || !raw.is_finite() || raw < 0.0 {
            self.mean_secs
        } else {
            raw
        }
    }

    fn observe(&mut self, features: &JobFeatures, actual_secs: f64) {
        self.observations += 1;
        let n = self.observations as f64;
        self.mean_secs += (actual_secs - self.mean_secs) / n;
        // SGD with a decaying learning rate; features are O(1)–O(25) so a
        // scale-normalised step keeps updates stable.
        let x = features.vector();
        let prediction: f64 = self.weights.iter().zip(&x).map(|(w, xi)| w * xi).sum();
        let error = actual_secs - prediction;
        let x_norm_sq: f64 = x.iter().map(|v| v * v).sum();
        let rate = 0.5 / (1.0 + 0.05 * n);
        let step = rate * error / x_norm_sq.max(1e-9);
        for (w, xi) in self.weights.iter_mut().zip(&x) {
            *w += step * xi;
        }
    }
}

/// The online completion-time predictor.
#[derive(Debug, Clone, Default)]
pub struct RuntimePredictor {
    models: HashMap<String, AppModel>,
}

impl RuntimePredictor {
    /// An untrained predictor.
    pub fn new() -> Self {
        RuntimePredictor::default()
    }

    /// Number of observations recorded for `app`.
    pub fn observations(&self, app: &str) -> u64 {
        self.models.get(app).map(|m| m.observations).unwrap_or(0)
    }

    /// Record a completed run.
    pub fn observe(&mut self, app: &str, features: JobFeatures, actual_secs: f64) {
        self.models
            .entry(app.to_owned())
            .or_insert_with(AppModel::new)
            .observe(&features, actual_secs);
    }

    /// Predict the runtime (seconds) of a prospective job. `None` until the
    /// app has at least one observation.
    pub fn predict(&self, app: &str, features: JobFeatures) -> Option<f64> {
        let model = self.models.get(app)?;
        if model.observations == 0 {
            return None;
        }
        Some(model.predict(&features).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidc_simcore::rng::DetRng;

    fn features(gb: f64, cpu: u64, mem: u64) -> JobFeatures {
        JobFeatures {
            input_bytes: (gb * 1e9) as u64,
            cpu_cores: cpu,
            mem_gib: mem,
        }
    }

    #[test]
    fn untrained_returns_none() {
        let p = RuntimePredictor::new();
        assert_eq!(p.predict("BLAST", features(2.0, 2, 4)), None);
        assert_eq!(p.observations("BLAST"), 0);
    }

    #[test]
    fn single_observation_predicts_mean() {
        let mut p = RuntimePredictor::new();
        p.observe("BLAST", features(2.0, 2, 4), 1000.0);
        let pred = p.predict("BLAST", features(2.0, 2, 4)).unwrap();
        assert!((pred - 1000.0).abs() < 1e-9, "mean fallback, got {pred}");
    }

    #[test]
    fn converges_on_linear_ground_truth() {
        // Ground truth: secs = 500·ln(bytes) − 20·cpu (a plausible shape).
        let mut p = RuntimePredictor::new();
        let mut rng = DetRng::new(1);
        for _ in 0..4000 {
            let gb = 0.5 + rng.next_f64() * 8.0;
            let cpu = 1 + rng.next_below(8);
            let f = features(gb, cpu, 4);
            let truth = 500.0 * ((f.input_bytes as f64) + 1.0).ln() - 20.0 * cpu as f64;
            p.observe("BLAST", f, truth);
        }
        // Held-out checks.
        for (gb, cpu) in [(1.0, 2u64), (4.0, 4), (7.5, 1)] {
            let f = features(gb, cpu, 4);
            let truth = 500.0 * ((f.input_bytes as f64) + 1.0).ln() - 20.0 * cpu as f64;
            let pred = p.predict("BLAST", f).unwrap();
            let rel = (pred - truth).abs() / truth;
            assert!(rel < 0.05, "gb={gb} cpu={cpu}: pred {pred} vs {truth} ({rel})");
        }
    }

    #[test]
    fn models_are_per_app() {
        let mut p = RuntimePredictor::new();
        p.observe("FAST", features(1.0, 2, 4), 10.0);
        p.observe("SLOW", features(1.0, 2, 4), 10_000.0);
        let fast = p.predict("FAST", features(1.0, 2, 4)).unwrap();
        let slow = p.predict("SLOW", features(1.0, 2, 4)).unwrap();
        assert!(slow > fast * 10.0);
    }

    #[test]
    fn predictions_never_negative() {
        let mut p = RuntimePredictor::new();
        for i in 0..10 {
            p.observe("X", features(0.1, 1, 1), 5.0 + i as f64);
        }
        let pred = p.predict("X", features(100.0, 64, 512)).unwrap();
        assert!(pred >= 0.0);
    }

    #[test]
    fn bigger_inputs_predict_longer_runtimes_after_training() {
        let mut p = RuntimePredictor::new();
        let mut rng = DetRng::new(2);
        for _ in 0..2000 {
            let gb = 0.5 + rng.next_f64() * 8.0;
            let f = features(gb, 2, 4);
            // Truth proportional to log-size (matches the feature basis).
            let truth = 1000.0 * ((f.input_bytes as f64) + 1.0).ln();
            p.observe("BLAST", f, truth);
        }
        let small = p.predict("BLAST", features(1.0, 2, 4)).unwrap();
        let large = p.predict("BLAST", features(8.0, 2, 4)).unwrap();
        assert!(large > small);
    }
}
