//! The multi-cluster overlay: clusters joined through an access router.
//!
//! "Our framework creates a loosely coupled overlay of compute clusters
//! using named cluster endpoints … if multiple clusters expose the same
//! service over an NDN network, the network can bring the compute request
//! to the nearest (or the best) compute cluster." (§I, §III-B)
//!
//! [`Overlay::build`] deploys N [`LidcCluster`]s, wires each gateway NFD to
//! a WAN access router with per-cluster link latency, installs the anycast
//! prefix registrations, arms the placement strategy, and starts the load
//! reporters. Clusters can join ([`Overlay::add_cluster`]), fail
//! ([`Overlay::fail_cluster`]), recover, or leave at any point — the churn
//! experiments exercise exactly this.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use lidc_ndn::face::{FaceId, FaceIdAlloc, LinkProps};
use lidc_ndn::forwarder::{DegradeLink, Forwarder, ForwarderConfig, SetFaceUp};
use lidc_simcore::engine::{ActorId, GroupId, Sim};
use lidc_simcore::time::SimDuration;

use crate::cluster::{LidcCluster, LidcClusterConfig};
use crate::gateway::SharedPredictor;
use crate::naming::compute_prefix;
use crate::placement::{spawn_load_reporter, strategy_for, LoadBoard, PlacementPolicy};
use crate::predictor::RuntimePredictor;

/// Parameters for one overlay member.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Cluster name.
    pub name: String,
    /// WAN latency between the access router and this cluster.
    pub latency: SimDuration,
    /// Node count.
    pub nodes: u32,
    /// Cores per node.
    pub node_cpu_cores: u64,
    /// Memory per node (GiB).
    pub node_mem_gib: u64,
    /// Gateway result-cache capacity.
    pub cache_capacity: usize,
    /// Gateway result-cache byte budget (0 = no byte limit).
    pub cache_budget_bytes: u64,
    /// Submit-ack freshness (network-level caching knob).
    pub ack_freshness: SimDuration,
}

impl ClusterSpec {
    /// A single-node 16-core/64-GiB cluster at the given WAN latency —
    /// the paper's MicroK8s-VM shape.
    pub fn new(name: impl Into<String>, latency: SimDuration) -> Self {
        ClusterSpec {
            name: name.into(),
            latency,
            nodes: 1,
            node_cpu_cores: 16,
            node_mem_gib: 64,
            cache_capacity: 0,
            cache_budget_bytes: 0,
            ack_freshness: SimDuration::ZERO,
        }
    }

    /// Builder: node shape.
    pub fn with_nodes(mut self, nodes: u32, cpu: u64, mem_gib: u64) -> Self {
        self.nodes = nodes;
        self.node_cpu_cores = cpu;
        self.node_mem_gib = mem_gib;
        self
    }

    /// Builder: enable the gateway result cache.
    pub fn with_cache(mut self, capacity: usize, ack_freshness: SimDuration) -> Self {
        self.cache_capacity = capacity;
        self.ack_freshness = ack_freshness;
        self
    }

    /// Builder: byte-budget the gateway result cache (0 = no byte limit).
    pub fn with_cache_budget(mut self, budget_bytes: u64) -> Self {
        self.cache_budget_bytes = budget_bytes;
        self
    }
}

/// Overlay-wide parameters.
#[derive(Debug, Clone)]
pub struct OverlayConfig {
    /// Placement policy for `/ndn/k8s/compute`.
    pub placement: PlacementPolicy,
    /// Member clusters.
    pub clusters: Vec<ClusterSpec>,
    /// Load-advertisement period.
    pub load_report_interval: SimDuration,
    /// Whether clusters load the genomics datasets at deploy time.
    pub load_datasets: bool,
    /// Access-router Content Store capacity (0 disables network caching).
    pub router_cs_capacity: usize,
    /// Access-router Content Store byte budget (0 = no byte limit).
    /// `Default::default()` pairs the default capacity (4096) with its
    /// derived budget (one 1 MiB segment per slot); when overriding
    /// `router_cs_capacity` by struct update, set this too (e.g. via
    /// `lidc_ndn::tables::cs::default_budget_bytes(capacity)`) so the
    /// budget tracks the new capacity.
    pub router_cs_budget_bytes: u64,
    /// PIT/CS/DNL shard count for every forwarder the overlay stands up
    /// (the access router and each member cluster's two NFDs). 1 = the
    /// single-shard tables and serial ingress; more shards enable the
    /// two-phase (and, for large bursts, multi-threaded) ingress — see
    /// [`lidc_ndn::forwarder::ForwarderConfig::shards`].
    pub forwarder_shards: usize,
    /// Gateways train the overlay-wide predictor (required by the
    /// [`PlacementPolicy::Learned`] strategy). The shared predictor is
    /// cross-group shared state that the horizon scheduler's link-latency
    /// lookahead cannot see, so when `true` (the default) every overlay
    /// group is clamped to zero lookahead against every other — correct in
    /// both engine modes, but no cross-cluster slack. Benches that want
    /// real horizon slack set this to `false` *and* use a placement that
    /// reads no shared board ([`PlacementPolicy::Nearest`] /
    /// [`PlacementPolicy::RoundRobin`] / [`PlacementPolicy::Adaptive`]);
    /// with `false`, each gateway keeps its private predictor and
    /// `Learned` placement would see an untrained model.
    pub shared_predictor: bool,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            placement: PlacementPolicy::Nearest,
            clusters: Vec::new(),
            load_report_interval: SimDuration::from_secs(5),
            load_datasets: true,
            router_cs_capacity: 4096,
            router_cs_budget_bytes: lidc_ndn::tables::cs::default_budget_bytes(4096),
            forwarder_shards: 1,
            shared_predictor: true,
        }
    }
}

/// A deployed overlay.
pub struct Overlay {
    /// The WAN access router clients attach to.
    pub router: ActorId,
    /// World face-id allocator.
    pub alloc: FaceIdAlloc,
    /// Member clusters, in join order.
    pub clusters: Vec<LidcCluster>,
    /// Advertised-load board.
    pub board: LoadBoard,
    /// The overlay-level predictor (used by the `Learned` policy; trained
    /// by the experiment harness or by gateways feeding observations up).
    pub predictor: SharedPredictor,
    faces: HashMap<String, FaceId>,
    cluster_faces: HashMap<String, FaceId>,
    groups: HashMap<String, GroupId>,
    config: OverlayConfig,
}

impl Overlay {
    /// Build the overlay.
    pub fn build(sim: &mut Sim, config: OverlayConfig) -> Overlay {
        let alloc = FaceIdAlloc::new();
        let router = sim.spawn(
            "wan-router",
            Forwarder::new("wan-router", ForwarderConfig {
                cs_capacity: config.router_cs_capacity,
                cs_budget_bytes: config.router_cs_budget_bytes,
                shards: config.forwarder_shards.max(1),
                ..Default::default()
            }),
        );
        let board = LoadBoard::new();
        let predictor: SharedPredictor = Arc::new(RwLock::new(RuntimePredictor::new())); // lidc-lint: allow(actor-isolation) reason="constructor for the SharedPredictor handle justified on the alias in gateway.rs"
        let mut overlay = Overlay {
            router,
            alloc,
            clusters: Vec::new(),
            board,
            predictor,
            faces: HashMap::new(),
            cluster_faces: HashMap::new(),
            groups: HashMap::new(),
            config: config.clone(),
        };
        overlay.apply_placement(sim, config.placement);
        let specs = config.clusters.clone();
        for spec in specs {
            overlay.add_cluster(sim, spec);
        }
        overlay
    }

    /// Install the placement strategy for the compute prefix.
    pub fn apply_placement(&mut self, sim: &mut Sim, policy: PlacementPolicy) {
        self.config.placement = policy;
        let strategy = strategy_for(policy, &self.board, &self.predictor);
        sim.actor_mut::<Forwarder>(self.router)
            .expect("router")
            .set_strategy(compute_prefix(), strategy);
    }

    /// The current placement policy.
    pub fn placement(&self) -> PlacementPolicy {
        self.config.placement
    }

    /// Deploy and join a new cluster (works mid-experiment: no client
    /// reconfiguration is needed — that is the point of the paper).
    ///
    /// Each member gets its own actor **group** named after the cluster:
    /// every actor the deploy spawns (NFDs, gateway, fileserver, the whole
    /// Kubernetes control plane and its nodes, and pods they spawn later)
    /// lands in it, while the access router stays in the builder's group.
    /// Under the horizon scheduler ([`Sim::set_horizon`]) members advance
    /// independently within their WAN-latency lookahead (declared by
    /// [`lidc_ndn::net::connect`]); shared-state couplings — the overlay
    /// predictor and the [`LoadBoard`] — are clamped to zero lookahead so
    /// both engine modes stay bit-identical (see docs/ENGINE.md).
    pub fn add_cluster(&mut self, sim: &mut Sim, spec: ClusterSpec) -> usize {
        let group = sim.new_group(spec.name.clone());
        let prev = sim.set_default_group(group);
        let cluster_config = LidcClusterConfig {
            name: spec.name.clone(),
            nodes: spec.nodes,
            node_cpu_cores: spec.node_cpu_cores,
            node_mem_gib: spec.node_mem_gib,
            result_cache_capacity: spec.cache_capacity,
            result_cache_budget_bytes: spec.cache_budget_bytes,
            ack_freshness: spec.ack_freshness,
            load_datasets: self.config.load_datasets,
            forwarder_shards: self.config.forwarder_shards.max(1),
            ..Default::default()
        };
        let cluster = LidcCluster::deploy(sim, &self.alloc, cluster_config);
        if self.config.shared_predictor {
            // Every gateway trains the overlay-wide predictor, so the
            // Learned placement strategy sees observations from all members.
            sim.actor_mut::<crate::gateway::Gateway>(cluster.gateway_app)
                .expect("gateway alive")
                .set_predictor(self.predictor.clone());
        }
        let (router_face, cluster_face) = lidc_ndn::net::connect(
            sim,
            self.router,
            cluster.gateway_fwd,
            &self.alloc,
            LinkProps::with_latency(spec.latency),
        );
        // Routing cost = link latency in microseconds (Nearest = BestRoute
        // then picks the lowest-latency cluster).
        let cost = u32::try_from(spec.latency.as_nanos() / 1_000).unwrap_or(u32::MAX);
        cluster.register_on(sim, self.router, router_face, cost);
        spawn_load_reporter(
            sim,
            format!("{}-load-reporter", spec.name),
            cluster.k8s.api.clone(),
            self.board.clone(),
            router_face,
            self.config.load_report_interval,
        );
        sim.set_default_group(prev);
        self.clamp_shared_state_lookahead(sim, group);
        self.faces.insert(spec.name.clone(), router_face);
        self.cluster_faces.insert(spec.name.clone(), cluster_face);
        self.groups.insert(spec.name.clone(), group);
        self.clusters.push(cluster);
        self.clusters.len() - 1
    }

    /// Zero out lookahead wherever shared memory couples this cluster's
    /// group to another group behind the horizon scheduler's back.
    ///
    /// The causality assert only sees *messages*; the overlay predictor and
    /// the [`LoadBoard`] are `Arc`-shared reads/writes with no message
    /// carrying them, so a group running ahead could publish state that an
    /// earlier-in-virtual-time reader then observes — diverging from the
    /// legacy engine. Zero lookahead in both directions pins the coupled
    /// groups to tie-step (global-order) interleaving, which is exactly the
    /// legacy schedule for those events.
    fn clamp_shared_state_lookahead(&self, sim: &mut Sim, group: GroupId) {
        if self.config.shared_predictor {
            // All gateways write the predictor, the router's Learned
            // strategy reads it: clamp against every other group.
            for other in sim.group_ids() {
                if other != group {
                    sim.set_lookahead(group, other, SimDuration::ZERO);
                    sim.set_lookahead(other, group, SimDuration::ZERO);
                }
            }
        } else if matches!(
            self.config.placement,
            PlacementPolicy::LeastLoaded | PlacementPolicy::Learned
        ) {
            // The load reporter (in this group) writes the board, the
            // router's strategy (hub group) reads it.
            let hub = sim.actor_group(self.router);
            sim.set_lookahead(group, hub, SimDuration::ZERO);
            sim.set_lookahead(hub, group, SimDuration::ZERO);
        }
    }

    /// The actor group a member cluster's actors run in.
    pub fn group_of(&self, cluster: &str) -> Option<GroupId> {
        self.groups.get(cluster).copied()
    }

    /// The router-side face leading to a cluster.
    pub fn face_of(&self, cluster: &str) -> Option<FaceId> {
        self.faces.get(cluster).copied()
    }

    /// The cluster-side face of a member's WAN link (on its gateway NFD).
    pub fn cluster_face_of(&self, cluster: &str) -> Option<FaceId> {
        self.cluster_faces.get(cluster).copied()
    }

    /// Degrade a member's WAN link in both directions: latency multiplied
    /// by `latency_factor`, `extra_loss` added to the base loss, and a
    /// per-packet corruption probability. Use [`Overlay::heal_link`] to
    /// restore the healthy link.
    pub fn degrade_link(
        &self,
        sim: &mut Sim,
        name: &str,
        latency_factor: f64,
        extra_loss: f64,
        corrupt: f64,
    ) {
        let Some(cluster) = self.cluster(name) else {
            return;
        };
        let gateway_fwd = cluster.gateway_fwd;
        if let Some(face) = self.face_of(name) {
            sim.send(self.router, DegradeLink { face, latency_factor, extra_loss, corrupt });
        }
        if let Some(face) = self.cluster_face_of(name) {
            sim.send(gateway_fwd, DegradeLink { face, latency_factor, extra_loss, corrupt });
        }
    }

    /// Undo [`Overlay::degrade_link`] on both directions of a member's WAN
    /// link.
    pub fn heal_link(&self, sim: &mut Sim, name: &str) {
        self.degrade_link(sim, name, 1.0, 0.0, 0.0);
    }

    /// Find a member by name.
    pub fn cluster(&self, name: &str) -> Option<&LidcCluster> {
        self.clusters.iter().find(|c| c.name == name)
    }

    /// Simulate a cluster failure / partition: the router's face to it goes
    /// down. Pending PIT state times out; new requests route elsewhere.
    pub fn fail_cluster(&self, sim: &mut Sim, name: &str) {
        if let Some(face) = self.face_of(name) {
            sim.send(self.router, SetFaceUp { face, up: false });
        }
    }

    /// Bring a failed cluster back.
    pub fn restore_cluster(&self, sim: &mut Sim, name: &str) {
        if let Some(face) = self.face_of(name) {
            sim.send(self.router, SetFaceUp { face, up: true });
        }
    }

    /// Gracefully remove a cluster: unregister its prefixes, then take the
    /// face down.
    pub fn remove_cluster(&mut self, sim: &mut Sim, name: &str) {
        let (Some(face), Some(cluster)) = (
            self.face_of(name),
            self.clusters.iter().find(|c| c.name == name).cloned(),
        ) else {
            return;
        };
        cluster.unregister_from(sim, self.router, face);
        sim.send(self.router, SetFaceUp { face, up: false });
        self.faces.remove(name);
        self.cluster_faces.remove(name);
    }

    /// Names of currently-registered (joined, not removed) clusters.
    pub fn member_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.faces.keys().cloned().collect();
        names.sort();
        names
    }
}
