//! End-to-end LIDC workflow tests: client → NDN → gateway → K8s → data lake.
//!
//! These are the paper's Fig. 5 protocol and §I claims, executed on the full
//! simulated stack: location-independent submission, status polling, result
//! publication and retrieval, validation rejections, multi-cluster
//! placement, failover, and result caching.

use lidc_core::client::{ClientConfig, ScienceClient, Submit};
use lidc_core::cluster::{LidcCluster, LidcClusterConfig};
use lidc_core::naming::ComputeRequest;
use lidc_core::overlay::{ClusterSpec, Overlay, OverlayConfig};
use lidc_core::placement::PlacementPolicy;
use lidc_k8s::job::JobCondition;
use lidc_ndn::face::FaceIdAlloc;
use lidc_simcore::engine::{ActorId, Sim};
use lidc_simcore::time::SimDuration;

fn blast_request(srr: &str, cpu: u64, mem: u64) -> ComputeRequest {
    ComputeRequest::new("BLAST", cpu, mem)
        .with_param("srr", srr)
        .with_param("ref", "HUMAN")
}

/// One cluster + one client directly attached to its gateway NFD.
fn single_cluster_world(seed: u64) -> (Sim, LidcCluster, ActorId) {
    let mut sim = Sim::new(seed);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("edge-a"));
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        cluster.gateway_fwd,
        &alloc,
        "client",
    );
    (sim, cluster, client)
}

#[test]
fn fig5_full_workflow_rice_blast() {
    let (mut sim, cluster, client) = single_cluster_world(1);
    sim.send(client, Submit(blast_request("SRR2931415", 2, 4)));
    sim.run();

    let runs = sim.actor::<ScienceClient>(client).unwrap().runs().to_vec();
    assert_eq!(runs.len(), 1);
    let run = &runs[0];
    assert!(run.is_success(), "error = {:?}", run.error);
    // Step ordering of the Fig. 5 sequence.
    let ack = run.ack_at.expect("acked");
    let running = run.first_running_at.expect("observed running");
    let completed = run.completed_at.expect("completed");
    let fetched = run.fetched_at.expect("fetched result");
    assert!(run.submitted_at < ack);
    assert!(ack < running);
    assert!(running < completed);
    assert!(completed <= fetched);
    // The job ran for the paper's Table-I duration.
    assert_eq!(run.cluster.as_deref(), Some("edge-a"));
    let turnaround = run.turnaround().unwrap();
    assert!(
        turnaround >= SimDuration::from_hours(8) && turnaround <= SimDuration::from_hours(9),
        "turnaround {turnaround}"
    );
    // Result object exists in the lake with the predicted size.
    let result_name = run.result_name.clone().unwrap();
    assert!(result_name.to_uri().starts_with("/ndn/k8s/data/results/edge-a/"));
    let content = cluster.repo.get(&result_name).expect("published");
    assert_eq!(content.len(), 941_000_000);
    assert_eq!(run.result_size, 941_000_000);
    // Gateway and K8s agree.
    let stats = cluster.gateway_stats(&sim);
    assert_eq!(stats.jobs_created, 1);
    assert_eq!(stats.results_published, 1);
    let api = cluster.k8s.api.read();
    let job = api.jobs.values().next().unwrap();
    assert_eq!(job.status.condition, JobCondition::Completed);
    assert_eq!(job.run_time().unwrap().to_string(), "8h9m50s");
}

#[test]
fn cluster_events_trace_the_protocol() {
    let (mut sim, cluster, client) = single_cluster_world(2);
    sim.send(client, Submit(blast_request("SRR2931415", 2, 4)));
    sim.run();
    let api = cluster.k8s.api.read();
    let kinds: Vec<&str> = api.events.iter().map(|e| e.kind.as_str()).collect();
    for expected in [
        "JobCreated",
        "JobPodLaunched",
        "PodScheduled",
        "PodStarted",
        "PodSucceeded",
        "JobCompleted",
        "ResultPublished",
    ] {
        assert!(
            kinds.contains(&expected),
            "missing event {expected} in {kinds:?}"
        );
    }
    // Events are time-ordered.
    let times: Vec<_> = api.events.iter().map(|e| e.time).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn invalid_srr_rejected_by_validation() {
    let (mut sim, cluster, client) = single_cluster_world(3);
    let bad = ComputeRequest::new("BLAST", 2, 4)
        .with_param("srr", "NOT-AN-ID")
        .with_param("ref", "HUMAN");
    sim.send(client, Submit(bad));
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs().to_vec();
    let err = runs[0].error.as_deref().unwrap();
    assert!(err.contains("validation-error"), "{err}");
    assert!(err.contains("srr-syntax"), "{err}");
    assert_eq!(cluster.gateway_stats(&sim).jobs_created, 0);
    assert_eq!(cluster.gateway_stats(&sim).validation_failures, 1);
}

#[test]
fn unknown_accession_rejected_at_planning() {
    let (mut sim, cluster, client) = single_cluster_world(4);
    // Valid syntax, but not in the archive.
    sim.send(client, Submit(blast_request("SRR777", 2, 4)));
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs().to_vec();
    let err = runs[0].error.as_deref().unwrap();
    assert!(err.contains("plan-error"), "{err}");
    assert_eq!(cluster.gateway_stats(&sim).jobs_created, 0);
}

#[test]
fn compress_app_runs_on_lake_object() {
    let (mut sim, _cluster, client) = single_cluster_world(5);
    let req = ComputeRequest::new("COMPRESS", 1, 2).with_param("input", "/sra/SRR2931415");
    sim.send(client, Submit(req));
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs().to_vec();
    assert!(runs[0].is_success(), "error = {:?}", runs[0].error);
    assert!(runs[0].result_name.as_ref().unwrap().to_uri().contains("compress"));
}

#[test]
fn status_query_for_unknown_job_nacks() {
    use lidc_core::naming::JobId;
    use lidc_ndn::app::{Consumer, RetxTimer};
    use lidc_ndn::forwarder::AppRx;
    use lidc_ndn::net::attach_app;
    use lidc_ndn::packet::{ContentType, Interest, Packet};
    use lidc_simcore::engine::{Actor, Ctx, Msg};

    struct Probe {
        consumer: Option<Consumer>,
        nacked: bool,
    }
    struct Go;
    impl Actor for Probe {
        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            let msg = match msg.downcast::<Go>() {
                Ok(_) => {
                    let interest =
                        Interest::new(JobId("edge-a/job-999".into()).status_name())
                            .must_be_fresh(true);
                    self.consumer.as_mut().unwrap().express(ctx, interest, 0);
                    return;
                }
                Err(m) => m,
            };
            let msg = match msg.downcast::<AppRx>() {
                Ok(rx) => {
                    if let Packet::Data(d) = &rx.packet {
                        if d.content_type == ContentType::Nack {
                            self.nacked = true;
                        }
                    }
                    return;
                }
                Err(m) => m,
            };
            let _ = msg.downcast::<RetxTimer>();
        }
    }

    let mut sim = Sim::new(6);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("edge-a"));
    let probe = sim.spawn("probe", Probe {
        consumer: None,
        nacked: false,
    });
    let face = attach_app(&mut sim, cluster.gateway_fwd, probe, &alloc);
    sim.actor_mut::<Probe>(probe).unwrap().consumer =
        Some(Consumer::new(cluster.gateway_fwd, face));
    sim.send(probe, Go);
    sim.run();
    assert!(sim.actor::<Probe>(probe).unwrap().nacked);
}

fn overlay_world(seed: u64, placement: PlacementPolicy) -> (Sim, Overlay, ActorId) {
    let mut sim = Sim::new(seed);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement,
        clusters: vec![
            ClusterSpec::new("near", SimDuration::from_millis(5)),
            ClusterSpec::new("mid", SimDuration::from_millis(25)),
            ClusterSpec::new("far", SimDuration::from_millis(60)),
        ],
        ..Default::default()
    });
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        overlay.router,
        &alloc_of(&overlay),
        "client",
    );
    (sim, overlay, client)
}

fn alloc_of(overlay: &Overlay) -> FaceIdAlloc {
    overlay.alloc.clone()
}

#[test]
fn nearest_placement_without_any_location_config() {
    let (mut sim, overlay, client) = overlay_world(7, PlacementPolicy::Nearest);
    // The client names only the computation — no cluster, no address.
    for i in 0..4 {
        let req = blast_request("SRR2931415", 2, 4).with_param("tag", i.to_string());
        sim.send(client, Submit(req));
    }
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs().to_vec();
    assert_eq!(runs.len(), 4);
    for run in &runs {
        assert!(run.is_success(), "error = {:?}", run.error);
        assert_eq!(run.cluster.as_deref(), Some("near"), "nearest cluster wins");
    }
    let _ = overlay;
}

#[test]
fn round_robin_spreads_jobs() {
    let (mut sim, overlay, client) = overlay_world(8, PlacementPolicy::RoundRobin);
    for i in 0..6 {
        let req = blast_request("SRR2931415", 2, 4).with_param("tag", i.to_string());
        sim.send(client, Submit(req));
    }
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs().to_vec();
    let mut clusters: Vec<String> = runs.iter().filter_map(|r| r.cluster.clone()).collect();
    clusters.sort();
    clusters.dedup();
    assert_eq!(clusters.len(), 3, "all three clusters used: {clusters:?}");
    for c in &overlay.clusters {
        assert!(c.gateway_stats(&sim).jobs_created >= 1, "{} unused", c.name);
    }
}

#[test]
fn failover_resubmits_to_surviving_cluster() {
    let (mut sim, overlay, client) = overlay_world(9, PlacementPolicy::Nearest);
    sim.send(client, Submit(blast_request("SRR2931415", 2, 4)));
    // Let the job land on "near" and start.
    sim.run_for(SimDuration::from_mins(10));
    {
        let runs = sim.actor::<ScienceClient>(client).unwrap().runs().to_vec();
        assert_eq!(runs[0].cluster.as_deref(), Some("near"));
        assert!(runs[0].completed_at.is_none());
    }
    // The near cluster is partitioned away mid-run.
    overlay.fail_cluster(&mut sim, "near");
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs().to_vec();
    let run = &runs[0];
    assert!(run.is_success(), "error = {:?}", run.error);
    assert!(run.resubmits >= 1, "client resubmitted after losing the job");
    assert_eq!(
        run.cluster.as_deref(),
        Some("mid"),
        "resubmission landed on the next-nearest cluster"
    );
}

#[test]
fn result_cache_answers_identical_request() {
    let mut sim = Sim::new(10);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::Nearest,
        clusters: vec![
            ClusterSpec::new("solo", SimDuration::from_millis(5)).with_cache(64, SimDuration::ZERO),
        ],
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        overlay.router,
        &alloc,
        "client",
    );
    sim.send(client, Submit(blast_request("SRR2931415", 2, 4)));
    sim.run();
    // Identical request again: served from the gateway result cache.
    sim.send(client, Submit(blast_request("SRR2931415", 2, 4)));
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs().to_vec();
    assert_eq!(runs.len(), 2);
    assert!(runs[0].is_success());
    assert!(!runs[0].served_from_cache);
    assert!(runs[1].is_success(), "error = {:?}", runs[1].error);
    assert!(runs[1].served_from_cache, "second run hits the result cache");
    let stats = overlay.clusters[0].gateway_stats(&sim);
    assert_eq!(stats.jobs_created, 1, "no second job");
    assert_eq!(stats.cache_hits, 1);
    // The cached run resolved enormously faster than the computed one.
    let t0 = runs[0].turnaround().unwrap();
    let t1 = runs[1].turnaround().unwrap();
    assert!(t1 < t0 / 1000, "cached {t1} vs computed {t0}");
}

#[test]
fn cluster_join_is_transparent_to_clients() {
    let mut sim = Sim::new(11);
    let mut overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::Nearest,
        clusters: vec![ClusterSpec::new("first", SimDuration::from_millis(50))],
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        overlay.router,
        &alloc,
        "client",
    );
    sim.send(client, Submit(blast_request("SRR2931415", 2, 4).with_param("tag", "a")));
    sim.run();
    // A closer cluster joins; the same unmodified client now lands there.
    overlay.add_cluster(&mut sim, ClusterSpec::new("closer", SimDuration::from_millis(2)));
    sim.send(client, Submit(blast_request("SRR2931415", 2, 4).with_param("tag", "b")));
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs().to_vec();
    assert_eq!(runs[0].cluster.as_deref(), Some("first"));
    assert_eq!(runs[1].cluster.as_deref(), Some("closer"));
    assert!(runs[1].is_success());
}

#[test]
fn http_named_request_equivalent_to_ndn_named(){
    // §II: HTTP(s)-based naming can express the same computation.
    let url = "https://lidc.example/compute?mem=4&cpu=2&app=BLAST&srr=SRR2931415&ref=HUMAN";
    let from_http = ComputeRequest::from_http_url(url).unwrap();
    let (mut sim, _cluster, client) = single_cluster_world(12);
    sim.send(client, Submit(from_http.clone()));
    sim.run();
    let runs = sim.actor::<ScienceClient>(client).unwrap().runs().to_vec();
    assert!(runs[0].is_success());
    assert_eq!(from_http, blast_request("SRR2931415", 2, 4));
}

#[test]
fn deterministic_end_to_end_replay() {
    fn run_once(seed: u64) -> (u64, String) {
        let (mut sim, _cluster, client) = single_cluster_world(seed);
        sim.send(client, Submit(blast_request("SRR2931415", 2, 4)));
        sim.run();
        let runs = sim.actor::<ScienceClient>(client).unwrap().runs().to_vec();
        (
            sim.events_processed(),
            format!("{:?}", runs[0].turnaround()),
        )
    }
    assert_eq!(run_once(42), run_once(42));
}

#[test]
fn running_status_carries_predicted_eta() {
    // §VII implemented: while a job runs, status responses predict the
    // remaining seconds (cost-model expectation for the first run on a
    // gateway, trained-predictor estimates once history exists).
    let (mut sim, cluster, client) = single_cluster_world(13);
    sim.send(client, Submit(blast_request("SRR2931415", 2, 4)));
    // Mid-run: the rice BLAST takes 8h9m50s; probe at ~2h.
    sim.run_for(SimDuration::from_hours(2));
    {
        let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
        assert!(run.completed_at.is_none(), "still running");
        let eta = run.last_eta_secs.expect("Running status carries an ETA");
        // True remaining ≈ 8h9m50s − 2h ≈ 22190 s (±poll interval).
        let truth = 8 * 3600 + 9 * 60 + 50 - 2 * 3600;
        assert!(
            (eta as i64 - truth as i64).unsigned_abs() < 120,
            "eta {eta} vs truth {truth}"
        );
    }
    // Near the end the ETA must have shrunk accordingly.
    sim.run_for(SimDuration::from_hours(6));
    let eta_late = sim.actor::<ScienceClient>(client).unwrap().runs()[0]
        .last_eta_secs
        .expect("still running");
    assert!(eta_late < 1200, "eta {eta_late} near completion");
    sim.run();
    let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
    assert!(run.is_success());

    // A second, distinct job now gets its ETA from the *trained* predictor
    // (one observation recorded at publication time).
    let predictor = cluster.predictor(&sim);
    assert_eq!(predictor.read().observations("BLAST"), 1);
    sim.send(
        client,
        Submit(blast_request("SRR2931415", 2, 4).with_param("tag", "second")),
    );
    sim.run_for(SimDuration::from_hours(1));
    let run2 = &sim.actor::<ScienceClient>(client).unwrap().runs()[1];
    assert!(run2.last_eta_secs.is_some(), "trained gateway still predicts");
    sim.run();
}
