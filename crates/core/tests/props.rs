//! Property-based tests for the LIDC core: the semantic-name grammar, the
//! status protocol codecs, the result cache, and the runtime predictor.

use lidc_core::cache::{CachedResult, ResultCache};
use lidc_core::naming::{classify, ComputeRequest, JobId, RequestKind};
use lidc_core::predictor::{JobFeatures, RuntimePredictor};
use lidc_core::status::{JobState, SubmitAck};
use lidc_ndn::name::Name;
use proptest::prelude::*;

/// Param keys/values that survive the `k=v&k=v` grammar (no `&`, `=`, `/`).
fn param_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9._+,-]{1,12}").unwrap()
}

prop_compose! {
    fn arb_request()(
        app in "[A-Z][A-Z0-9]{0,9}",
        cpu in 1u64..128,
        mem in 1u64..512,
        params in proptest::collection::btree_map(param_text(), param_text(), 0..6),
    ) -> ComputeRequest {
        let mut req = ComputeRequest::new(app, cpu, mem);
        for (k, v) in params {
            // Reserved keys would collide with the grammar's fixed fields.
            if !matches!(k.as_str(), "app" | "cpu" | "mem") {
                req = req.with_param(&k, &v);
            }
        }
        req
    }
}

proptest! {
    // --- naming grammar -----------------------------------------------------

    #[test]
    fn compute_request_name_round_trip(req in arb_request()) {
        let name = req.to_name();
        let back = ComputeRequest::from_name(&name).unwrap();
        prop_assert_eq!(back, req.clone());
        // classify() agrees.
        match classify(&name) {
            RequestKind::Compute(c) => prop_assert_eq!(c, req),
            other => return Err(TestCaseError::fail(format!("classified as {other:?}"))),
        }
    }

    #[test]
    fn compute_request_uri_round_trip_through_ndn_name_parse(req in arb_request()) {
        // The full URI must survive NDN name parsing too (percent escaping).
        let uri = req.to_name().to_uri();
        let name = Name::parse(&uri).unwrap();
        prop_assert_eq!(ComputeRequest::from_name(&name).unwrap(), req);
    }

    #[test]
    fn canonical_key_is_param_order_independent(req in arb_request()) {
        // Rebuild with params inserted in reverse order.
        let mut rev = ComputeRequest::new(req.app.clone(), req.cpu_cores, req.mem_gib);
        for (k, v) in req.params.iter().rev() {
            rev = rev.with_param(k, v);
        }
        prop_assert_eq!(req.canonical_key(), rev.canonical_key());
        prop_assert_eq!(req.to_param_component(), rev.to_param_component());
    }

    #[test]
    fn http_url_equivalent_to_param_component(req in arb_request()) {
        let url = format!("https://lidc.example/compute?{}", req.to_param_component());
        let parsed = ComputeRequest::from_http_url(&url).unwrap();
        prop_assert_eq!(parsed, req);
    }

    #[test]
    fn job_id_status_name_round_trip(
        cluster in "[a-z][a-z0-9-]{0,12}",
        n in 0u64..1_000_000,
    ) {
        let id = JobId(format!("{cluster}/job-{n}"));
        let name = id.status_name();
        prop_assert!(lidc_core::naming::status_prefix().is_prefix_of(&name));
        let back = JobId::from_status_name(&name).expect("round-trips");
        prop_assert_eq!(back, id);
        // classify() agrees.
        match classify(&name) {
            RequestKind::Status(s) => prop_assert_eq!(s.0, format!("{cluster}/job-{n}")),
            other => return Err(TestCaseError::fail(format!("classified as {other:?}"))),
        }
    }

    // --- status protocol codecs -------------------------------------------------

    #[test]
    fn job_state_text_round_trip(
        kind in 0u8..4,
        size in 0u64..1 << 40,
        error in "[ -~&&[^\n]]{0,40}",
        result_part in "[a-z0-9-]{1,12}",
        eta in any::<Option<u64>>(),
    ) {
        let state = match kind {
            0 => JobState::Pending,
            1 => JobState::Running { eta_secs: eta },
            2 => JobState::Completed {
                result: Name::parse("/ndn/k8s/data/results").unwrap().child_str(&result_part),
                size,
            },
            _ => JobState::Failed { error },
        };
        let text = state.to_text();
        let back = JobState::from_text(&text).expect("parses");
        prop_assert_eq!(back, state);
    }

    #[test]
    fn submit_ack_text_round_trip(
        job in "[a-z0-9/-]{1,20}",
        cluster in "[a-z][a-z0-9-]{0,12}",
        state in prop_oneof![Just("Pending"), Just("Completed")],
    ) {
        let ack = SubmitAck {
            job_id: job,
            cluster,
            state: state.to_owned(),
        };
        let back = SubmitAck::from_text(&ack.to_text()).expect("parses");
        prop_assert_eq!(back, ack);
    }

    // --- result cache --------------------------------------------------------------

    #[test]
    fn result_cache_capacity_and_mru_retention(
        capacity in 1usize..16,
        keys in proptest::collection::vec("[a-z0-9]{1,8}", 1..48),
    ) {
        let mut cache = ResultCache::new(capacity);
        let mut last = String::new();
        for (i, key) in keys.iter().enumerate() {
            cache.insert(key.clone(), CachedResult {
                job_id: format!("c/job-{i}"),
                result: Name::parse("/ndn/k8s/data/results/x").unwrap(),
                size: i as u64,
            });
            prop_assert!(cache.len() <= capacity);
            last = key.clone();
        }
        // The most recently inserted key is always retrievable.
        prop_assert!(cache.get(&last).is_some());
        // get() refreshes recency: insert `capacity` new keys after touching
        // `last`; with capacity 1 it must be evicted, otherwise touch-then-
        // fill-minus-one keeps it.
        cache.get(&last);
        for i in 0..capacity.saturating_sub(1) {
            cache.insert(format!("fill-{i}"), CachedResult {
                job_id: "c/job-f".into(),
                result: Name::parse("/ndn/k8s/data/results/x").unwrap(),
                size: 0,
            });
        }
        prop_assert!(cache.get(&last).is_some(), "MRU entry survived the refill");
    }

    /// Byte-budgeted result cache: bytes_used never exceeds the budget,
    /// always equals the sum of resident result sizes, and oversized
    /// results are refused without touching live mappings.
    #[test]
    fn result_cache_byte_budget_invariants(
        budget in 500u64..5000,
        ops in proptest::collection::vec(("[a-z]{1,4}", 1u64..2000), 1..64),
    ) {
        let mut cache = ResultCache::with_budget(16, budget);
        for (i, (key, size)) in ops.into_iter().enumerate() {
            let len_before = cache.len();
            let rejections_before = cache.admission_rejections();
            cache.insert(key.clone(), CachedResult {
                job_id: format!("c/job-{i}"),
                result: Name::parse("/ndn/k8s/data/results/x").unwrap(),
                size,
            });
            if size > budget {
                prop_assert_eq!(cache.admission_rejections(), rejections_before + 1);
                prop_assert_eq!(cache.len(), len_before, "refusal evicted nothing");
            } else {
                prop_assert!(cache.get(&key).is_some(), "admitted result resident");
            }
            prop_assert!(cache.bytes_used() <= budget);
            prop_assert!(cache.len() <= 16);
        }
    }

    // --- predictor -------------------------------------------------------------------

    /// Trained on a world inside its hypothesis class
    /// (`a + b·ln(bytes) + c·cpu + d·mem`), the online regressor's
    /// predictions interpolate within tolerance.
    #[test]
    fn predictor_learns_its_model_family(
        b in 10.0f64..100.0,
        c in 0.0f64..20.0,
        d in 0.0f64..20.0,
        probe_i in 1u64..40,
        probe_cpu in 1u64..8,
        probe_mem in 1u64..16,
    ) {
        let truth_fn = |f: &JobFeatures| {
            50.0 + b * ((f.input_bytes as f64) + 1.0).ln()
                + c * f.cpu_cores as f64
                + d * f.mem_gib as f64
        };
        let mut p = RuntimePredictor::new();
        // Several epochs over a small grid (SGD needs repetition).
        for _epoch in 0..40 {
            for i in 1..40u64 {
                let features = JobFeatures {
                    input_bytes: i * (1 << 26),
                    cpu_cores: 1 + (i % 8),
                    mem_gib: 1 + (i % 16),
                };
                p.observe("APP", features, truth_fn(&features));
            }
        }
        let features = JobFeatures {
            input_bytes: probe_i * (1 << 26),
            cpu_cores: probe_cpu,
            mem_gib: probe_mem,
        };
        let predicted = p.predict("APP", features).expect("trained");
        let truth = truth_fn(&features);
        let rel = (predicted - truth).abs() / truth.max(1e-9);
        prop_assert!(rel < 0.2, "predicted {predicted}, truth {truth} (rel {rel})");
        // Unknown apps stay unpredicted rather than guessing.
        prop_assert!(p.predict("OTHER", features).is_none());
    }
}
