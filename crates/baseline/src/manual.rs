//! The manual-configuration comparator: the status quo the paper's
//! introduction describes, where "users must first identify which compute
//! cluster can handle their workflow … and manually configure workflows to
//! specify resource requirements", then re-do that work whenever the
//! infrastructure changes.
//!
//! A [`ManualWorkflow`] is a science client that has been *statically
//! configured against one specific cluster*: it attaches directly to that
//! cluster's gateway NFD instead of naming the computation into an overlay.
//! When the configured cluster fails, every in-flight and subsequent job
//! fails until a human operator "re-tailors the workflow" — modelled by
//! [`ManualWorkflow::reconfigure`], which charges a configurable operator
//! delay before the client can use the new cluster.

use lidc_core::client::{ClientConfig, JobRun, ScienceClient, Submit};
use lidc_core::cluster::LidcCluster;
use lidc_core::naming::ComputeRequest;
use lidc_ndn::face::FaceIdAlloc;
use lidc_simcore::engine::{ActorId, Sim};
use lidc_simcore::time::SimDuration;

/// How long the human operator takes to re-tailor a workflow for a new
/// cluster (account setup, resource-spec rewrites, endpoint changes). The
/// default is deliberately conservative; the paper cites multi-step manual
/// processes.
pub const DEFAULT_RECONFIG_DELAY: SimDuration = SimDuration::from_mins(30);

/// A workflow statically configured against one named cluster.
pub struct ManualWorkflow {
    /// Label used for client actors.
    pub label: String,
    /// Client behaviour (same knobs as the LIDC client, for fairness).
    pub config: ClientConfig,
    /// Operator reconfiguration delay charged by [`reconfigure`].
    ///
    /// [`reconfigure`]: ManualWorkflow::reconfigure
    pub reconfig_delay: SimDuration,
    /// The cluster this workflow is currently tailored to.
    pub configured_cluster: String,
    client: ActorId,
    alloc: FaceIdAlloc,
    /// Runs completed on previous clients (before reconfigurations).
    archived_runs: Vec<JobRun>,
    /// Earliest time the current client may submit (reconfig gate).
    ready_at: lidc_simcore::time::SimTime,
}

impl ManualWorkflow {
    /// Tailor a workflow to `cluster` and attach its client directly to the
    /// cluster's gateway (the "cluster-specific configuration" of §I).
    pub fn configure(
        sim: &mut Sim,
        cluster: &LidcCluster,
        alloc: &FaceIdAlloc,
        config: ClientConfig,
        label: impl Into<String>,
    ) -> ManualWorkflow {
        let label = label.into();
        let client = ScienceClient::deploy(
            config.clone(),
            sim,
            cluster.gateway_fwd,
            alloc,
            format!("{label}@{}", cluster.name),
        );
        ManualWorkflow {
            label,
            config,
            reconfig_delay: DEFAULT_RECONFIG_DELAY,
            configured_cluster: cluster.name.clone(),
            client,
            alloc: alloc.clone(),
            archived_runs: Vec::new(),
            ready_at: lidc_simcore::time::SimTime::ZERO,
        }
    }

    /// Override the operator delay.
    pub fn with_reconfig_delay(mut self, delay: SimDuration) -> ManualWorkflow {
        self.reconfig_delay = delay;
        self
    }

    /// Submit a request to the currently configured cluster. If the
    /// workflow is mid-reconfiguration, the submission is deferred until
    /// the operator finishes.
    pub fn submit(&self, sim: &mut Sim, request: ComputeRequest) {
        if sim.now() < self.ready_at {
            let wait = self.ready_at.since(sim.now());
            sim.send_after(wait, self.client, Submit(request));
        } else {
            sim.send(self.client, Submit(request));
        }
    }

    /// Re-tailor the workflow to a different cluster. The old client is torn
    /// down (its completed history is preserved) and a new one is attached
    /// to the new cluster after [`Self::reconfig_delay`] of operator work.
    pub fn reconfigure(&mut self, sim: &mut Sim, new_cluster: &LidcCluster) {
        let old_runs = sim
            .actor::<ScienceClient>(self.client)
            .map(|c| c.runs().to_vec())
            .unwrap_or_default();
        self.archived_runs.extend(old_runs);
        sim.kill(self.client);
        self.configured_cluster = new_cluster.name.clone();
        self.client = ScienceClient::deploy(
            self.config.clone(),
            sim,
            new_cluster.gateway_fwd,
            &self.alloc,
            format!("{}@{}", self.label, new_cluster.name),
        );
        self.ready_at = sim.now() + self.reconfig_delay;
    }

    /// All runs across every configuration epoch, in submission order.
    pub fn runs(&self, sim: &Sim) -> Vec<JobRun> {
        let mut runs = self.archived_runs.clone();
        if let Some(c) = sim.actor::<ScienceClient>(self.client) {
            runs.extend(c.runs().to_vec());
        }
        runs
    }

    /// Count of successful runs across all epochs.
    pub fn successes(&self, sim: &Sim) -> usize {
        self.runs(sim).iter().filter(|r| r.is_success()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidc_core::cluster::LidcClusterConfig;

    fn blast(tag: u32) -> ComputeRequest {
        ComputeRequest::new("BLAST", 2, 4)
            .with_param("srr", "SRR2931415")
            .with_param("ref", "HUMAN")
            .with_param("tag", tag.to_string())
    }

    #[test]
    fn manual_workflow_runs_on_its_configured_cluster() {
        let mut sim = Sim::new(1);
        let alloc = FaceIdAlloc::new();
        let a = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("site-a"));
        let _b = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("site-b"));
        let wf = ManualWorkflow::configure(
            &mut sim,
            &a,
            &alloc,
            ClientConfig::default(),
            "manual",
        );
        wf.submit(&mut sim, blast(1));
        sim.run();
        let runs = wf.runs(&sim);
        assert!(runs[0].is_success(), "{:?}", runs[0].error);
        assert_eq!(runs[0].cluster.as_deref(), Some("site-a"));
    }

    #[test]
    fn cluster_failure_strands_manual_workflow_until_reconfigured() {
        let mut sim = Sim::new(2);
        let alloc = FaceIdAlloc::new();
        let a = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("site-a"));
        let b = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("site-b"));
        let mut wf = ManualWorkflow::configure(
            &mut sim,
            &a,
            &alloc,
            ClientConfig::default(),
            "manual",
        )
        .with_reconfig_delay(SimDuration::from_mins(30));

        // The configured cluster dies before the job can be submitted.
        sim.kill(a.gateway_fwd);
        wf.submit(&mut sim, blast(1));
        sim.run();
        assert_eq!(wf.successes(&sim), 0, "no failover without an operator");
        let first = &wf.runs(&sim)[0];
        assert!(first.error.is_some());

        // The operator re-tailors the workflow to site-b; only then do new
        // submissions succeed, delayed by the operator work.
        let before = sim.now();
        wf.reconfigure(&mut sim, &b);
        wf.submit(&mut sim, blast(2));
        sim.run();
        let runs = wf.runs(&sim);
        let retry = runs.last().unwrap();
        assert!(retry.is_success(), "{:?}", retry.error);
        assert_eq!(retry.cluster.as_deref(), Some("site-b"));
        assert!(
            retry.submitted_at.since(before) >= SimDuration::from_mins(30),
            "operator delay was charged"
        );
    }

    #[test]
    fn runs_preserved_across_reconfigurations() {
        let mut sim = Sim::new(3);
        let alloc = FaceIdAlloc::new();
        let a = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("site-a"));
        let b = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("site-b"));
        let mut wf = ManualWorkflow::configure(
            &mut sim,
            &a,
            &alloc,
            ClientConfig::default(),
            "manual",
        )
        .with_reconfig_delay(SimDuration::ZERO);
        wf.submit(&mut sim, blast(1));
        sim.run();
        wf.reconfigure(&mut sim, &b);
        wf.submit(&mut sim, blast(2));
        sim.run();
        let runs = wf.runs(&sim);
        assert_eq!(runs.len(), 2);
        assert_eq!(wf.successes(&sim), 2);
        assert_eq!(runs[0].cluster.as_deref(), Some("site-a"));
        assert_eq!(runs[1].cluster.as_deref(), Some("site-b"));
    }
}
