//! Client for the centralized comparator: same science-user behaviour as
//! [`lidc_core::client::ScienceClient`], but every request is addressed to
//! the `/central` controller instead of to the semantic compute name.
//!
//! The structural difference is the point: the LIDC client names the
//! *computation* (any cluster may answer), whereas this client names the
//! *controller* — when the controller is unreachable nothing can be placed,
//! no matter how many healthy clusters exist.

use std::collections::HashMap;

use lidc_core::client::ClientConfig;
use lidc_core::naming::ComputeRequest;
use lidc_core::status::{JobState, SubmitAck};
use lidc_ndn::app::{Consumer, ConsumerEvent, RetxTimer};
use lidc_ndn::face::FaceIdAlloc;
use lidc_ndn::forwarder::AppRx;
use lidc_ndn::name::Name;
use lidc_ndn::net::attach_app;
use lidc_ndn::packet::{ContentType, Data, Interest};
use lidc_simcore::engine::{Actor, ActorId, Ctx, Msg, Sim};
use lidc_simcore::time::{SimDuration, SimTime};

use crate::central::{status_name, submit_name};

/// The record of one centrally-placed request.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// The request.
    pub request: ComputeRequest,
    /// Submission instant.
    pub submitted_at: SimTime,
    /// Controller ack received.
    pub ack_at: Option<SimTime>,
    /// Controller-assigned job id.
    pub job_id: Option<String>,
    /// Cluster the controller chose.
    pub cluster: Option<String>,
    /// `Completed` observed.
    pub completed_at: Option<SimTime>,
    /// Terminal error.
    pub error: Option<String>,
    /// Status polls issued.
    pub polls: u32,
    /// Whole-request resubmissions.
    pub resubmits: u32,
    status_failures: u32,
}

impl BaselineRun {
    fn new(request: ComputeRequest, now: SimTime) -> Self {
        BaselineRun {
            request,
            submitted_at: now,
            ack_at: None,
            job_id: None,
            cluster: None,
            completed_at: None,
            error: None,
            polls: 0,
            resubmits: 0,
            status_failures: 0,
        }
    }

    /// True when the run completed without error.
    pub fn is_success(&self) -> bool {
        self.completed_at.is_some() && self.error.is_none()
    }

    /// Submission → completion latency.
    pub fn turnaround(&self) -> Option<SimDuration> {
        self.completed_at.map(|t| t.since(self.submitted_at))
    }

    /// Submission → ack latency.
    pub fn ack_latency(&self) -> Option<SimDuration> {
        self.ack_at.map(|t| t.since(self.submitted_at))
    }
}

/// Submit a request through the central controller.
#[derive(Debug)]
pub struct SubmitCentral(pub ComputeRequest);

#[derive(Debug)]
struct PollTick {
    record: usize,
}

#[derive(Debug)]
struct Resubmit {
    record: usize,
}

/// The centralized-baseline client actor.
pub struct CentralClient {
    consumer: Option<Consumer>,
    config: ClientConfig,
    runs: Vec<BaselineRun>,
    /// Pending name → record indexes. Duplicate submissions of the same
    /// request share one Interest name (the PIT aggregates them), so one
    /// reply or timeout must settle every waiting record — a single-record
    /// map silently stranded the overwritten run (see the LIDC client).
    active_submits: HashMap<Name, Vec<usize>>,
    active_polls: HashMap<Name, Vec<usize>>,
}

impl CentralClient {
    /// Build an (unattached) client. `fetch_results` is ignored — the
    /// controller's ack/status protocol does not serve result objects.
    pub fn new(config: ClientConfig) -> Self {
        CentralClient {
            consumer: None,
            config,
            runs: Vec::new(),
            active_submits: HashMap::new(),
            active_polls: HashMap::new(),
        }
    }

    /// Spawn and attach to `fwd` (the WAN router the controller lives on).
    pub fn deploy(
        config: ClientConfig,
        sim: &mut Sim,
        fwd: ActorId,
        alloc: &FaceIdAlloc,
        label: impl Into<String>,
    ) -> ActorId {
        let client = sim.spawn(label.into(), CentralClient::new(config));
        let face = attach_app(sim, fwd, client, alloc);
        sim.actor_mut::<CentralClient>(client).unwrap().consumer =
            Some(Consumer::new(fwd, face));
        client
    }

    /// The recorded runs.
    pub fn runs(&self) -> &[BaselineRun] {
        &self.runs
    }

    /// Count of successful runs.
    pub fn successes(&self) -> usize {
        self.runs.iter().filter(|r| r.is_success()).count()
    }

    /// The run with id `record` — the single chokepoint for record-index
    /// resolution.
    fn run_mut(&mut self, record: usize) -> &mut BaselineRun {
        // lidc-lint: allow(panic-path) reason="record ids are minted at runs.push and flow only through this client's own maps and self-scheduled messages; runs never shrinks, so every id stays in range"
        &mut self.runs[record]
    }

    /// The attached consumer — installed by `deploy` before the actor can
    /// receive a single message.
    fn consumer_mut(&mut self) -> &mut Consumer {
        // lidc-lint: allow(panic-path) reason="deploy() installs the consumer before the actor id escapes, so no message can arrive while it is None"
        self.consumer.as_mut().expect("deployed")
    }

    fn express_submit(&mut self, record: usize, ctx: &mut Ctx<'_>) {
        let name = submit_name(&self.run_mut(record).request);
        let interest = Interest::new(name.clone())
            .must_be_fresh(true)
            .with_lifetime(SimDuration::from_secs(4));
        self.active_submits.entry(name).or_default().push(record);
        let retries = self.config.retries;
        self.consumer_mut().express(ctx, interest, retries);
    }

    fn express_poll(&mut self, record: usize, ctx: &mut Ctx<'_>) {
        let Some(job_id) = self.run_mut(record).job_id.clone() else {
            return;
        };
        let name = status_name(&job_id);
        let interest = Interest::new(name.clone())
            .must_be_fresh(true)
            .with_lifetime(SimDuration::from_secs(4));
        self.active_polls.entry(name).or_default().push(record);
        self.run_mut(record).polls += 1;
        let retries = self.config.retries;
        self.consumer_mut().express(ctx, interest, retries);
    }

    fn maybe_resubmit(&mut self, record: usize, why: &str, ctx: &mut Ctx<'_>) {
        let attempts = self.config.resubmit_attempts;
        let run = self.run_mut(record);
        if run.resubmits < attempts {
            run.resubmits += 1;
            run.job_id = None;
            run.cluster = None;
            run.ack_at = None;
            run.status_failures = 0;
            ctx.schedule_self(SimDuration::from_secs(1), Resubmit { record });
        } else {
            run.error = Some(why.to_owned());
        }
    }

    fn on_data(&mut self, data: Data, ctx: &mut Ctx<'_>) {
        // Same defense-in-depth as the LIDC client: re-verify the received
        // packet and treat a bad signature like a timeout.
        if !data.verify(None) {
            ctx.metrics().incr("client.verify_failed", 1);
            self.on_failure(Interest::new(data.name.clone()), "verify", ctx);
            return;
        }
        let name = data.name.clone();
        // Drain every record waiting on the name (submission order).
        if let Some(records) = self.active_submits.remove(&name) {
            for record in records {
                self.on_submit_reply(record, &data, ctx);
            }
            return;
        }
        if let Some(records) = self.active_polls.remove(&name) {
            for record in records {
                self.on_poll_reply(record, &data, ctx);
            }
        }
    }

    fn on_submit_reply(&mut self, record: usize, data: &Data, ctx: &mut Ctx<'_>) {
        if data.content_type == ContentType::Nack {
            self.run_mut(record).error =
                Some(String::from_utf8_lossy(&data.content).into_owned());
            return;
        }
        let Some(ack) = SubmitAck::from_text(&String::from_utf8_lossy(&data.content)) else {
            self.run_mut(record).error = Some("unparseable ack".to_owned());
            return;
        };
        let run = self.run_mut(record);
        run.ack_at = Some(ctx.now());
        run.job_id = Some(ack.job_id);
        run.cluster = Some(ack.cluster);
        let interval = self.config.poll_interval;
        ctx.schedule_self(interval, PollTick { record });
    }

    fn on_poll_reply(&mut self, record: usize, data: &Data, ctx: &mut Ctx<'_>) {
        if data.content_type == ContentType::Nack {
            self.maybe_resubmit(record, "status-nack", ctx);
            return;
        }
        let Some(state) = JobState::from_text(&String::from_utf8_lossy(&data.content)) else {
            self.run_mut(record).error = Some("unparseable status".to_owned());
            return;
        };
        self.run_mut(record).status_failures = 0;
        match state {
            JobState::Pending | JobState::Running { .. } => {
                let interval = self.config.poll_interval;
                ctx.schedule_self(interval, PollTick { record });
            }
            JobState::Completed { .. } => {
                self.run_mut(record).completed_at = Some(ctx.now());
            }
            JobState::Failed { error } => {
                self.run_mut(record).error = Some(format!("job-failed: {error}"));
            }
        }
    }

    fn on_failure(&mut self, interest: Interest, what: &str, ctx: &mut Ctx<'_>) {
        let name = interest.name.clone();
        if let Some(records) = self.active_submits.remove(&name) {
            for record in records {
                self.maybe_resubmit(record, &format!("submit-{what}"), ctx);
            }
            return;
        }
        if let Some(records) = self.active_polls.remove(&name) {
            for record in records {
                let run = self.run_mut(record);
                run.status_failures += 1;
                if run.status_failures >= self.config.max_status_failures {
                    self.maybe_resubmit(record, &format!("status-{what}"), ctx);
                } else {
                    let interval = self.config.poll_interval;
                    ctx.schedule_self(interval, PollTick { record });
                }
            }
        }
    }
}

impl Actor for CentralClient {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let msg = match msg.downcast::<SubmitCentral>() {
            Ok(s) => {
                let record = self.runs.len();
                self.runs.push(BaselineRun::new(s.0, ctx.now()));
                self.express_submit(record, ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<PollTick>() {
            Ok(t) => {
                self.express_poll(t.record, ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Resubmit>() {
            Ok(r) => {
                self.express_submit(r.record, ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<AppRx>() {
            Ok(rx) => {
                match self.consumer_mut().on_app_rx(&rx) {
                    Some(ConsumerEvent::Data(data)) => self.on_data(data, ctx),
                    Some(ConsumerEvent::Nack(_, i)) => self.on_failure(i, "nack", ctx),
                    Some(ConsumerEvent::Timeout(i)) => self.on_failure(i, "timeout", ctx),
                    None => {}
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(t) = msg.downcast::<RetxTimer>() {
            match self.consumer_mut().on_timer(ctx, &t) {
                Some(ConsumerEvent::Data(data)) => self.on_data(data, ctx),
                Some(ConsumerEvent::Nack(_, i)) => self.on_failure(i, "nack", ctx),
                Some(ConsumerEvent::Timeout(i)) => self.on_failure(i, "timeout", ctx),
                None => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::central::{CentralController, CentralPolicy};
    use lidc_k8s::cluster::{Cluster, ClusterConfig};
    use lidc_k8s::node::Node;
    use lidc_k8s::resources::Resources;
    use lidc_ndn::forwarder::{Forwarder, ForwarderConfig};

    fn k8s_cluster(sim: &mut Sim, name: &str) -> Cluster {
        let c = Cluster::spawn(sim, ClusterConfig::named(name));
        c.add_node(sim, Node::new(format!("{name}-n0"), Resources::new(16, 64)));
        c
    }

    fn world(
        sim: &mut Sim,
        policy: CentralPolicy,
        member_names: &[&str],
    ) -> (ActorId, ActorId, Vec<Cluster>) {
        let alloc = FaceIdAlloc::new();
        let router = sim.spawn(
            "router",
            Forwarder::new("router", ForwarderConfig::default()),
        );
        let controller = CentralController::new(policy).deploy(sim, router, &alloc);
        let mut clusters = Vec::new();
        for name in member_names {
            let c = k8s_cluster(sim, name);
            CentralController::add_member(sim, controller, *name, c.clone());
            clusters.push(c);
        }
        let client = CentralClient::deploy(
            ClientConfig::default(),
            sim,
            router,
            &alloc,
            "central-client",
        );
        (controller, client, clusters)
    }

    fn blast() -> ComputeRequest {
        ComputeRequest::new("BLAST", 2, 4)
            .with_param("srr", "SRR2931415")
            .with_param("ref", "HUMAN")
    }

    #[test]
    fn central_submission_completes() {
        let mut sim = Sim::new(1);
        let (_controller, client, _clusters) =
            world(&mut sim, CentralPolicy::RoundRobin, &["a", "b"]);
        sim.send(client, SubmitCentral(blast()));
        sim.run();
        let runs = sim.actor::<CentralClient>(client).unwrap().runs();
        assert_eq!(runs.len(), 1);
        assert!(runs[0].is_success(), "error = {:?}", runs[0].error);
        assert_eq!(runs[0].cluster.as_deref(), Some("a"));
    }

    #[test]
    fn round_robin_cycles_members() {
        let mut sim = Sim::new(2);
        let (_controller, client, _clusters) =
            world(&mut sim, CentralPolicy::RoundRobin, &["a", "b", "c"]);
        for i in 0..6 {
            // Distinct tags keep the six submit-Interest names distinct, so
            // neither the PIT nor the consumer's pending table aggregates
            // them into one request.
            sim.send(
                client,
                SubmitCentral(blast().with_param("tag", i.to_string())),
            );
        }
        sim.run();
        let runs = sim.actor::<CentralClient>(client).unwrap().runs();
        let mut by_cluster: Vec<&str> = runs.iter().filter_map(|r| r.cluster.as_deref()).collect();
        by_cluster.sort_unstable();
        assert_eq!(by_cluster, ["a", "a", "b", "b", "c", "c"]);
    }

    #[test]
    fn least_loaded_prefers_idle_member() {
        let mut sim = Sim::new(3);
        let (_controller, client, clusters) =
            world(&mut sim, CentralPolicy::GlobalLeastLoaded, &["busy", "idle"]);
        // Pre-load the first cluster with a long-running placeholder job so
        // the global view shows it as busy.
        let now = sim.now();
        {
            let mut api = clusters[0].api.write();
            let spec = lidc_k8s::pod::PodSpec::single(lidc_k8s::pod::ContainerSpec {
                name: "hog".into(),
                image: "hog:latest".into(),
                requests: Resources::new(14, 60),
                workload: lidc_k8s::pod::WorkloadSpec::Run {
                    duration: SimDuration::from_hours(100),
                    output: None,
                },
            });
            let job = lidc_k8s::job::Job::new(
                lidc_k8s::meta::ObjectMeta::named("hog"),
                spec,
                1,
            );
            api.create_job(job, now).unwrap();
        }
        sim.send(clusters[0].actor, lidc_k8s::cluster::Nudge);
        sim.run_for(SimDuration::from_secs(5));
        sim.send(client, SubmitCentral(blast()));
        sim.run();
        let runs = sim.actor::<CentralClient>(client).unwrap().runs();
        assert!(runs[0].is_success(), "error = {:?}", runs[0].error);
        assert_eq!(runs[0].cluster.as_deref(), Some("idle"));
    }

    #[test]
    fn controller_crash_fails_all_placement() {
        let mut sim = Sim::new(4);
        let (controller, client, _clusters) =
            world(&mut sim, CentralPolicy::RoundRobin, &["a", "b"]);
        // Kill the single point of failure before anything is submitted.
        sim.kill(controller);
        sim.send(client, SubmitCentral(blast()));
        sim.run();
        let runs = sim.actor::<CentralClient>(client).unwrap().runs();
        assert!(!runs[0].is_success());
        assert!(runs[0].error.as_deref().unwrap().contains("submit-"));
    }

    #[test]
    fn no_members_nacked() {
        let mut sim = Sim::new(5);
        let (_controller, client, _clusters) = world(&mut sim, CentralPolicy::RoundRobin, &[]);
        sim.send(client, SubmitCentral(blast()));
        sim.run();
        let runs = sim.actor::<CentralClient>(client).unwrap().runs();
        assert_eq!(runs[0].error.as_deref(), Some("no-members"));
    }
}
