//! Chaos harness: LIDC vs the centralized baseline under the **same**
//! deterministic fault schedule.
//!
//! The paper's location-independence claim is an *adversity* claim: when
//! clusters die and nodes crash, a client that names the computation (LIDC)
//! keeps completing work, while a client that names the controller inherits
//! every one of the controller's blind spots. This module stands up both
//! worlds from one [`ChaosConfig`] — same seed, same job stream, same
//! [`FaultSchedule`] — and reduces each run to a [`ChaosOutcome`] whose
//! [`ChaosOutcome::fingerprint`] is bit-stable across thread counts and
//! repeat runs (the determinism contract of [`lidc_simcore::faults`]).
//!
//! ## Fault mapping
//!
//! Symbolic fault targets resolve differently per world, but the schedule
//! is shared verbatim:
//!
//! | Fault | LIDC world | Baseline world |
//! |---|---|---|
//! | `ClusterOutage` | WAN face to the cluster goes down | every member node goes unready |
//! | `NodeCrash` | `SetNodeReady(false)` on the node | `SetNodeReady(false)` on the node |
//! | `LinkDown` | both ends of the WAN link go down | *no-op* (members attach directly) |
//! | `LinkDegrade` / `PacketCorrupt` / `SlowProducer` | [`DegradeLink`] on both ends | *no-op* |
//! | `StaleFib` | prefix withdrawn / re-announced on the router FIB | *no-op* |
//! | `ByzantineProducer` | the cluster's gateway mangles every reply ([`SetByzantine`]) | *no-op* |
//! | `RegionOutage` | both ends of every member cluster's WAN link go down | every member cluster's nodes go unready |
//!
//! The no-ops **favour the baseline** — it never pays WAN latency, loss or
//! corruption — so a completion-rate win for LIDC is conservative. The
//! standard comparison schedule ([`ChaosConfig::standard`]) therefore uses
//! only `ClusterOutage` + `NodeCrash`, the two kinds both worlds map
//! faithfully.
//!
//! Both worlds run with [`Sim::run_for`] up to [`ChaosConfig::horizon`]:
//! under a permanent outage the baseline client polls its parked jobs
//! forever, so an open-ended `run()` would never return.

use std::collections::BTreeMap;

use lidc_core::client::{ClientConfig, ScienceClient, Submit};
use lidc_core::gateway::{ByzantineMode, SetByzantine};
use lidc_core::naming::ComputeRequest;
use lidc_core::overlay::{ClusterSpec, Overlay, OverlayConfig};
use lidc_core::placement::PlacementPolicy;
use lidc_k8s::cluster::{Cluster, ClusterConfig, SetNodeReady};
use lidc_k8s::node::Node;
use lidc_k8s::resources::Resources;
use lidc_ndn::face::{FaceId, FaceIdAlloc};
use lidc_ndn::forwarder::{
    DegradeLink, Forwarder, ForwarderConfig, RegisterPrefix, SetFaceUp, UnregisterPrefix,
};
use lidc_ndn::name::Name;
use lidc_simcore::engine::{ActorId, Sim};
use lidc_simcore::faults::{
    FaultAction, FaultController, FaultEvent, FaultHook, FaultKind, FaultSchedule,
};
use lidc_simcore::report::Table;
use lidc_simcore::time::SimDuration;

use crate::central::{CentralController, CentralPolicy};
use crate::client::{CentralClient, SubmitCentral};

/// One chaos experiment: topology, workload, faults, and determinism knobs.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed (drives the sim and, transitively, every actor stream).
    pub seed: u64,
    /// Jobs submitted, spaced [`ChaosConfig::submit_spacing`] apart.
    pub jobs: u32,
    /// Member clusters as `(name, WAN latency)` (latency is LIDC-only —
    /// baseline members attach directly to the controller).
    pub clusters: Vec<(String, SimDuration)>,
    /// Worker nodes per cluster, named `{cluster}-node-{i}` in both worlds
    /// so `NodeCrash` targets resolve identically.
    pub nodes_per_cluster: u32,
    /// The shared fault schedule.
    pub schedule: FaultSchedule,
    /// Worker threads for the sim (outcomes must not depend on this).
    pub threads: usize,
    /// PIT/CS shard count for every forwarder (ditto).
    pub shards: usize,
    /// Gap between successive job submissions.
    pub submit_spacing: SimDuration,
    /// Hard stop for the run.
    pub horizon: SimDuration,
    /// Run both worlds under the horizon scheduler
    /// ([`Sim::set_horizon`]) instead of the legacy global-clock loop.
    /// Outcomes must not depend on this — the engine modes are
    /// bit-identical (see docs/ENGINE.md).
    pub horizon_mode: bool,
}

impl ChaosConfig {
    /// The standard three-cluster comparison scenario: a transient node
    /// crash on `west`, a **permanent** outage of `east` (the round-robin
    /// controller keeps parking a third of its placements there), and a
    /// second transient crash while the first is still healing.
    pub fn standard(seed: u64) -> Self {
        let schedule = FaultSchedule::new()
            .with(FaultEvent::transient(
                SimDuration::from_secs(20),
                SimDuration::from_secs(40),
                FaultKind::NodeCrash {
                    cluster: "west".into(),
                    node: "west-node-1".into(),
                },
            ))
            .with(FaultEvent::permanent(
                SimDuration::from_secs(40),
                FaultKind::ClusterOutage {
                    cluster: "east".into(),
                },
            ))
            .with(FaultEvent::transient(
                SimDuration::from_secs(50),
                SimDuration::from_secs(30),
                FaultKind::NodeCrash {
                    cluster: "south".into(),
                    node: "south-node-0".into(),
                },
            ));
        ChaosConfig {
            seed,
            jobs: 12,
            clusters: vec![
                ("west".into(), SimDuration::from_millis(10)),
                ("east".into(), SimDuration::from_millis(30)),
                ("south".into(), SimDuration::from_millis(60)),
            ],
            nodes_per_cluster: 2,
            schedule,
            threads: 1,
            shards: 1,
            submit_spacing: SimDuration::from_secs(10),
            horizon: SimDuration::from_mins(60),
            horizon_mode: false,
        }
    }

    /// The byzantine-producer integrity scenario: from t=15s on, `east`'s
    /// gateway answers every Interest with unsigned garbage (the
    /// [`FaultKind::ByzantineProducer`] unsigned variant). No honest reply
    /// from east ever arrives again, so completing the whole job stream
    /// means the clients' resubmission path steered everything to the
    /// honest clusters — and the first-hop verification gate must have
    /// kept every poisoned reply out of every Content Store.
    pub fn byzantine(seed: u64) -> Self {
        let schedule = FaultSchedule::new().with(FaultEvent::permanent(
            SimDuration::from_secs(15),
            FaultKind::ByzantineProducer {
                cluster: "east".into(),
                signed: false,
            },
        ));
        ChaosConfig {
            schedule,
            ..ChaosConfig::standard(seed)
        }
    }

    /// The correlated region-outage scenario: `west` and `east` share the
    /// "coastal" region and fail **together** at t=30s for 60s (one
    /// [`FaultKind::RegionOutage`] firing cuts both WAN links in the LIDC
    /// world and unreadies both node pools in the baseline world), then
    /// heal together. Only `south` stays up during the outage.
    pub fn region_outage(seed: u64) -> Self {
        let schedule = FaultSchedule::new().with(FaultEvent::transient(
            SimDuration::from_secs(30),
            SimDuration::from_secs(60),
            FaultKind::RegionOutage {
                region: "coastal".into(),
                members: vec!["west".into(), "east".into()],
            },
        ));
        ChaosConfig {
            schedule,
            ..ChaosConfig::standard(seed)
        }
    }

    fn client_config(&self) -> ClientConfig {
        ClientConfig {
            retries: 5,
            max_status_failures: 10,
            resubmit_attempts: 4,
            poll_interval: SimDuration::from_secs(10),
            // The baseline's status protocol never serves result objects,
            // so neither world fetches them (fair comparison).
            fetch_results: false,
            ..Default::default()
        }
    }

    /// A generic short job. No `srr`/`size` params: both planners then
    /// fall back to the same 1 GB default input, so the two worlds run
    /// identical 5-second jobs through the shared cost model.
    fn request(&self, tag: u32) -> ComputeRequest {
        ComputeRequest::new("CHAOS", 2, 4).with_param("tag", tag.to_string())
    }
}

/// The reduced result of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Which world produced it (`"lidc"` / `"baseline"`).
    pub label: String,
    /// Jobs submitted.
    pub submitted: u32,
    /// Jobs that reached `Completed` (result fetched where applicable).
    pub completed: u32,
    /// Jobs that terminally failed before the horizon.
    pub failed: u32,
    /// p99 turnaround over completed jobs.
    pub p99_turnaround: Option<SimDuration>,
    /// Whole-request resubmissions — the wasted work the faults induced.
    pub resubmissions: u64,
    /// Faults injected over the run.
    pub faults_injected: u64,
    /// Data packets a forwarder refused on signature verification.
    pub verify_failed: u64,
    /// Verification failures that would have satisfied a PIT entry — the
    /// packets that were one gate away from entering a Content Store.
    pub cs_poison_rejected: u64,
    /// The controller's applied-fault timeline (one line per firing).
    pub fault_timeline: String,
}

impl ChaosOutcome {
    /// Completed / submitted (1.0 when nothing was submitted).
    pub fn completion_rate(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            f64::from(self.completed) / f64::from(self.submitted)
        }
    }

    /// A deterministic digest of everything observable: counts, latency,
    /// wasted work and the full fault timeline. Two runs of the same
    /// config must produce byte-identical fingerprints regardless of
    /// thread count or shard count.
    pub fn fingerprint(&self) -> String {
        format!(
            "{} submitted={} completed={} failed={} resubmits={} p99={:?} \
             verify_failed={} poison_rejected={}\n{}",
            self.label,
            self.submitted,
            self.completed,
            self.failed,
            self.resubmissions,
            self.p99_turnaround,
            self.verify_failed,
            self.cs_poison_rejected,
            self.fault_timeline
        )
    }
}

fn p99(mut turnarounds: Vec<SimDuration>) -> Option<SimDuration> {
    if turnarounds.is_empty() {
        return None;
    }
    turnarounds.sort();
    let n = turnarounds.len();
    let idx = ((n as f64) * 0.99).ceil() as usize;
    Some(turnarounds[idx.saturating_sub(1).min(n - 1)])
}

/// Per-cluster actor/face handles the LIDC fault hook needs.
struct LidcTargets {
    router: ActorId,
    /// name → (router-side face, gateway NFD actor, gateway-side face).
    links: BTreeMap<String, (FaceId, ActorId, FaceId)>,
    /// name → k8s control-plane actor.
    k8s: BTreeMap<String, ActorId>,
    /// name → gateway application actor (the byzantine-fault target).
    gateways: BTreeMap<String, ActorId>,
    /// name → routing cost the cluster registered with (latency in µs);
    /// needed to re-announce a prefix when a `StaleFib` fault heals.
    costs: BTreeMap<String, u32>,
}

fn lidc_hook(t: LidcTargets) -> FaultHook {
    Box::new(move |kind, action, ctx| {
        let inject = action == FaultAction::Inject;
        match kind {
            FaultKind::ClusterOutage { cluster } => {
                if let Some(&(face, _, _)) = t.links.get(cluster) {
                    ctx.send(t.router, SetFaceUp { face, up: !inject });
                }
            }
            FaultKind::NodeCrash { cluster, node } => {
                if let Some(&actor) = t.k8s.get(cluster) {
                    ctx.send(actor, SetNodeReady {
                        node: node.clone(),
                        ready: !inject,
                    });
                }
            }
            FaultKind::LinkDown { link } => {
                if let Some(&(rf, gw, gf)) = t.links.get(link) {
                    ctx.send(t.router, SetFaceUp { face: rf, up: !inject });
                    ctx.send(gw, SetFaceUp { face: gf, up: !inject });
                }
            }
            FaultKind::LinkDegrade {
                link,
                latency_factor,
                extra_loss,
            } => degrade(&t, ctx, link, inject, *latency_factor, *extra_loss, 0.0),
            FaultKind::SlowProducer { producer, factor } => {
                degrade(&t, ctx, producer, inject, *factor, 0.0, 0.0);
            }
            FaultKind::PacketCorrupt { link, probability } => {
                degrade(&t, ctx, link, inject, 1.0, 0.0, *probability);
            }
            FaultKind::ByzantineProducer { cluster, signed } => {
                if let Some(&gateway) = t.gateways.get(cluster) {
                    let mode = if *signed {
                        ByzantineMode::SignedWrongName
                    } else {
                        ByzantineMode::UnsignedGarbage
                    };
                    ctx.send(gateway, SetByzantine(inject.then_some(mode)));
                }
            }
            FaultKind::RegionOutage { region: _, members } => {
                // One firing takes down every member cluster's WAN link
                // (both ends, like LinkDown), modelling a correlated
                // regional failure; recovery restores them together.
                for member in members {
                    if let Some(&(rf, gw, gf)) = t.links.get(member) {
                        ctx.send(t.router, SetFaceUp { face: rf, up: !inject });
                        ctx.send(gw, SetFaceUp { face: gf, up: !inject });
                    }
                }
            }
            FaultKind::StaleFib { prefix, cluster } => {
                let (Ok(prefix), Some(&(face, _, _))) =
                    (Name::parse(prefix), t.links.get(cluster))
                else {
                    return;
                };
                if inject {
                    ctx.send(t.router, UnregisterPrefix { prefix, face });
                } else {
                    let cost = t.costs.get(cluster).copied().unwrap_or(0);
                    ctx.send(t.router, RegisterPrefix { prefix, face, cost });
                }
            }
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn degrade(
    t: &LidcTargets,
    ctx: &mut lidc_simcore::engine::Ctx<'_>,
    link: &str,
    inject: bool,
    latency_factor: f64,
    extra_loss: f64,
    corrupt: f64,
) {
    let Some(&(rf, gw, gf)) = t.links.get(link) else {
        return;
    };
    let (lf, el, co) = if inject {
        (latency_factor, extra_loss, corrupt)
    } else {
        (1.0, 0.0, 0.0)
    };
    ctx.send(t.router, DegradeLink {
        face: rf,
        latency_factor: lf,
        extra_loss: el,
        corrupt: co,
    });
    ctx.send(gw, DegradeLink {
        face: gf,
        latency_factor: lf,
        extra_loss: el,
        corrupt: co,
    });
}

/// The poisoned-cache invariant: **no** forwarder may hold Data that
/// fails signature verification, no matter what byzantine producers or
/// bit-flipping links did during the run. Asserted over every shard of
/// every listed forwarder's Content Store after each chaos run.
pub fn assert_no_poisoned_cache(sim: &Sim, forwarders: &[(String, ActorId)]) {
    for (label, id) in forwarders {
        let fwd = sim.actor::<Forwarder>(*id).expect("forwarder");
        for shard in fwd.cs().shards() {
            for (name, data) in shard.entries() {
                assert!(
                    data.verify(None),
                    "unverifiable Data cached in {label}'s Content Store: {name}"
                );
            }
        }
    }
}

/// The runtime half of the metric-key contract: the static lint proves
/// literal keys are registered, this proves the *run* stayed inside the
/// schema (dynamic keys included). Panics naming the drifted keys.
pub fn assert_metrics_registered(sim: &Sim) {
    let m = sim.metrics_ref();
    let bad = lidc_simcore::metrics_keys::unregistered(
        m.counter_names().chain(m.histogram_names()),
    );
    assert!(bad.is_empty(), "metric keys recorded but not registered in metrics_keys.rs: {bad:?}");
}

/// Run the LIDC world under `cfg`'s schedule.
pub fn run_lidc_chaos(cfg: &ChaosConfig) -> ChaosOutcome {
    let mut sim = Sim::new(cfg.seed);
    sim.set_threads(cfg.threads);
    sim.set_horizon(cfg.horizon_mode);
    // Round-robin placement mirrors the baseline controller's policy, so
    // the *only* architectural difference is who makes the decision.
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::RoundRobin,
        clusters: cfg
            .clusters
            .iter()
            .map(|(name, latency)| {
                ClusterSpec::new(name.clone(), *latency).with_nodes(cfg.nodes_per_cluster, 16, 64)
            })
            .collect(),
        forwarder_shards: cfg.shards.max(1),
        // The generic chaos job needs no lake input; the baseline world
        // loads no datasets either.
        load_datasets: false,
        ..Default::default()
    });
    let mut links = BTreeMap::new();
    let mut k8s = BTreeMap::new();
    let mut gateways = BTreeMap::new();
    let mut costs = BTreeMap::new();
    for c in &overlay.clusters {
        let rf = overlay.face_of(&c.name).expect("router face");
        let gf = overlay.cluster_face_of(&c.name).expect("cluster face");
        links.insert(c.name.clone(), (rf, c.gateway_fwd, gf));
        k8s.insert(c.name.clone(), c.k8s.actor);
        gateways.insert(c.name.clone(), c.gateway_app);
    }
    for (name, latency) in &cfg.clusters {
        let cost = u32::try_from(latency.as_nanos() / 1_000).unwrap_or(u32::MAX);
        costs.insert(name.clone(), cost);
    }
    let controller = FaultController::deploy(
        &mut sim,
        cfg.schedule.clone(),
        lidc_hook(LidcTargets {
            router: overlay.router,
            links,
            k8s,
            gateways,
            costs,
        }),
    );
    let alloc = overlay.alloc.clone();
    let client = ScienceClient::deploy(cfg.client_config(), &mut sim, overlay.router, &alloc, "u");
    for tag in 0..cfg.jobs {
        let at = cfg.submit_spacing.mul_f64(f64::from(tag));
        sim.send_after(at, client, Submit(cfg.request(tag)));
    }
    sim.run_for(cfg.horizon);
    let runs = sim.actor::<ScienceClient>(client).expect("client").runs();
    let completed = runs.iter().filter(|r| r.is_success()).count() as u32;
    let failed = runs.iter().filter(|r| r.error.is_some()).count() as u32;
    let turnarounds = runs.iter().filter_map(|r| r.turnaround()).collect();
    let timeline = sim
        .actor::<FaultController>(controller)
        .expect("controller")
        .timeline_text();
    assert_metrics_registered(&sim);
    let mut forwarders = vec![("router".to_owned(), overlay.router)];
    for c in &overlay.clusters {
        forwarders.push((format!("{}-nfd", c.name), c.gateway_fwd));
    }
    assert_no_poisoned_cache(&sim, &forwarders);
    ChaosOutcome {
        label: "lidc".into(),
        submitted: runs.len() as u32,
        completed,
        failed,
        p99_turnaround: p99(turnarounds),
        resubmissions: sim.metrics_ref().counter("client.resubmissions"),
        faults_injected: sim.metrics_ref().counter("fault.injected"),
        verify_failed: sim.metrics_ref().counter("ndn.verify_failed"),
        cs_poison_rejected: sim.metrics_ref().counter("ndn.cs_poison_rejected"),
        fault_timeline: timeline,
    }
}

fn baseline_hook(k8s: BTreeMap<String, (ActorId, Vec<String>)>) -> FaultHook {
    Box::new(move |kind, action, ctx| {
        let inject = action == FaultAction::Inject;
        match kind {
            FaultKind::ClusterOutage { cluster } => {
                if let Some((actor, nodes)) = k8s.get(cluster) {
                    for node in nodes {
                        ctx.send(*actor, SetNodeReady {
                            node: node.clone(),
                            ready: !inject,
                        });
                    }
                }
            }
            FaultKind::NodeCrash { cluster, node } => {
                if let Some((actor, _)) = k8s.get(cluster) {
                    ctx.send(*actor, SetNodeReady {
                        node: node.clone(),
                        ready: !inject,
                    });
                }
            }
            FaultKind::RegionOutage { region: _, members } => {
                // Correlated failure: every member cluster loses all of
                // its nodes at once (the baseline has no WAN links to cut).
                for member in members {
                    if let Some((actor, nodes)) = k8s.get(member) {
                        for node in nodes {
                            ctx.send(*actor, SetNodeReady {
                                node: node.clone(),
                                ready: !inject,
                            });
                        }
                    }
                }
            }
            // The baseline has no WAN links to degrade and its producer
            // (the controller itself) is trusted — see the module docs:
            // these no-ops bias in the baseline's favour.
            _ => ctx.metrics().incr("fault.unmapped", 1),
        }
    })
}

/// Run the centralized-controller world under the same schedule.
pub fn run_baseline_chaos(cfg: &ChaosConfig) -> ChaosOutcome {
    let mut sim = Sim::new(cfg.seed);
    sim.set_threads(cfg.threads);
    sim.set_horizon(cfg.horizon_mode);
    let alloc = FaceIdAlloc::new();
    let router = sim.spawn(
        "router",
        Forwarder::new("router", ForwarderConfig {
            shards: cfg.shards.max(1),
            ..Default::default()
        }),
    );
    let controller =
        CentralController::new(CentralPolicy::RoundRobin).deploy(&mut sim, router, &alloc);
    let mut k8s = BTreeMap::new();
    for (name, _latency) in &cfg.clusters {
        let c = Cluster::spawn(&mut sim, ClusterConfig::named(name));
        let nodes: Vec<String> = (0..cfg.nodes_per_cluster)
            .map(|i| format!("{name}-node-{i}"))
            .collect();
        for node in &nodes {
            c.add_node(&mut sim, Node::new(node.clone(), Resources::new(16, 64)));
        }
        k8s.insert(name.clone(), (c.actor, nodes));
        CentralController::add_member(&mut sim, controller, name.clone(), c);
    }
    let fault_controller =
        FaultController::deploy(&mut sim, cfg.schedule.clone(), baseline_hook(k8s));
    let client = CentralClient::deploy(cfg.client_config(), &mut sim, router, &alloc, "u");
    for tag in 0..cfg.jobs {
        let at = cfg.submit_spacing.mul_f64(f64::from(tag));
        sim.send_after(at, client, SubmitCentral(cfg.request(tag)));
    }
    sim.run_for(cfg.horizon);
    let runs = sim.actor::<CentralClient>(client).expect("client").runs();
    let completed = runs.iter().filter(|r| r.is_success()).count() as u32;
    let failed = runs.iter().filter(|r| r.error.is_some()).count() as u32;
    let turnarounds = runs.iter().filter_map(|r| r.turnaround()).collect();
    let timeline = sim
        .actor::<FaultController>(fault_controller)
        .expect("controller")
        .timeline_text();
    assert_metrics_registered(&sim);
    assert_no_poisoned_cache(&sim, &[("router".to_owned(), router)]);
    ChaosOutcome {
        label: "baseline".into(),
        submitted: runs.len() as u32,
        completed,
        failed,
        p99_turnaround: p99(turnarounds),
        resubmissions: sim.metrics_ref().counter("client.resubmissions"),
        faults_injected: sim.metrics_ref().counter("fault.injected"),
        verify_failed: sim.metrics_ref().counter("ndn.verify_failed"),
        cs_poison_rejected: sim.metrics_ref().counter("ndn.cs_poison_rejected"),
        fault_timeline: timeline,
    }
}

/// Render the side-by-side comparison the `chaos` CLI subcommand prints.
pub fn comparison_table(outcomes: &[&ChaosOutcome]) -> Table {
    let mut table = Table::new("completion under the identical fault schedule", &[
        "system",
        "submitted",
        "completed",
        "rate",
        "p99 turnaround",
        "resubmissions",
        "faults",
    ]);
    for o in outcomes {
        table.push_row(vec![
            o.label.clone(),
            o.submitted.to_string(),
            o.completed.to_string(),
            format!("{:.0}%", o.completion_rate() * 100.0),
            o.p99_turnaround
                .map_or_else(|| "-".to_owned(), |d| format!("{:.1}s", d.as_secs_f64())),
            o.resubmissions.to_string(),
            o.faults_injected.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_schedule_is_outage_and_crash_only() {
        let cfg = ChaosConfig::standard(1);
        assert!(cfg.schedule.events().iter().all(|e| matches!(
            e.kind,
            FaultKind::ClusterOutage { .. } | FaultKind::NodeCrash { .. }
        )));
    }

    #[test]
    fn p99_picks_the_tail() {
        assert_eq!(p99(vec![]), None);
        let ds: Vec<SimDuration> = (1..=100).map(SimDuration::from_secs).collect();
        assert_eq!(p99(ds), Some(SimDuration::from_secs(99)));
        assert_eq!(
            p99(vec![SimDuration::from_secs(5)]),
            Some(SimDuration::from_secs(5))
        );
    }
}
