//! The centralized comparator: a logically centralized multi-cluster
//! controller (the K8s-federation-style design the paper argues against,
//! §I: "they still rely on a logically centralized control plane, managed
//! by a central entity").
//!
//! For a fair comparison the controller rides the same NDN substrate as
//! LIDC — it is a producer on the WAN router answering `/central/...`
//! Interests — but placement is *logically centralized*: every request
//! flows through this one actor, which holds direct handles to every
//! member cluster's API server. Kill the actor (single point of failure)
//! and no placement happens anywhere, even though every cluster is healthy.

use std::collections::HashMap;

use lidc_core::gateway::SharedPredictor;
use lidc_core::naming::ComputeRequest;
use lidc_core::status::{JobState, SubmitAck};
use lidc_genomics::costmodel::CostModel;
use lidc_k8s::cluster::{Cluster, Nudge};
use lidc_k8s::job::JobCondition;
use lidc_k8s::meta::{ObjectKey, ObjectMeta};
use lidc_k8s::pod::{ContainerSpec, PodSpec, WorkloadSpec};
use lidc_k8s::resources::Resources;
use lidc_ndn::app::Producer;
use lidc_ndn::face::FaceIdAlloc;
use lidc_ndn::forwarder::{AppRx, Forwarder};
use lidc_ndn::name::Name;
use lidc_ndn::net::attach_app;
use lidc_ndn::packet::{ContentType, Data, Interest, Packet};
use lidc_ndn::name;
use lidc_simcore::engine::{Actor, ActorId, Ctx, Msg, Sim};
use lidc_simcore::time::SimDuration;

/// The centralized placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CentralPolicy {
    /// Cycle through registered clusters.
    #[default]
    RoundRobin,
    /// Global least-loaded placement (the controller reads every API
    /// server directly — the advantage centralization buys).
    GlobalLeastLoaded,
}

/// The `/central` name prefix.
pub fn central_prefix() -> Name {
    name!("/central")
}

/// A member cluster registered with the controller.
#[derive(Clone)]
struct Member {
    name: String,
    cluster: Cluster,
}

/// Per-job record.
#[derive(Clone)]
struct CentralJob {
    member: usize,
    key: ObjectKey,
    output_bytes: u64,
}

/// The centralized controller actor.
pub struct CentralController {
    producer: Option<Producer>,
    policy: CentralPolicy,
    model: CostModel,
    members: Vec<Member>,
    jobs: HashMap<String, CentralJob>,
    next_job: u64,
    rr_cursor: usize,
    /// Jobs placed (diagnostics).
    pub jobs_created: u64,
    _predictor: Option<SharedPredictor>,
}

impl CentralController {
    /// Build a controller with the given policy.
    pub fn new(policy: CentralPolicy) -> Self {
        CentralController {
            producer: None,
            policy,
            model: CostModel::paper_calibrated(),
            members: Vec::new(),
            jobs: HashMap::new(),
            next_job: 0,
            rr_cursor: 0,
            jobs_created: 0,
            _predictor: None,
        }
    }

    /// Deploy the controller as a producer on `router`, registering
    /// `/central`. Returns the actor id.
    pub fn deploy(
        self,
        sim: &mut Sim,
        router: ActorId,
        alloc: &FaceIdAlloc,
    ) -> ActorId {
        let app = sim.spawn("central-controller", self);
        let face = attach_app(sim, router, app, alloc);
        sim.actor_mut::<CentralController>(app).unwrap().producer =
            Some(Producer::new(router, face));
        sim.actor_mut::<Forwarder>(router)
            .unwrap()
            .register_prefix(central_prefix(), face, 0);
        app
    }

    /// Register a member cluster (the controller must be told about every
    /// cluster — contrast with LIDC, where clusters just announce names).
    pub fn add_member(sim: &mut Sim, controller: ActorId, name: impl Into<String>, cluster: Cluster) {
        sim.actor_mut::<CentralController>(controller)
            .expect("controller alive")
            .members
            .push(Member {
                name: name.into(),
                cluster,
            });
    }

    fn pick_member(&mut self) -> Option<usize> {
        if self.members.is_empty() {
            return None;
        }
        match self.policy {
            CentralPolicy::RoundRobin => {
                let idx = self.rr_cursor % self.members.len();
                self.rr_cursor += 1;
                Some(idx)
            }
            CentralPolicy::GlobalLeastLoaded => {
                let mut best = 0usize;
                let mut best_load = f64::INFINITY;
                for (i, m) in self.members.iter().enumerate() {
                    let api = m.cluster.api.read();
                    let allocatable = api.cluster_allocatable();
                    let free = api.cluster_free();
                    let used = allocatable.saturating_sub(&free);
                    let load = used.dominant_utilisation(&allocatable);
                    if load < best_load {
                        best_load = load;
                        best = i;
                    }
                }
                Some(best)
            }
        }
    }

    fn on_submit(&mut self, interest: Interest, request: ComputeRequest, ctx: &mut Ctx<'_>) {
        let Some(member_idx) = self.pick_member() else {
            self.reply_nack(ctx, interest.name, "no-members".into());
            return;
        };
        // Plan via the same cost model as LIDC (fair comparison).
        let accession = request.param("srr");
        let input_bytes = accession
            .and_then(lidc_genomics::blast::lookup_run)
            .map(|r| r.size_bytes)
            .unwrap_or(1_000_000_000);
        let est = self.model.estimate(
            &request.app,
            accession,
            input_bytes,
            request.cpu_cores,
            request.mem_gib,
        );
        let seq = self.next_job;
        self.next_job += 1;
        // lidc-lint: allow(panic-path) reason="pick_member just returned member_idx after checking it against members.len(), and members is fixed at construction"
        let member = self.members[member_idx].clone();
        let job_id = format!("central-job-{seq}");
        let template = PodSpec::single(ContainerSpec {
            name: request.app.to_lowercase(),
            image: format!("central/{}:latest", request.app.to_lowercase()),
            requests: Resources::new(request.cpu_cores, request.mem_gib),
            workload: WorkloadSpec::Run {
                duration: est.duration,
                output: Some((format!("/central-results/{job_id}"), est.output_bytes)),
            },
        });
        let created = {
            let now = ctx.now();
            let job = lidc_k8s::job::Job::new(ObjectMeta::named(&job_id), template, 2);
            member.cluster.api.write().create_job(job, now)
        };
        let key = match created {
            Ok(k) => k,
            Err(e) => {
                self.reply_nack(ctx, interest.name, format!("create-failed: {e}"));
                return;
            }
        };
        ctx.send(member.cluster.actor, Nudge);
        self.jobs.insert(job_id.clone(), CentralJob {
            member: member_idx,
            key,
            output_bytes: est.output_bytes,
        });
        self.jobs_created += 1;
        ctx.metrics().incr("central.jobs_created", 1);
        let ack = SubmitAck {
            job_id,
            cluster: member.name.clone(),
            state: "Pending".into(),
        };
        let data = Data::new(interest.name, ack.to_text().into_bytes()).sign_digest();
        // lidc-lint: allow(panic-path) reason="deploy() installs the producer before the controller id escapes, so no Interest can arrive while it is None"
        self.producer.expect("deployed").reply(ctx, data);
    }

    fn on_status(&mut self, interest: Interest, job_id: &str, ctx: &mut Ctx<'_>) {
        let Some(record) = self.jobs.get(job_id) else {
            self.reply_nack(ctx, interest.name, format!("unknown-job: {job_id}"));
            return;
        };
        let condition = self.members[record.member]
            .cluster
            .job(&record.key)
            .map(|j| (j.status.condition, j.status.message.clone()));
        let state = match condition {
            None | Some((JobCondition::Pending, _)) => JobState::Pending,
            // The centralized design has no per-app learning; no ETA.
            Some((JobCondition::Running, _)) => JobState::Running { eta_secs: None },
            Some((JobCondition::Completed, _)) => JobState::Completed {
                result: central_prefix()
                    .child_str("results")
                    .child_str(job_id),
                size: record.output_bytes,
            },
            Some((JobCondition::Failed, message)) => JobState::Failed { error: message },
        };
        let data = Data::new(interest.name, state.to_text().into_bytes())
            .with_freshness(SimDuration::from_millis(100))
            .sign_digest();
        // lidc-lint: allow(panic-path) reason="deploy() installs the producer before the controller id escapes, so no Interest can arrive while it is None"
        self.producer.expect("deployed").reply(ctx, data);
    }

    fn reply_nack(&mut self, ctx: &mut Ctx<'_>, name: Name, message: String) {
        let data = Data::new(name, message.into_bytes())
            .with_content_type(ContentType::Nack)
            .with_freshness(SimDuration::from_millis(100))
            .sign_digest();
        // lidc-lint: allow(panic-path) reason="deploy() installs the producer before the controller id escapes, so no Interest can arrive while it is None"
        self.producer.expect("deployed").reply(ctx, data);
    }
}

impl Actor for CentralController {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let Ok(rx) = msg.downcast::<AppRx>() else {
            return;
        };
        let Packet::Interest(interest) = rx.packet else {
            return;
        };
        let name = interest.name.clone();
        let prefix = central_prefix();
        // /central/submit/<params> or /central/status/<job-id>
        if name.len() == prefix.len() + 2 {
            let verb = name.get(prefix.len()).and_then(|c| c.as_str());
            let arg = name.get(prefix.len() + 1).and_then(|c| c.as_str());
            match (verb, arg) {
                (Some("submit"), Some(params)) => {
                    match ComputeRequest::from_param_component(params) {
                        Ok(request) => self.on_submit(interest, request, ctx),
                        Err(e) => {
                            self.reply_nack(ctx, name, format!("malformed: {e}"));
                        }
                    }
                    return;
                }
                (Some("status"), Some(job_id)) => {
                    let job_id = job_id.to_owned();
                    self.on_status(interest, &job_id, ctx);
                    return;
                }
                _ => {}
            }
        }
        self.reply_nack(ctx, name, "unknown-central-request".into());
    }
}

/// Build the submit Interest name for a request.
pub fn submit_name(request: &ComputeRequest) -> Name {
    central_prefix()
        .child_str("submit")
        .child_str(&request.to_param_component())
}

/// Build the status Interest name for a job id.
pub fn status_name(job_id: &str) -> Name {
    central_prefix().child_str("status").child_str(job_id)
}
