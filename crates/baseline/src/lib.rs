//! # lidc-baseline — the comparators LIDC is measured against
//!
//! The paper's argument (§I) is that existing multi-cluster compute
//! placement either (a) flows through a *logically centralized control
//! plane* — K8s federation, Virtual Kubelet, Cilium Mesh — or (b) is
//! *manually tailored to one platform at a time*. This crate implements
//! both alternatives on the same simulated substrate so the benches can
//! compare them with LIDC's name-based decentralized placement under
//! identical workloads, topologies and failures:
//!
//! * [`central`] — a logically centralized federated controller
//!   ([`central::CentralController`]). Every placement decision flows
//!   through one actor that must be told about every member cluster; it is
//!   also a single point of failure.
//! * [`client`] — the science client for the centralized path
//!   ([`client::CentralClient`]); identical polling/retry behaviour to the
//!   LIDC [`ScienceClient`](lidc_core::client::ScienceClient), but requests
//!   name the *controller*, not the computation.
//! * [`manual`] — the per-platform manual configuration workflow
//!   ([`manual::ManualWorkflow`]): statically attached to one cluster, with
//!   an explicit operator delay charged for every re-tailoring.
//! * [`chaos`] — a harness that runs LIDC and the centralized baseline
//!   under the **same** deterministic fault schedule and compares
//!   completion rate, tail latency and wasted work.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod central;
pub mod chaos;
pub mod client;
pub mod manual;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::central::{
        central_prefix, status_name, submit_name, CentralController, CentralPolicy,
    };
    pub use crate::chaos::{
        comparison_table, run_baseline_chaos, run_lidc_chaos, ChaosConfig, ChaosOutcome,
    };
    pub use crate::client::{BaselineRun, CentralClient, SubmitCentral};
    pub use crate::manual::{ManualWorkflow, DEFAULT_RECONFIG_DELAY};
}
