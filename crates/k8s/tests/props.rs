//! Property-based tests for the Kubernetes simulator: resource arithmetic,
//! scheduler feasibility (never over-commits a node), and DNS name parsing.

use lidc_k8s::apiserver::ApiServer;
use lidc_k8s::dns::{parse_service_dns, resolve};
use lidc_k8s::meta::ObjectMeta;
use lidc_k8s::node::Node;
use lidc_k8s::pod::{ContainerSpec, Pod, PodSpec, WorkloadSpec};
use lidc_k8s::resources::{Cpu, Memory, Resources};
use lidc_k8s::scheduler::{Scheduler, ScorePolicy};
use lidc_k8s::service::Service;
use lidc_simcore::time::{SimDuration, SimTime};
use proptest::prelude::*;

// --- resources ---------------------------------------------------------------

proptest! {
    #[test]
    fn resources_fits_iff_both_axes_fit(
        a_cpu in 0u64..64, a_mem in 0u64..256,
        b_cpu in 0u64..64, b_mem in 0u64..256,
    ) {
        let a = Resources::new(a_cpu, a_mem);
        let b = Resources::new(b_cpu, b_mem);
        prop_assert_eq!(a.fits_in(&b), a_cpu <= b_cpu && a_mem <= b_mem);
    }

    #[test]
    fn resources_add_then_subtract_is_identity(
        a_cpu in 0u64..64, a_mem in 0u64..256,
        b_cpu in 0u64..64, b_mem in 0u64..256,
    ) {
        let a = Resources::new(a_cpu, a_mem);
        let b = Resources::new(b_cpu, b_mem);
        let sum = a + b;
        prop_assert_eq!(sum.saturating_sub(&b), a);
        prop_assert!(a.fits_in(&sum) && b.fits_in(&sum));
    }

    #[test]
    fn dominant_utilisation_bounded_when_fitting(
        used_cpu in 0u64..32, used_mem in 0u64..128,
        cap_cpu in 1u64..64, cap_mem in 1u64..256,
    ) {
        let used = Resources::new(used_cpu.min(cap_cpu), used_mem.min(cap_mem));
        let cap = Resources::new(cap_cpu, cap_mem);
        let util = used.dominant_utilisation(&cap);
        prop_assert!((0.0..=1.0).contains(&util), "{util}");
        let full = cap.dominant_utilisation(&cap);
        prop_assert!((full - 1.0).abs() < 1e-9);
    }

    #[test]
    fn millicore_and_mib_round_trips(millis in 0u64..1_000_000, mib in 0u64..1 << 22) {
        prop_assert_eq!(Cpu::millis(millis).0, millis);
        prop_assert_eq!(Memory::mib(mib), Memory::mib(mib));
        // GiB constructor is 1024 MiB.
        prop_assert_eq!(Memory::gib(1), Memory::mib(1024));
    }
}

// --- scheduler ----------------------------------------------------------------

fn pod(i: usize, cpu_millis: u64, mem_mib: u64) -> Pod {
    Pod::new(
        ObjectMeta::named(format!("p{i}")),
        PodSpec::single(ContainerSpec {
            name: format!("c{i}"),
            image: "x:latest".into(),
            requests: Resources {
                cpu: Cpu::millis(cpu_millis),
                memory: Memory::mib(mem_mib),
            },
            workload: WorkloadSpec::Run {
                duration: SimDuration::from_secs(60),
                output: None,
            },
        }),
    )
}

proptest! {
    /// Whatever the mix of node sizes and pod requests, after any number of
    /// scheduling passes no node's committed requests exceed its
    /// allocatable resources, and every binding satisfies the filter.
    #[test]
    fn scheduler_never_overcommits_any_node(
        policy in prop_oneof![Just(ScorePolicy::LeastAllocated), Just(ScorePolicy::MostAllocated), Just(ScorePolicy::Balanced)],
        nodes in proptest::collection::vec((1u64..16, 1u64..64), 1..5),
        pods in proptest::collection::vec((100u64..8_000, 128u64..16_384), 0..40),
    ) {
        let mut api = ApiServer::new("prop");
        let now = SimTime::ZERO;
        for (i, (cpu, mem)) in nodes.iter().enumerate() {
            api.add_node(Node::new(format!("n{i}"), Resources::new(*cpu, *mem)), now);
        }
        for (i, (cpu_m, mem_mib)) in pods.iter().enumerate() {
            api.create_pod(pod(i, *cpu_m, *mem_mib), now).unwrap();
        }
        let scheduler = Scheduler::new(policy);
        let bound = scheduler.schedule(&mut api, now);
        // Invariant: per-node usage within allocatable.
        let names: Vec<String> = api.nodes.keys().cloned().collect();
        for node in names {
            let usage = api.node_usage(&node);
            let cap = api.nodes[&node].allocatable;
            prop_assert!(
                usage.fits_in(&cap),
                "node {node}: usage {usage:?} > allocatable {cap:?}"
            );
        }
        // Every unbound pod genuinely fits on no node's *remaining* space.
        let unbound: Vec<_> = api
            .pods
            .values()
            .filter(|p| p.status.node.is_none())
            .map(|p| p.spec.total_requests())
            .collect();
        for want in unbound {
            let fits_somewhere = api
                .nodes
                .keys()
                .any(|n| {
                    let free = api.node_free(n);
                    want.fits_in(&free)
                });
            prop_assert!(!fits_somewhere, "pod left pending despite free space");
        }
        prop_assert!(bound.len() <= pods.len());
    }
}

// --- DNS -----------------------------------------------------------------------

proptest! {
    #[test]
    fn service_dns_parse_round_trip(
        svc in "[a-z][a-z0-9-]{0,20}",
        ns in "[a-z][a-z0-9-]{0,20}",
    ) {
        let dns = format!("{svc}.{ns}.svc.cluster.local");
        let key = parse_service_dns(&dns).expect("parses");
        prop_assert_eq!(key.name, svc);
        prop_assert_eq!(key.namespace, ns);
    }

    #[test]
    fn resolve_finds_exactly_created_services(
        names in proptest::collection::btree_set("[a-z][a-z0-9-]{0,12}", 1..8),
        probe in "[a-z][a-z0-9-]{0,12}",
    ) {
        let mut api = ApiServer::new("prop");
        let now = SimTime::ZERO;
        for name in &names {
            api.create_service(Service::cluster_ip(name, name, 80), now).unwrap();
        }
        for name in &names {
            let dns = format!("{name}.{}.svc.cluster.local", lidc_k8s::meta::DEFAULT_NAMESPACE);
            let r = resolve(&api, &dns).expect("created service resolves");
            prop_assert!(!r.cluster_ip.is_empty());
        }
        let dns = format!("{probe}.{}.svc.cluster.local", lidc_k8s::meta::DEFAULT_NAMESPACE);
        prop_assert_eq!(resolve(&api, &dns).is_ok(), names.contains(&probe));
    }
}
