//! Object metadata: names, namespaces, labels, selectors, UIDs.

use std::collections::BTreeMap;
use std::fmt;

use lidc_simcore::time::SimTime;

/// A unique object id within a cluster (assigned by the API server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Uid(pub u64);

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid-{}", self.0)
    }
}

/// Kubernetes-style object metadata.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObjectMeta {
    /// Object name, unique within (kind, namespace).
    pub name: String,
    /// Namespace; LIDC uses `ndnk8s` (per the paper's DNS example).
    pub namespace: String,
    /// Labels for selector matching.
    pub labels: BTreeMap<String, String>,
    /// Unique id, assigned on creation.
    pub uid: Uid,
    /// Creation timestamp (virtual).
    pub created_at: SimTime,
}

impl ObjectMeta {
    /// Metadata with a name in the default LIDC namespace.
    pub fn named(name: impl Into<String>) -> Self {
        ObjectMeta {
            name: name.into(),
            namespace: DEFAULT_NAMESPACE.to_owned(),
            ..Default::default()
        }
    }

    /// Builder: namespace.
    pub fn in_namespace(mut self, ns: impl Into<String>) -> Self {
        self.namespace = ns.into();
        self
    }

    /// Builder: add one label.
    pub fn with_label(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.labels.insert(k.into(), v.into());
        self
    }

    /// The `(namespace, name)` key used by the API server stores.
    pub fn key(&self) -> ObjectKey {
        ObjectKey {
            namespace: self.namespace.clone(),
            name: self.name.clone(),
        }
    }
}

/// The namespace LIDC deploys into (`dl-nfd.ndnk8s.svc.cluster.local`).
pub const DEFAULT_NAMESPACE: &str = "ndnk8s";

/// `(namespace, name)` pair keying API-server collections.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectKey {
    /// Namespace.
    pub namespace: String,
    /// Name.
    pub name: String,
}

impl ObjectKey {
    /// Construct a key.
    pub fn new(namespace: impl Into<String>, name: impl Into<String>) -> Self {
        ObjectKey {
            namespace: namespace.into(),
            name: name.into(),
        }
    }

    /// Key in the default namespace.
    pub fn named(name: impl Into<String>) -> Self {
        ObjectKey::new(DEFAULT_NAMESPACE, name)
    }
}

impl fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.namespace, self.name)
    }
}

/// An equality-based label selector (the subset Kubernetes services use).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LabelSelector {
    /// Every entry must match the target's labels exactly.
    pub match_labels: BTreeMap<String, String>,
}

impl LabelSelector {
    /// An empty selector. Per Kubernetes semantics an empty selector
    /// matches **nothing** when used by services here (avoids accidentally
    /// selecting every pod).
    pub fn none() -> Self {
        LabelSelector::default()
    }

    /// Selector requiring one label.
    pub fn eq(k: impl Into<String>, v: impl Into<String>) -> Self {
        let mut match_labels = BTreeMap::new();
        match_labels.insert(k.into(), v.into());
        LabelSelector { match_labels }
    }

    /// Builder: add a required label.
    pub fn and(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.match_labels.insert(k.into(), v.into());
        self
    }

    /// Whether `labels` satisfies the selector. Empty selectors match
    /// nothing.
    pub fn matches(&self, labels: &BTreeMap<String, String>) -> bool {
        if self.match_labels.is_empty() {
            return false;
        }
        self.match_labels
            .iter()
            .all(|(k, v)| labels.get(k) == Some(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_builders() {
        let m = ObjectMeta::named("gateway")
            .in_namespace("ndnk8s")
            .with_label("app", "nfd");
        assert_eq!(m.name, "gateway");
        assert_eq!(m.namespace, "ndnk8s");
        assert_eq!(m.labels.get("app").map(String::as_str), Some("nfd"));
        assert_eq!(m.key(), ObjectKey::new("ndnk8s", "gateway"));
        assert_eq!(m.key().to_string(), "ndnk8s/gateway");
    }

    #[test]
    fn selector_matching() {
        let sel = LabelSelector::eq("app", "blast").and("tier", "compute");
        let mut labels = BTreeMap::new();
        labels.insert("app".to_owned(), "blast".to_owned());
        assert!(!sel.matches(&labels), "partial match fails");
        labels.insert("tier".to_owned(), "compute".to_owned());
        assert!(sel.matches(&labels));
        labels.insert("extra".to_owned(), "ok".to_owned());
        assert!(sel.matches(&labels), "extra labels are fine");
    }

    #[test]
    fn empty_selector_matches_nothing() {
        let sel = LabelSelector::none();
        let mut labels = BTreeMap::new();
        assert!(!sel.matches(&labels));
        labels.insert("a".to_owned(), "b".to_owned());
        assert!(!sel.matches(&labels));
    }
}
