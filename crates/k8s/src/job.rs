//! Jobs: run-to-completion workloads with retry/backoff.
//!
//! The LIDC gateway turns every `/ndn/k8s/compute/...` Interest into one Job
//! (paper §III-C: "the Gateway initiates a Kubernetes job to run the desired
//! computation task").

use lidc_simcore::time::SimTime;

use crate::meta::ObjectMeta;
use crate::pod::PodSpec;

/// Job specification.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Pod template.
    pub template: PodSpec,
    /// Retries allowed after pod failure before the job fails.
    pub backoff_limit: u32,
}

/// Job condition (mirrors the LIDC status vocabulary: the paper's
/// `/ndn/k8s/status` responses are Pending/Running/Completed/Failed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobCondition {
    /// No pod has started yet.
    Pending,
    /// A pod is executing.
    Running,
    /// Finished successfully.
    Completed,
    /// Exhausted retries.
    Failed,
}

/// Job runtime status.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Condition.
    pub condition: JobCondition,
    /// Pods created so far (names).
    pub pods: Vec<String>,
    /// Failed attempts so far.
    pub failures: u32,
    /// When the first pod started.
    pub started_at: Option<SimTime>,
    /// When the job reached a terminal condition.
    pub finished_at: Option<SimTime>,
    /// Error message when failed.
    pub message: String,
    /// Output artifact `(identifier, bytes)` from the successful pod.
    pub output: Option<(String, u64)>,
}

impl Default for JobStatus {
    fn default() -> Self {
        JobStatus {
            condition: JobCondition::Pending,
            pods: Vec::new(),
            failures: 0,
            started_at: None,
            finished_at: None,
            message: String::new(),
            output: None,
        }
    }
}

/// A job object.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Spec.
    pub spec: JobSpec,
    /// Status.
    pub status: JobStatus,
}

impl Job {
    /// A new pending job.
    pub fn new(meta: ObjectMeta, template: PodSpec, backoff_limit: u32) -> Self {
        Job {
            meta,
            spec: JobSpec {
                template,
                backoff_limit,
            },
            status: JobStatus::default(),
        }
    }

    /// True when the job is in a terminal condition.
    pub fn is_finished(&self) -> bool {
        matches!(
            self.status.condition,
            JobCondition::Completed | JobCondition::Failed
        )
    }

    /// Total wall-clock (virtual) run time, when finished.
    pub fn run_time(&self) -> Option<lidc_simcore::time::SimDuration> {
        match (self.status.started_at, self.status.finished_at) {
            (Some(s), Some(f)) => Some(f.since(s)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::{ContainerSpec, WorkloadSpec};
    use crate::resources::Resources;
    use lidc_simcore::time::SimDuration;

    #[test]
    fn job_lifecycle_helpers() {
        let template = PodSpec::single(ContainerSpec {
            name: "blast".into(),
            image: "magicblast".into(),
            requests: Resources::new(2, 4),
            workload: WorkloadSpec::run_for(SimDuration::from_hours(8)),
        });
        let mut job = Job::new(ObjectMeta::named("job-1"), template, 3);
        assert_eq!(job.status.condition, JobCondition::Pending);
        assert!(!job.is_finished());
        assert_eq!(job.run_time(), None);
        job.status.started_at = Some(SimTime::ZERO);
        job.status.finished_at = Some(SimTime::ZERO + SimDuration::from_hours(8));
        job.status.condition = JobCondition::Completed;
        assert!(job.is_finished());
        assert_eq!(job.run_time(), Some(SimDuration::from_hours(8)));
    }
}
