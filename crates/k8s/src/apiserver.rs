//! The API server: the cluster's typed object store.
//!
//! All controllers and the LIDC gateway share one [`SharedApi`]
//! (`Arc<RwLock<ApiServer>>`). The simulation is single-threaded, so the
//! lock is uncontended; it exists to give independent actors safe mutable
//! access. Every mutation sets a dirty flag that the cluster actor turns
//! into a (latency-modelled) reconcile pass.
//!
//! # Persistent incremental indexes
//!
//! Four indexes are maintained *across* reconcile passes instead of being
//! rebuilt per call, cutting the remaining O(pods) per-pass cost on the
//! 4096-node runs:
//!
//! * **uid → key** — [`ApiServer::pod_by_uid`] is a map probe, not a scan;
//! * **pods-by-job** — [`ApiServer::pods_of_job`] returns the owned pods of
//!   a job in creation order (what `reconcile_jobs` walks every pass);
//! * **per-node usage** — [`ApiServer::node_usage`] reads a running total
//!   that pod lifecycle transitions update incrementally (what the
//!   scheduler's filter/score loop probes per candidate node);
//! * **pending pods** — [`ApiServer::pending_pods`] lists the unbound
//!   `Pending` pods in creation (uid) order, so the scheduler's pass is
//!   O(pending), not O(pods).
//!
//! The indexes are kept exact by routing pod lifecycle mutations through
//! the API server: [`ApiServer::create_pod`], [`ApiServer::bind_pod`],
//! [`ApiServer::set_pod_phase`], and [`ApiServer::delete_pod`]. Code that
//! mutates `pods` directly must call [`ApiServer::rebuild_pod_indexes`]
//! afterwards; [`ApiServer::debug_check_pod_indexes`] verifies the
//! invariants in tests.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use parking_lot::RwLock;

use lidc_simcore::time::SimTime;

use crate::deployment::{Deployment, Hpa, ReplicaSet};
use crate::job::Job;
use crate::meta::{ObjectKey, Uid};
use crate::node::Node;
use crate::pod::Pod;
use crate::resources::Resources;
use crate::service::{Service, ServiceType};
use crate::storage::{PersistentVolume, PersistentVolumeClaim};

/// Shared handle to a cluster's API server.
// lidc-lint: allow(actor-isolation) reason="models kubectl-style synchronous API access: control loops within one cluster share the server the way real controllers share etcd; locks are never held across engine events"
pub type SharedApi = Arc<RwLock<ApiServer>>;

/// A recorded cluster event (for workflow traces, e.g. experiment `fig5`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterEvent {
    /// When it happened.
    pub time: SimTime,
    /// Event kind (`PodScheduled`, `JobCompleted`, …).
    pub kind: String,
    /// Object the event concerns.
    pub object: String,
    /// Free-form detail.
    pub message: String,
}

/// The API server state.
#[derive(Debug, Default)]
pub struct ApiServer {
    /// Cluster name (diagnostics).
    pub cluster_name: String,
    next_uid: u64,
    next_pod_ip: u32,
    next_svc_ip: u32,
    next_node_ip: u32,
    next_node_port: u16,
    /// Nodes by name (cluster-scoped).
    pub nodes: BTreeMap<String, Node>,
    /// Pods by (namespace, name).
    pub pods: BTreeMap<ObjectKey, Pod>,
    /// Services by (namespace, name).
    pub services: BTreeMap<ObjectKey, Service>,
    /// Jobs by (namespace, name).
    pub jobs: BTreeMap<ObjectKey, Job>,
    /// Deployments by (namespace, name).
    pub deployments: BTreeMap<ObjectKey, Deployment>,
    /// ReplicaSets by (namespace, name).
    pub replicasets: BTreeMap<ObjectKey, ReplicaSet>,
    /// HPAs by (namespace, name).
    pub hpas: BTreeMap<ObjectKey, Hpa>,
    /// PVCs by (namespace, name).
    pub pvcs: BTreeMap<ObjectKey, PersistentVolumeClaim>,
    /// PersistentVolumes by name (cluster-scoped).
    pub pvs: BTreeMap<String, PersistentVolume>,
    /// Event log (append-only).
    pub events: Vec<ClusterEvent>,
    dirty: bool,
    /// Persistent index: pod uid → pod key (O(1) uid lookups).
    uid_to_pod: HashMap<Uid, ObjectKey>,
    /// Persistent index: job name → owned pod keys in creation order.
    pods_by_job: HashMap<String, Vec<ObjectKey>>,
    /// Persistent index: node name → resources held by scheduled,
    /// unfinished pods (updated incrementally on bind/finish/delete).
    node_usage_idx: BTreeMap<String, Resources>,
    /// Persistent index: unbound `Pending` pods in creation (uid) order —
    /// exactly the set the scheduler binds each pass.
    pending_pods: BTreeSet<(Uid, ObjectKey)>,
}

impl ApiServer {
    /// A fresh API server for `cluster_name`.
    pub fn new(cluster_name: impl Into<String>) -> Self {
        ApiServer {
            cluster_name: cluster_name.into(),
            next_node_port: 30000,
            ..Default::default()
        }
    }

    /// Create a shared handle.
    pub fn shared(cluster_name: impl Into<String>) -> SharedApi {
        // lidc-lint: allow(actor-isolation) reason="constructor for the SharedApi handle justified on the alias above"
        Arc::new(RwLock::new(ApiServer::new(cluster_name)))
    }

    /// Allocate a fresh UID.
    pub fn alloc_uid(&mut self) -> Uid {
        self.next_uid += 1;
        Uid(self.next_uid)
    }

    /// Mark state changed (triggers reconcile on the next nudge).
    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    /// Consume the dirty flag.
    pub fn take_dirty(&mut self) -> bool {
        std::mem::take(&mut self.dirty)
    }

    /// Append an event.
    pub fn record_event(
        &mut self,
        time: SimTime,
        kind: impl Into<String>,
        object: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.events.push(ClusterEvent {
            time,
            kind: kind.into(),
            object: object.into(),
            message: message.into(),
        });
    }

    // ----- nodes -----

    /// Add a node; assigns its IP.
    pub fn add_node(&mut self, mut node: Node, now: SimTime) {
        self.next_node_ip += 1;
        node.ip = format!("10.0.0.{}", self.next_node_ip);
        node.meta.uid = self.alloc_uid();
        node.meta.created_at = now;
        self.record_event(now, "NodeAdded", node.meta.name.clone(), node.ip.clone());
        self.node_usage_idx
            .entry(node.meta.name.clone())
            .or_insert(Resources::ZERO);
        self.nodes.insert(node.meta.name.clone(), node);
        self.mark_dirty();
    }

    /// Cordon or uncordon a node: a cordoned node keeps its running pods
    /// but the scheduler places nothing new on it. Returns false when the
    /// node is unknown.
    pub fn set_node_cordoned(&mut self, node: &str, cordoned: bool) -> bool {
        match self.nodes.get_mut(node) {
            Some(n) => {
                n.cordoned = cordoned;
                self.mark_dirty();
                true
            }
            None => false,
        }
    }

    /// Resources currently reserved on `node` by scheduled, unfinished
    /// pods. Reads the persistent per-node usage index (O(log nodes), not
    /// O(pods)); exact as long as pod lifecycle mutations go through the
    /// API-server methods (see the module docs).
    pub fn node_usage(&self, node: &str) -> Resources {
        self.node_usage_idx
            .get(node)
            .copied()
            .unwrap_or(Resources::ZERO)
    }

    /// Charge or release a resource-holding pod against the usage index.
    fn account_usage(&mut self, node: &str, requests: Resources, charge: bool) {
        // Pods pinned to unknown nodes hold nothing (mirrors the old
        // per-pass sweep, which only summed over registered nodes).
        if let Some(slot) = self.node_usage_idx.get_mut(node) {
            if charge {
                *slot += requests;
            } else {
                *slot = slot.saturating_sub(&requests);
            }
        }
    }

    /// Free (allocatable − used) resources on `node`.
    pub fn node_free(&self, node: &str) -> Resources {
        match self.nodes.get(node) {
            Some(n) => n.allocatable.saturating_sub(&self.node_usage(node)),
            None => Resources::ZERO,
        }
    }

    /// Total free resources across ready nodes (LIDC clusters advertise
    /// this to placement strategies).
    pub fn cluster_free(&self) -> Resources {
        self.nodes
            .values()
            .filter(|n| n.ready)
            .map(|n| self.node_free(&n.meta.name))
            .fold(Resources::ZERO, |acc, r| acc + r)
    }

    /// Total allocatable resources across ready nodes.
    pub fn cluster_allocatable(&self) -> Resources {
        self.nodes
            .values()
            .filter(|n| n.ready)
            .fold(Resources::ZERO, |acc, n| acc + n.allocatable)
    }

    // ----- pods -----

    /// Create a pod (assigns uid + timestamps). Fails if the key exists.
    /// Maintains the uid, pods-by-job, and (for pods created already bound,
    /// as tests do) node-usage indexes.
    pub fn create_pod(&mut self, mut pod: Pod, now: SimTime) -> Result<Uid, ApiError> {
        let key = pod.meta.key();
        if self.pods.contains_key(&key) {
            return Err(ApiError::AlreadyExists(key));
        }
        pod.meta.uid = self.alloc_uid();
        pod.meta.created_at = now;
        let uid = pod.meta.uid;
        self.record_event(now, "PodCreated", key.to_string(), "");
        self.uid_to_pod.insert(uid, key.clone());
        if let Some(job) = pod.meta.labels.get("job") {
            self.pods_by_job
                .entry(job.clone())
                .or_default()
                .push(key.clone());
        }
        if pod.holds_resources() {
            let (node, requests) = (
                // lidc-lint: allow(panic-path) reason="holds_resources() returned true, which requires status.node to be Some"
                pod.status.node.clone().expect("holds_resources ⇒ bound"),
                pod.spec.total_requests(),
            );
            self.account_usage(&node, requests, true);
        }
        if is_pending_unbound(&pod) {
            self.pending_pods.insert((uid, key.clone()));
        }
        self.pods.insert(key, pod);
        self.mark_dirty();
        Ok(uid)
    }

    /// Bind a pending pod to `node` (scheduler path): assigns its IP, sets
    /// `status.node`, records the event, and charges the usage index.
    /// Returns false when the pod is gone or already bound.
    pub fn bind_pod(&mut self, key: &ObjectKey, node: &str, now: SimTime) -> bool {
        // Validate before allocating the IP: a refused bind must not
        // consume an address (it would shift every later pod's IP).
        match self.pods.get(key) {
            Some(pod) if pod.status.node.is_none() => {}
            _ => return false,
        }
        let ip = self.alloc_pod_ip();
        // lidc-lint: allow(panic-path) reason="the match above returned early unless pods contains key"
        let pod = self.pods.get_mut(key).expect("checked above");
        pod.status.node = Some(node.to_owned());
        pod.status.ip = Some(ip);
        let held = pod.holds_resources();
        let requests = pod.spec.total_requests();
        if held {
            self.account_usage(node, requests, true);
        }
        // lidc-lint: allow(panic-path) reason="bind_pod verified pods contains key above and nothing removes it in between"
        let uid = self.pods[key].meta.uid;
        self.pending_pods.remove(&(uid, key.clone()));
        self.record_event(now, "PodScheduled", key.to_string(), node.to_owned());
        self.mark_dirty();
        true
    }

    /// Transition a pod's phase, keeping the usage index exact across
    /// resource acquisition/release boundaries (a bound pod entering
    /// `Succeeded`/`Failed` releases its node's resources). Timestamps and
    /// messages stay with the caller via [`ApiServer::pod_by_uid_mut`].
    /// Returns false when no pod has `uid`.
    pub fn set_pod_phase(&mut self, uid: Uid, phase: crate::pod::PodPhase) -> bool {
        let Some(key) = self.uid_to_pod.get(&uid).cloned() else {
            return false;
        };
        let Some(pod) = self.pods.get_mut(&key) else {
            return false;
        };
        let held_before = pod.holds_resources();
        let pending_before = is_pending_unbound(pod);
        pod.status.phase = phase;
        let held_after = pod.holds_resources();
        let pending_after = is_pending_unbound(pod);
        if held_before != held_after {
            // lidc-lint: allow(panic-path) reason="a pod holds resources only while bound, and phase changes never clear status.node"
            let node = pod.status.node.clone().expect("held ⇒ bound");
            let requests = pod.spec.total_requests();
            self.account_usage(&node, requests, held_after);
        }
        if pending_before != pending_after {
            if pending_after {
                self.pending_pods.insert((uid, key));
            } else {
                self.pending_pods.remove(&(uid, key));
            }
        }
        true
    }

    /// Remove a pod, releasing its resources and index entries.
    pub fn delete_pod(&mut self, key: &ObjectKey) -> Option<Pod> {
        let pod = self.pods.remove(key)?;
        self.uid_to_pod.remove(&pod.meta.uid);
        if let Some(job) = pod.meta.labels.get("job") {
            if let Some(list) = self.pods_by_job.get_mut(job) {
                list.retain(|k| k != key);
                if list.is_empty() {
                    self.pods_by_job.remove(job);
                }
            }
        }
        if pod.holds_resources() {
            // lidc-lint: allow(panic-path) reason="holds_resources() requires a bound pod, and delete_pod has not cleared status.node yet"
            let node = pod.status.node.clone().expect("held ⇒ bound");
            self.account_usage(&node, pod.spec.total_requests(), false);
        }
        self.pending_pods.remove(&(pod.meta.uid, key.clone()));
        Some(pod)
    }

    /// The unbound `Pending` pods in creation (uid) order — the exact work
    /// list of a scheduler pass (persistent-index read, O(pending)).
    pub fn pending_pods(&self) -> impl Iterator<Item = &ObjectKey> {
        self.pending_pods.iter().map(|(_, key)| key)
    }

    /// The pods owned by job `name` (label `job=<name>`), in creation
    /// order. Reads the persistent pods-by-job index — `reconcile_jobs` no
    /// longer sweeps every pod per pass.
    pub fn pods_of_job(&self, name: &str) -> &[ObjectKey] {
        self.pods_by_job.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Find a pod by uid (persistent-index probe, O(1) + map lookup).
    pub fn pod_by_uid(&self, uid: Uid) -> Option<&Pod> {
        self.pods.get(self.uid_to_pod.get(&uid)?)
    }

    /// Find a pod by uid, mutably. Direct phase/node writes through this
    /// handle bypass the usage index — use [`ApiServer::set_pod_phase`] /
    /// [`ApiServer::bind_pod`] for those transitions.
    pub fn pod_by_uid_mut(&mut self, uid: Uid) -> Option<&mut Pod> {
        self.pods.get_mut(self.uid_to_pod.get(&uid)?)
    }

    /// Allocate a pod IP.
    pub fn alloc_pod_ip(&mut self) -> String {
        self.next_pod_ip += 1;
        format!("10.244.0.{}", self.next_pod_ip)
    }

    /// Recompute every pod index from the pod map (escape hatch for code
    /// that mutated `pods` directly).
    pub fn rebuild_pod_indexes(&mut self) {
        self.uid_to_pod.clear();
        self.pods_by_job.clear();
        self.pending_pods.clear();
        for slot in self.node_usage_idx.values_mut() {
            *slot = Resources::ZERO;
        }
        for (key, pod) in &self.pods {
            self.uid_to_pod.insert(pod.meta.uid, key.clone());
            if let Some(job) = pod.meta.labels.get("job") {
                self.pods_by_job
                    .entry(job.clone())
                    .or_default()
                    .push(key.clone());
            }
            if is_pending_unbound(pod) {
                self.pending_pods.insert((pod.meta.uid, key.clone()));
            }
        }
        // Creation order, as the incremental index maintains it.
        // lidc-lint: allow(unordered-iter) reason="each list is sorted independently by uid; no cross-list state, so visit order is unobservable"
        for list in self.pods_by_job.values_mut() {
            list.sort_by_key(|k| self.pods[k].meta.uid);
        }
        let charges: Vec<(String, Resources)> = self
            .pods
            .values()
            .filter(|p| p.holds_resources())
            .map(|p| {
                (
                    p.status.node.clone().expect("held ⇒ bound"),
                    p.spec.total_requests(),
                )
            })
            .collect();
        for (node, requests) in charges {
            self.account_usage(&node, requests, true);
        }
    }

    /// Verify the persistent pod indexes against a from-scratch sweep
    /// (test support).
    #[doc(hidden)]
    pub fn debug_check_pod_indexes(&self) -> Result<(), String> {
        for (key, pod) in &self.pods {
            if self.uid_to_pod.get(&pod.meta.uid) != Some(key) {
                return Err(format!("uid index wrong for {key}"));
            }
            if let Some(job) = pod.meta.labels.get("job") {
                if !self
                    .pods_by_job
                    .get(job)
                    .map(|l| l.contains(key))
                    .unwrap_or(false)
                {
                    return Err(format!("pods_by_job missing {key} for job {job}"));
                }
            }
        }
        if self.uid_to_pod.len() != self.pods.len() {
            return Err("uid index size mismatch".into());
        }
        let by_job_total: usize = self.pods_by_job.values().map(Vec::len).sum();
        let labeled = self
            .pods
            .values()
            .filter(|p| p.meta.labels.contains_key("job"))
            .count();
        if by_job_total != labeled {
            return Err("pods_by_job size mismatch".into());
        }
        for node in self.nodes.keys() {
            let swept = self
                .pods
                .values()
                .filter(|p| p.holds_resources() && p.status.node.as_deref() == Some(node.as_str()))
                .fold(Resources::ZERO, |acc, p| acc + p.spec.total_requests());
            if self.node_usage(node) != swept {
                return Err(format!(
                    "usage index for {node} is {}, sweep says {swept}",
                    self.node_usage(node)
                ));
            }
        }
        let swept_pending: BTreeSet<(Uid, ObjectKey)> = self
            .pods
            .iter()
            .filter(|(_, p)| is_pending_unbound(p))
            .map(|(key, p)| (p.meta.uid, key.clone()))
            .collect();
        if self.pending_pods != swept_pending {
            return Err(format!(
                "pending index has {} entries, sweep says {}",
                self.pending_pods.len(),
                swept_pending.len()
            ));
        }
        Ok(())
    }

    // ----- services -----

    /// Create a service: assigns ClusterIP and, for NodePort services, a
    /// node port from the 30000–32767 range (paper Fig. 3).
    pub fn create_service(&mut self, mut svc: Service, now: SimTime) -> Result<(), ApiError> {
        let key = svc.meta.key();
        if self.services.contains_key(&key) {
            return Err(ApiError::AlreadyExists(key));
        }
        svc.meta.uid = self.alloc_uid();
        svc.meta.created_at = now;
        self.next_svc_ip += 1;
        svc.status.cluster_ip = format!("10.96.0.{}", self.next_svc_ip);
        if svc.spec.service_type == ServiceType::NodePort {
            for port in &mut svc.spec.ports {
                if port.node_port.is_none() {
                    if self.next_node_port > 32767 {
                        return Err(ApiError::NodePortsExhausted);
                    }
                    port.node_port = Some(self.next_node_port);
                    self.next_node_port += 1;
                }
            }
        }
        self.record_event(
            now,
            "ServiceCreated",
            key.to_string(),
            format!("clusterIP={} dns={}", svc.status.cluster_ip, svc.dns_name()),
        );
        self.services.insert(key, svc);
        self.mark_dirty();
        Ok(())
    }

    // ----- jobs -----

    /// Create a job.
    pub fn create_job(&mut self, mut job: Job, now: SimTime) -> Result<ObjectKey, ApiError> {
        let key = job.meta.key();
        if self.jobs.contains_key(&key) {
            return Err(ApiError::AlreadyExists(key));
        }
        job.meta.uid = self.alloc_uid();
        job.meta.created_at = now;
        self.record_event(now, "JobCreated", key.to_string(), "");
        self.jobs.insert(key.clone(), job);
        self.mark_dirty();
        Ok(key)
    }

    // ----- deployments / HPAs -----

    /// Create a deployment.
    pub fn create_deployment(&mut self, mut d: Deployment, now: SimTime) -> Result<(), ApiError> {
        let key = d.meta.key();
        if self.deployments.contains_key(&key) {
            return Err(ApiError::AlreadyExists(key));
        }
        d.meta.uid = self.alloc_uid();
        d.meta.created_at = now;
        self.record_event(now, "DeploymentCreated", key.to_string(), "");
        self.deployments.insert(key, d);
        self.mark_dirty();
        Ok(())
    }

    /// Create an HPA.
    pub fn create_hpa(&mut self, mut hpa: Hpa, now: SimTime) -> Result<(), ApiError> {
        let key = hpa.meta.key();
        if self.hpas.contains_key(&key) {
            return Err(ApiError::AlreadyExists(key));
        }
        hpa.meta.uid = self.alloc_uid();
        hpa.meta.created_at = now;
        self.hpas.insert(key, hpa);
        self.mark_dirty();
        Ok(())
    }

    // ----- storage -----

    /// Register a PersistentVolume.
    pub fn add_pv(&mut self, mut pv: PersistentVolume, now: SimTime) {
        pv.meta.uid = self.alloc_uid();
        pv.meta.created_at = now;
        self.record_event(now, "PvAdded", pv.meta.name.clone(), "");
        self.pvs.insert(pv.meta.name.clone(), pv);
        self.mark_dirty();
    }

    /// Create a PVC.
    pub fn create_pvc(
        &mut self,
        mut pvc: PersistentVolumeClaim,
        now: SimTime,
    ) -> Result<(), ApiError> {
        let key = pvc.meta.key();
        if self.pvcs.contains_key(&key) {
            return Err(ApiError::AlreadyExists(key));
        }
        pvc.meta.uid = self.alloc_uid();
        pvc.meta.created_at = now;
        self.record_event(now, "PvcCreated", key.to_string(), "");
        self.pvcs.insert(key, pvc);
        self.mark_dirty();
        Ok(())
    }
}

/// Whether a pod belongs in the pending (schedulable-work) index:
/// `Pending` phase and not yet bound to a node.
fn is_pending_unbound(pod: &Pod) -> bool {
    pod.status.phase == crate::pod::PodPhase::Pending && pod.status.node.is_none()
}

/// API-server errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// An object with this key already exists.
    AlreadyExists(ObjectKey),
    /// The NodePort range (30000–32767) is exhausted.
    NodePortsExhausted,
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::AlreadyExists(k) => write!(f, "object already exists: {k}"),
            ApiError::NodePortsExhausted => write!(f, "node port range exhausted"),
        }
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ObjectMeta;
    use crate::pod::{ContainerSpec, PodSpec, WorkloadSpec};
    use lidc_simcore::time::SimDuration;

    const T0: SimTime = SimTime::ZERO;

    fn pod(name: &str, cores: u64, gib: u64) -> Pod {
        Pod::new(
            ObjectMeta::named(name),
            PodSpec::single(ContainerSpec {
                name: "c".into(),
                image: "i".into(),
                requests: Resources::new(cores, gib),
                workload: WorkloadSpec::run_for(SimDuration::from_secs(1)),
            }),
        )
    }

    #[test]
    fn uid_allocation_is_unique_and_monotone() {
        let mut api = ApiServer::new("c");
        let a = api.alloc_uid();
        let b = api.alloc_uid();
        assert!(b > a);
    }

    #[test]
    fn node_ips_and_usage_accounting() {
        let mut api = ApiServer::new("c");
        api.add_node(Node::new("n1", Resources::new(8, 32)), T0);
        assert_eq!(api.nodes["n1"].ip, "10.0.0.1");
        assert_eq!(api.node_free("n1"), Resources::new(8, 32));
        let mut p = pod("p1", 2, 4);
        p.status.node = Some("n1".into());
        p.status.phase = crate::pod::PodPhase::Running;
        api.create_pod(p, T0).unwrap();
        assert_eq!(api.node_usage("n1"), Resources::new(2, 4));
        assert_eq!(api.node_free("n1"), Resources::new(6, 28));
        assert_eq!(api.cluster_free(), Resources::new(6, 28));
        assert_eq!(api.node_free("missing"), Resources::ZERO);
    }

    #[test]
    fn finished_pods_release_resources() {
        let mut api = ApiServer::new("c");
        api.add_node(Node::new("n1", Resources::new(4, 8)), T0);
        let mut p = pod("p1", 4, 8);
        p.status.node = Some("n1".into());
        p.status.phase = crate::pod::PodPhase::Succeeded;
        api.create_pod(p, T0).unwrap();
        assert_eq!(api.node_free("n1"), Resources::new(4, 8));
    }

    #[test]
    fn duplicate_creation_rejected() {
        let mut api = ApiServer::new("c");
        api.create_pod(pod("p", 1, 1), T0).unwrap();
        assert!(matches!(
            api.create_pod(pod("p", 1, 1), T0),
            Err(ApiError::AlreadyExists(_))
        ));
    }

    #[test]
    fn service_gets_cluster_ip_and_node_port() {
        let mut api = ApiServer::new("c");
        let svc = crate::service::Service::node_port("gateway-nfd", "gw", 6363);
        api.create_service(svc, T0).unwrap();
        let svc = &api.services[&ObjectKey::named("gateway-nfd")];
        assert_eq!(svc.status.cluster_ip, "10.96.0.1");
        let np = svc.spec.ports[0].node_port.unwrap();
        assert!((30000..=32767).contains(&np), "paper's NodePort range");
        // Second NodePort service gets the next port.
        let svc2 = crate::service::Service::node_port("other", "o", 80);
        api.create_service(svc2, T0).unwrap();
        assert_eq!(
            api.services[&ObjectKey::named("other")].spec.ports[0].node_port,
            Some(np + 1)
        );
    }

    #[test]
    fn dirty_flag_set_and_consumed() {
        let mut api = ApiServer::new("c");
        assert!(!api.take_dirty());
        api.add_node(Node::new("n", Resources::new(1, 1)), T0);
        assert!(api.take_dirty());
        assert!(!api.take_dirty());
    }

    #[test]
    fn persistent_indexes_track_full_pod_lifecycle() {
        use crate::pod::PodPhase;
        let mut api = ApiServer::new("c");
        api.add_node(Node::new("n1", Resources::new(16, 32)), T0);
        api.add_node(Node::new("n2", Resources::new(16, 32)), T0);
        // Create labeled job pods, bind, run, finish, delete — the indexes
        // must match a from-scratch sweep at every step.
        let mut uids = Vec::new();
        for i in 0..6 {
            let mut p = pod(&format!("job-a-{i}"), 2, 4);
            p.meta.labels.insert("job".into(), "job-a".into());
            uids.push(api.create_pod(p, T0).unwrap());
            api.debug_check_pod_indexes().unwrap();
        }
        assert_eq!(api.pods_of_job("job-a").len(), 6);
        assert_eq!(api.pods_of_job("other"), &[] as &[ObjectKey]);
        // Bind half to n1, half to n2.
        let keys: Vec<ObjectKey> = api.pods_of_job("job-a").to_vec();
        for (i, key) in keys.iter().enumerate() {
            let node = if i % 2 == 0 { "n1" } else { "n2" };
            assert!(api.bind_pod(key, node, T0));
            assert!(!api.bind_pod(key, node, T0), "double bind refused");
            api.debug_check_pod_indexes().unwrap();
        }
        assert_eq!(api.node_usage("n1"), Resources::new(6, 12));
        assert_eq!(api.node_usage("n2"), Resources::new(6, 12));
        // Run + finish releases usage incrementally.
        for (i, uid) in uids.iter().enumerate() {
            assert!(api.set_pod_phase(*uid, PodPhase::Running));
            api.debug_check_pod_indexes().unwrap();
            if i < 3 {
                assert!(api.set_pod_phase(*uid, PodPhase::Succeeded));
                api.debug_check_pod_indexes().unwrap();
            }
        }
        assert!(api.node_usage("n1").cpu < Resources::new(6, 12).cpu);
        // uid probes hit the index.
        assert!(api.pod_by_uid(uids[0]).is_some());
        assert!(api.pod_by_uid(Uid(9999)).is_none());
        assert!(!api.set_pod_phase(Uid(9999), PodPhase::Failed));
        // Delete everything; indexes drain to empty.
        for key in keys {
            assert!(api.delete_pod(&key).is_some());
            api.debug_check_pod_indexes().unwrap();
        }
        assert_eq!(api.pods_of_job("job-a").len(), 0);
        assert_eq!(api.node_usage("n1"), Resources::ZERO);
        assert_eq!(api.node_usage("n2"), Resources::ZERO);
        // rebuild_pod_indexes after a direct mutation restores exactness.
        api.create_pod(pod("direct", 1, 1), T0).unwrap();
        api.pods.get_mut(&ObjectKey::named("direct")).unwrap().status.node = Some("n1".into());
        api.rebuild_pod_indexes();
        api.debug_check_pod_indexes().unwrap();
        assert_eq!(api.node_usage("n1"), Resources::new(1, 1));
    }

    #[test]
    fn events_recorded_in_order() {
        let mut api = ApiServer::new("c");
        api.add_node(Node::new("n", Resources::new(1, 1)), T0);
        api.create_pod(pod("p", 1, 1), T0).unwrap();
        let kinds: Vec<&str> = api.events.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["NodeAdded", "PodCreated"]);
    }
}
