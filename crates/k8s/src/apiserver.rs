//! The API server: the cluster's typed object store.
//!
//! All controllers and the LIDC gateway share one [`SharedApi`]
//! (`Arc<RwLock<ApiServer>>`). The simulation is single-threaded, so the
//! lock is uncontended; it exists to give independent actors safe mutable
//! access. Every mutation sets a dirty flag that the cluster actor turns
//! into a (latency-modelled) reconcile pass.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use lidc_simcore::time::SimTime;

use crate::deployment::{Deployment, Hpa, ReplicaSet};
use crate::job::Job;
use crate::meta::{ObjectKey, Uid};
use crate::node::Node;
use crate::pod::Pod;
use crate::resources::Resources;
use crate::service::{Service, ServiceType};
use crate::storage::{PersistentVolume, PersistentVolumeClaim};

/// Shared handle to a cluster's API server.
pub type SharedApi = Arc<RwLock<ApiServer>>;

/// A recorded cluster event (for workflow traces, e.g. experiment `fig5`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterEvent {
    /// When it happened.
    pub time: SimTime,
    /// Event kind (`PodScheduled`, `JobCompleted`, …).
    pub kind: String,
    /// Object the event concerns.
    pub object: String,
    /// Free-form detail.
    pub message: String,
}

/// The API server state.
#[derive(Debug, Default)]
pub struct ApiServer {
    /// Cluster name (diagnostics).
    pub cluster_name: String,
    next_uid: u64,
    next_pod_ip: u32,
    next_svc_ip: u32,
    next_node_ip: u32,
    next_node_port: u16,
    /// Nodes by name (cluster-scoped).
    pub nodes: BTreeMap<String, Node>,
    /// Pods by (namespace, name).
    pub pods: BTreeMap<ObjectKey, Pod>,
    /// Services by (namespace, name).
    pub services: BTreeMap<ObjectKey, Service>,
    /// Jobs by (namespace, name).
    pub jobs: BTreeMap<ObjectKey, Job>,
    /// Deployments by (namespace, name).
    pub deployments: BTreeMap<ObjectKey, Deployment>,
    /// ReplicaSets by (namespace, name).
    pub replicasets: BTreeMap<ObjectKey, ReplicaSet>,
    /// HPAs by (namespace, name).
    pub hpas: BTreeMap<ObjectKey, Hpa>,
    /// PVCs by (namespace, name).
    pub pvcs: BTreeMap<ObjectKey, PersistentVolumeClaim>,
    /// PersistentVolumes by name (cluster-scoped).
    pub pvs: BTreeMap<String, PersistentVolume>,
    /// Event log (append-only).
    pub events: Vec<ClusterEvent>,
    dirty: bool,
}

impl ApiServer {
    /// A fresh API server for `cluster_name`.
    pub fn new(cluster_name: impl Into<String>) -> Self {
        ApiServer {
            cluster_name: cluster_name.into(),
            next_node_port: 30000,
            ..Default::default()
        }
    }

    /// Create a shared handle.
    pub fn shared(cluster_name: impl Into<String>) -> SharedApi {
        Arc::new(RwLock::new(ApiServer::new(cluster_name)))
    }

    /// Allocate a fresh UID.
    pub fn alloc_uid(&mut self) -> Uid {
        self.next_uid += 1;
        Uid(self.next_uid)
    }

    /// Mark state changed (triggers reconcile on the next nudge).
    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    /// Consume the dirty flag.
    pub fn take_dirty(&mut self) -> bool {
        std::mem::take(&mut self.dirty)
    }

    /// Append an event.
    pub fn record_event(
        &mut self,
        time: SimTime,
        kind: impl Into<String>,
        object: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.events.push(ClusterEvent {
            time,
            kind: kind.into(),
            object: object.into(),
            message: message.into(),
        });
    }

    // ----- nodes -----

    /// Add a node; assigns its IP.
    pub fn add_node(&mut self, mut node: Node, now: SimTime) {
        self.next_node_ip += 1;
        node.ip = format!("10.0.0.{}", self.next_node_ip);
        node.meta.uid = self.alloc_uid();
        node.meta.created_at = now;
        self.record_event(now, "NodeAdded", node.meta.name.clone(), node.ip.clone());
        self.nodes.insert(node.meta.name.clone(), node);
        self.mark_dirty();
    }

    /// Resources currently reserved on `node` by scheduled, unfinished pods.
    pub fn node_usage(&self, node: &str) -> Resources {
        self.pods
            .values()
            .filter(|p| p.holds_resources() && p.status.node.as_deref() == Some(node))
            .fold(Resources::ZERO, |acc, p| acc + p.spec.total_requests())
    }

    /// Free (allocatable − used) resources on `node`.
    pub fn node_free(&self, node: &str) -> Resources {
        match self.nodes.get(node) {
            Some(n) => n.allocatable.saturating_sub(&self.node_usage(node)),
            None => Resources::ZERO,
        }
    }

    /// Total free resources across ready nodes (LIDC clusters advertise
    /// this to placement strategies).
    pub fn cluster_free(&self) -> Resources {
        self.nodes
            .values()
            .filter(|n| n.ready)
            .map(|n| self.node_free(&n.meta.name))
            .fold(Resources::ZERO, |acc, r| acc + r)
    }

    /// Total allocatable resources across ready nodes.
    pub fn cluster_allocatable(&self) -> Resources {
        self.nodes
            .values()
            .filter(|n| n.ready)
            .fold(Resources::ZERO, |acc, n| acc + n.allocatable)
    }

    // ----- pods -----

    /// Create a pod (assigns uid + timestamps). Fails if the key exists.
    pub fn create_pod(&mut self, mut pod: Pod, now: SimTime) -> Result<Uid, ApiError> {
        let key = pod.meta.key();
        if self.pods.contains_key(&key) {
            return Err(ApiError::AlreadyExists(key));
        }
        pod.meta.uid = self.alloc_uid();
        pod.meta.created_at = now;
        let uid = pod.meta.uid;
        self.record_event(now, "PodCreated", key.to_string(), "");
        self.pods.insert(key, pod);
        self.mark_dirty();
        Ok(uid)
    }

    /// Find a pod by uid.
    pub fn pod_by_uid(&self, uid: Uid) -> Option<&Pod> {
        self.pods.values().find(|p| p.meta.uid == uid)
    }

    /// Find a pod by uid, mutably.
    pub fn pod_by_uid_mut(&mut self, uid: Uid) -> Option<&mut Pod> {
        self.pods.values_mut().find(|p| p.meta.uid == uid)
    }

    /// Allocate a pod IP.
    pub fn alloc_pod_ip(&mut self) -> String {
        self.next_pod_ip += 1;
        format!("10.244.0.{}", self.next_pod_ip)
    }

    // ----- services -----

    /// Create a service: assigns ClusterIP and, for NodePort services, a
    /// node port from the 30000–32767 range (paper Fig. 3).
    pub fn create_service(&mut self, mut svc: Service, now: SimTime) -> Result<(), ApiError> {
        let key = svc.meta.key();
        if self.services.contains_key(&key) {
            return Err(ApiError::AlreadyExists(key));
        }
        svc.meta.uid = self.alloc_uid();
        svc.meta.created_at = now;
        self.next_svc_ip += 1;
        svc.status.cluster_ip = format!("10.96.0.{}", self.next_svc_ip);
        if svc.spec.service_type == ServiceType::NodePort {
            for port in &mut svc.spec.ports {
                if port.node_port.is_none() {
                    if self.next_node_port > 32767 {
                        return Err(ApiError::NodePortsExhausted);
                    }
                    port.node_port = Some(self.next_node_port);
                    self.next_node_port += 1;
                }
            }
        }
        self.record_event(
            now,
            "ServiceCreated",
            key.to_string(),
            format!("clusterIP={} dns={}", svc.status.cluster_ip, svc.dns_name()),
        );
        self.services.insert(key, svc);
        self.mark_dirty();
        Ok(())
    }

    // ----- jobs -----

    /// Create a job.
    pub fn create_job(&mut self, mut job: Job, now: SimTime) -> Result<ObjectKey, ApiError> {
        let key = job.meta.key();
        if self.jobs.contains_key(&key) {
            return Err(ApiError::AlreadyExists(key));
        }
        job.meta.uid = self.alloc_uid();
        job.meta.created_at = now;
        self.record_event(now, "JobCreated", key.to_string(), "");
        self.jobs.insert(key.clone(), job);
        self.mark_dirty();
        Ok(key)
    }

    // ----- deployments / HPAs -----

    /// Create a deployment.
    pub fn create_deployment(&mut self, mut d: Deployment, now: SimTime) -> Result<(), ApiError> {
        let key = d.meta.key();
        if self.deployments.contains_key(&key) {
            return Err(ApiError::AlreadyExists(key));
        }
        d.meta.uid = self.alloc_uid();
        d.meta.created_at = now;
        self.record_event(now, "DeploymentCreated", key.to_string(), "");
        self.deployments.insert(key, d);
        self.mark_dirty();
        Ok(())
    }

    /// Create an HPA.
    pub fn create_hpa(&mut self, mut hpa: Hpa, now: SimTime) -> Result<(), ApiError> {
        let key = hpa.meta.key();
        if self.hpas.contains_key(&key) {
            return Err(ApiError::AlreadyExists(key));
        }
        hpa.meta.uid = self.alloc_uid();
        hpa.meta.created_at = now;
        self.hpas.insert(key, hpa);
        self.mark_dirty();
        Ok(())
    }

    // ----- storage -----

    /// Register a PersistentVolume.
    pub fn add_pv(&mut self, mut pv: PersistentVolume, now: SimTime) {
        pv.meta.uid = self.alloc_uid();
        pv.meta.created_at = now;
        self.record_event(now, "PvAdded", pv.meta.name.clone(), "");
        self.pvs.insert(pv.meta.name.clone(), pv);
        self.mark_dirty();
    }

    /// Create a PVC.
    pub fn create_pvc(
        &mut self,
        mut pvc: PersistentVolumeClaim,
        now: SimTime,
    ) -> Result<(), ApiError> {
        let key = pvc.meta.key();
        if self.pvcs.contains_key(&key) {
            return Err(ApiError::AlreadyExists(key));
        }
        pvc.meta.uid = self.alloc_uid();
        pvc.meta.created_at = now;
        self.record_event(now, "PvcCreated", key.to_string(), "");
        self.pvcs.insert(key, pvc);
        self.mark_dirty();
        Ok(())
    }
}

/// API-server errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// An object with this key already exists.
    AlreadyExists(ObjectKey),
    /// The NodePort range (30000–32767) is exhausted.
    NodePortsExhausted,
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::AlreadyExists(k) => write!(f, "object already exists: {k}"),
            ApiError::NodePortsExhausted => write!(f, "node port range exhausted"),
        }
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ObjectMeta;
    use crate::pod::{ContainerSpec, PodSpec, WorkloadSpec};
    use lidc_simcore::time::SimDuration;

    const T0: SimTime = SimTime::ZERO;

    fn pod(name: &str, cores: u64, gib: u64) -> Pod {
        Pod::new(
            ObjectMeta::named(name),
            PodSpec::single(ContainerSpec {
                name: "c".into(),
                image: "i".into(),
                requests: Resources::new(cores, gib),
                workload: WorkloadSpec::run_for(SimDuration::from_secs(1)),
            }),
        )
    }

    #[test]
    fn uid_allocation_is_unique_and_monotone() {
        let mut api = ApiServer::new("c");
        let a = api.alloc_uid();
        let b = api.alloc_uid();
        assert!(b > a);
    }

    #[test]
    fn node_ips_and_usage_accounting() {
        let mut api = ApiServer::new("c");
        api.add_node(Node::new("n1", Resources::new(8, 32)), T0);
        assert_eq!(api.nodes["n1"].ip, "10.0.0.1");
        assert_eq!(api.node_free("n1"), Resources::new(8, 32));
        let mut p = pod("p1", 2, 4);
        p.status.node = Some("n1".into());
        p.status.phase = crate::pod::PodPhase::Running;
        api.create_pod(p, T0).unwrap();
        assert_eq!(api.node_usage("n1"), Resources::new(2, 4));
        assert_eq!(api.node_free("n1"), Resources::new(6, 28));
        assert_eq!(api.cluster_free(), Resources::new(6, 28));
        assert_eq!(api.node_free("missing"), Resources::ZERO);
    }

    #[test]
    fn finished_pods_release_resources() {
        let mut api = ApiServer::new("c");
        api.add_node(Node::new("n1", Resources::new(4, 8)), T0);
        let mut p = pod("p1", 4, 8);
        p.status.node = Some("n1".into());
        p.status.phase = crate::pod::PodPhase::Succeeded;
        api.create_pod(p, T0).unwrap();
        assert_eq!(api.node_free("n1"), Resources::new(4, 8));
    }

    #[test]
    fn duplicate_creation_rejected() {
        let mut api = ApiServer::new("c");
        api.create_pod(pod("p", 1, 1), T0).unwrap();
        assert!(matches!(
            api.create_pod(pod("p", 1, 1), T0),
            Err(ApiError::AlreadyExists(_))
        ));
    }

    #[test]
    fn service_gets_cluster_ip_and_node_port() {
        let mut api = ApiServer::new("c");
        let svc = crate::service::Service::node_port("gateway-nfd", "gw", 6363);
        api.create_service(svc, T0).unwrap();
        let svc = &api.services[&ObjectKey::named("gateway-nfd")];
        assert_eq!(svc.status.cluster_ip, "10.96.0.1");
        let np = svc.spec.ports[0].node_port.unwrap();
        assert!((30000..=32767).contains(&np), "paper's NodePort range");
        // Second NodePort service gets the next port.
        let svc2 = crate::service::Service::node_port("other", "o", 80);
        api.create_service(svc2, T0).unwrap();
        assert_eq!(
            api.services[&ObjectKey::named("other")].spec.ports[0].node_port,
            Some(np + 1)
        );
    }

    #[test]
    fn dirty_flag_set_and_consumed() {
        let mut api = ApiServer::new("c");
        assert!(!api.take_dirty());
        api.add_node(Node::new("n", Resources::new(1, 1)), T0);
        assert!(api.take_dirty());
        assert!(!api.take_dirty());
    }

    #[test]
    fn events_recorded_in_order() {
        let mut api = ApiServer::new("c");
        api.add_node(Node::new("n", Resources::new(1, 1)), T0);
        api.create_pod(pod("p", 1, 1), T0).unwrap();
        let kinds: Vec<&str> = api.events.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["NodeAdded", "PodCreated"]);
    }
}
