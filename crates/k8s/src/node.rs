//! Cluster nodes.

use crate::meta::ObjectMeta;
use crate::resources::Resources;

/// A worker node with fixed allocatable resources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Schedulable capacity.
    pub allocatable: Resources,
    /// Node readiness; unschedulable when false.
    pub ready: bool,
    /// Administratively cordoned: the node keeps running its pods but the
    /// scheduler places nothing new on it (`kubectl cordon`).
    pub cordoned: bool,
    /// Synthetic node IP (NodePort services are reachable at this address).
    pub ip: String,
}

impl Node {
    /// A ready node. The IP is derived later by the API server when added.
    pub fn new(name: impl Into<String>, allocatable: Resources) -> Self {
        Node {
            meta: ObjectMeta::named(name).in_namespace(""),
            allocatable,
            ready: true,
            cordoned: false,
            ip: String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_defaults() {
        let n = Node::new("node-1", Resources::new(8, 32));
        assert!(n.ready);
        assert!(!n.cordoned);
        assert_eq!(n.meta.name, "node-1");
        assert_eq!(n.allocatable, Resources::new(8, 32));
    }
}
