//! Services: stable names in front of pods, with ClusterIP and NodePort.
//!
//! This is the half of LIDC's naming story that lives inside the cluster:
//! a Kubernetes service gets a stable DNS name
//! (`dl-nfd.ndnk8s.svc.cluster.local`), and NodePort exposure is how the
//! external NDN world reaches the gateway NFD pod (paper Fig. 3).

use crate::meta::{LabelSelector, ObjectMeta};

/// Service exposure type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceType {
    /// Virtual IP reachable inside the cluster only.
    ClusterIp,
    /// Additionally exposed on every node's IP at an allocated port in
    /// `30000..=32767`.
    NodePort,
}

/// A service port mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServicePort {
    /// Port the service listens on (cluster-internal).
    pub port: u16,
    /// Target port on the pods.
    pub target_port: u16,
    /// Allocated node port (NodePort services only; set by the API server).
    pub node_port: Option<u16>,
}

/// Service specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    /// Pod selector.
    pub selector: LabelSelector,
    /// Exposure type.
    pub service_type: ServiceType,
    /// Ports.
    pub ports: Vec<ServicePort>,
}

/// Service status, maintained by the endpoints controller.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceStatus {
    /// Assigned cluster IP.
    pub cluster_ip: String,
    /// IPs of ready pods backing the service, sorted.
    pub endpoints: Vec<String>,
}

/// A service object.
#[derive(Debug, Clone, PartialEq)]
pub struct Service {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Spec.
    pub spec: ServiceSpec,
    /// Status.
    pub status: ServiceStatus,
}

impl Service {
    /// A ClusterIP service selecting pods labelled `app=<app>` on one port.
    pub fn cluster_ip(name: impl Into<String>, app: &str, port: u16) -> Self {
        Service {
            meta: ObjectMeta::named(name).with_label("app", app),
            spec: ServiceSpec {
                selector: LabelSelector::eq("app", app),
                service_type: ServiceType::ClusterIp,
                ports: vec![ServicePort {
                    port,
                    target_port: port,
                    node_port: None,
                }],
            },
            status: ServiceStatus::default(),
        }
    }

    /// A NodePort service (external exposure), as LIDC uses for the gateway
    /// NFD.
    pub fn node_port(name: impl Into<String>, app: &str, port: u16) -> Self {
        let mut svc = Service::cluster_ip(name, app, port);
        svc.spec.service_type = ServiceType::NodePort;
        svc
    }

    /// The in-cluster DNS name: `<name>.<namespace>.svc.cluster.local`.
    pub fn dns_name(&self) -> String {
        format!("{}.{}.svc.cluster.local", self.meta.name, self.meta.namespace)
    }

    /// True when at least one ready endpoint backs the service.
    pub fn has_endpoints(&self) -> bool {
        !self.status.endpoints.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dns_name_matches_paper_example() {
        // The paper names the data-lake router service
        // "dl-nfd.ndnk8s.svc.cluster.local".
        let svc = Service::cluster_ip("dl-nfd", "nfd", 6363);
        assert_eq!(svc.dns_name(), "dl-nfd.ndnk8s.svc.cluster.local");
    }

    #[test]
    fn node_port_constructor() {
        let svc = Service::node_port("gateway-nfd", "gateway", 6363);
        assert_eq!(svc.spec.service_type, ServiceType::NodePort);
        assert_eq!(svc.spec.ports[0].node_port, None, "allocated by apiserver");
        assert!(!svc.has_endpoints());
    }
}
