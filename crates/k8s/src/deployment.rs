//! Deployments, ReplicaSets and the HorizontalPodAutoscaler.
//!
//! These back the paper's scalability claim (§III-A): "Kubernetes provides
//! the ability to scale horizontally and vertically … Once the resources are
//! appropriately allocated, Kubernetes handles performance degradation or
//! failures, meaning that the network can only serve as a simple matchmaker."

use crate::meta::{LabelSelector, ObjectMeta};
use crate::pod::PodSpec;

/// A ReplicaSet: keeps `replicas` pods matching `selector` alive.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaSet {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Desired replica count.
    pub replicas: u32,
    /// Pod selector (must match the template labels).
    pub selector: LabelSelector,
    /// Pod template.
    pub template: PodSpec,
    /// Labels applied to created pods.
    pub template_labels: std::collections::BTreeMap<String, String>,
    /// Currently observed ready replicas (maintained by the controller).
    pub ready_replicas: u32,
}

/// A Deployment: a versioned wrapper creating/updating a ReplicaSet.
#[derive(Debug, Clone, PartialEq)]
pub struct Deployment {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Desired replica count.
    pub replicas: u32,
    /// Pod selector.
    pub selector: LabelSelector,
    /// Pod template.
    pub template: PodSpec,
    /// Labels applied to created pods.
    pub template_labels: std::collections::BTreeMap<String, String>,
}

impl Deployment {
    /// A deployment whose pods carry `app=<app>`.
    pub fn new(name: impl Into<String>, app: &str, replicas: u32, template: PodSpec) -> Self {
        let mut labels = std::collections::BTreeMap::new();
        labels.insert("app".to_owned(), app.to_owned());
        Deployment {
            meta: ObjectMeta::named(name).with_label("app", app),
            replicas,
            selector: LabelSelector::eq("app", app),
            template,
            template_labels: labels,
        }
    }
}

/// HorizontalPodAutoscaler: scales a Deployment between `min` and `max`
/// replicas, targeting `target_utilisation` of the externally reported load.
#[derive(Debug, Clone, PartialEq)]
pub struct Hpa {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Target deployment name (same namespace).
    pub target: String,
    /// Minimum replicas.
    pub min_replicas: u32,
    /// Maximum replicas.
    pub max_replicas: u32,
    /// Target per-replica utilisation in `(0, 1]`.
    pub target_utilisation: f64,
    /// Externally reported aggregate load, in "replica-equivalents"
    /// (e.g. 2.5 = work for 2.5 fully-utilised replicas). Updated via
    /// [`crate::cluster::SetHpaLoad`].
    pub observed_load: f64,
}

impl Hpa {
    /// Construct an HPA.
    pub fn new(
        name: impl Into<String>,
        target: impl Into<String>,
        min_replicas: u32,
        max_replicas: u32,
        target_utilisation: f64,
    ) -> Self {
        Hpa {
            meta: ObjectMeta::named(name),
            target: target.into(),
            min_replicas,
            max_replicas,
            target_utilisation: target_utilisation.clamp(0.01, 1.0),
            observed_load: 0.0,
        }
    }

    /// The replica count this HPA currently wants: `ceil(load / target)`,
    /// clamped to `[min, max]`.
    pub fn desired_replicas(&self) -> u32 {
        let raw = (self.observed_load / self.target_utilisation).ceil();
        let raw = if raw.is_finite() && raw > 0.0 {
            raw as u32
        } else {
            0
        };
        raw.clamp(self.min_replicas, self.max_replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::{ContainerSpec, WorkloadSpec};
    use crate::resources::Resources;

    fn template() -> PodSpec {
        PodSpec::single(ContainerSpec {
            name: "srv".into(),
            image: "fileserver".into(),
            requests: Resources::new(1, 1),
            workload: WorkloadSpec::Forever,
        })
    }

    #[test]
    fn deployment_wiring() {
        let d = Deployment::new("fileserver", "fs", 3, template());
        assert_eq!(d.replicas, 3);
        assert!(d.selector.matches(&d.template_labels));
    }

    #[test]
    fn hpa_desired_replicas() {
        let mut hpa = Hpa::new("hpa", "fileserver", 1, 10, 0.5);
        assert_eq!(hpa.desired_replicas(), 1, "no load → min");
        hpa.observed_load = 2.0;
        assert_eq!(hpa.desired_replicas(), 4, "2.0 load at 0.5 target → 4");
        hpa.observed_load = 100.0;
        assert_eq!(hpa.desired_replicas(), 10, "clamped to max");
        hpa.observed_load = -5.0;
        assert_eq!(hpa.desired_replicas(), 1, "negative load → min");
    }

    #[test]
    fn hpa_clamps_target() {
        let hpa = Hpa::new("h", "d", 1, 5, 0.0);
        assert!(hpa.target_utilisation > 0.0, "target clamped away from zero");
    }
}
