//! The cluster control plane: one actor running all controllers.
//!
//! A [`Cluster`] bundles the shared API server with a [`ClusterActor`] that
//! runs the control loops (PVC binder, HPA, Deployment, ReplicaSet, Job,
//! scheduler, endpoints) whenever nudged, after a configurable control-loop
//! latency — the simulated equivalent of controller watch/resync delay.
//! Pod execution is driven by virtual-time timers: a scheduled pod starts
//! after `pod_start_latency` (image pull + container start) and finishes
//! according to its [`crate::pod::WorkloadSpec`] timer.

use std::collections::HashSet;

use lidc_simcore::engine::{Actor, ActorId, Ctx, Msg, Sim};
use lidc_simcore::time::{SimDuration, SimTime};

use crate::apiserver::{ApiServer, SharedApi};
use crate::deployment::{Deployment, Hpa, ReplicaSet};
use crate::job::{Job, JobCondition};
use crate::meta::{ObjectKey, ObjectMeta, Uid};
use crate::node::Node;
use crate::pod::{Pod, PodPhase, PodSpec, WorkloadSpec};
use crate::scheduler::{Scheduler, ScorePolicy};
use crate::service::Service;
use crate::storage::{PersistentVolume, PersistentVolumeClaim, PvcPhase};

/// Ask the cluster to run its control loops (after the control latency).
#[derive(Debug)]
pub struct Nudge;

/// Report observed load to an HPA (replica-equivalents).
#[derive(Debug)]
pub struct SetHpaLoad {
    /// HPA key.
    pub hpa: ObjectKey,
    /// Aggregate load in replica-equivalents.
    pub load: f64,
}

/// Toggle a node's readiness (crash / failure injection): an unready
/// node's pods are evicted and respawned elsewhere.
#[derive(Debug)]
pub struct SetNodeReady {
    /// Node name.
    pub node: String,
    /// New readiness.
    pub ready: bool,
}

/// Cordon / uncordon a node (`kubectl cordon`): existing pods keep
/// running, but the scheduler places nothing new on it.
#[derive(Debug)]
pub struct CordonNode {
    /// Node name.
    pub node: String,
    /// New cordon state.
    pub cordoned: bool,
}

#[derive(Debug)]
struct Reconcile;

#[derive(Debug)]
struct PodStart {
    uid: Uid,
}

/// `(duration, ok, message, output)` of a pod's terminal transition.
type PodOutcome = (SimDuration, bool, String, Option<(String, u64)>);

#[derive(Debug)]
struct PodFinish {
    uid: Uid,
    ok: bool,
    message: String,
    output: Option<(String, u64)>,
}

/// Cluster tuning knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Cluster name.
    pub name: String,
    /// Delay between a state change and the controllers observing it.
    pub control_loop_latency: SimDuration,
    /// Image-pull + container-start latency for scheduled pods.
    pub pod_start_latency: SimDuration,
    /// Scheduler scoring policy.
    pub scheduler_policy: ScorePolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            name: "cluster".to_owned(),
            control_loop_latency: SimDuration::from_millis(5),
            pod_start_latency: SimDuration::from_millis(500),
            scheduler_policy: ScorePolicy::LeastAllocated,
        }
    }
}

impl ClusterConfig {
    /// Config with a custom name and defaults elsewhere.
    pub fn named(name: impl Into<String>) -> Self {
        ClusterConfig {
            name: name.into(),
            ..Default::default()
        }
    }
}

/// The control-plane actor.
pub struct ClusterActor {
    api: SharedApi,
    config: ClusterConfig,
    scheduler: Scheduler,
    reconcile_pending: bool,
    /// Pods whose start timer is armed or that already started.
    started: HashSet<Uid>,
    /// Pods whose finish timer is armed.
    finishing: HashSet<Uid>,
}

impl ClusterActor {
    /// Build the actor around a shared API server.
    pub fn new(api: SharedApi, config: ClusterConfig) -> Self {
        let scheduler = Scheduler::new(config.scheduler_policy);
        ClusterActor {
            api,
            config,
            scheduler,
            reconcile_pending: false,
            started: HashSet::new(),
            finishing: HashSet::new(),
        }
    }

    fn request_reconcile(&mut self, ctx: &mut Ctx<'_>) {
        if !self.reconcile_pending {
            self.reconcile_pending = true;
            ctx.schedule_self(self.config.control_loop_latency, Reconcile);
        }
    }

    fn reconcile(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let mut to_start: Vec<(Uid, SimDuration)> = Vec::new();
        {
            let api = &mut *self.api.write();
            let _ = api.take_dirty();
            // Run controllers to a fixpoint (bounded; each pass is cheap).
            for _ in 0..16 {
                let mut changed = false;
                changed |= evict_from_unready_nodes(api, now);
                changed |= bind_pvcs(api, now);
                changed |= reconcile_hpas(api, now);
                changed |= reconcile_deployments(api, now);
                changed |= reconcile_replicasets(api, now);
                changed |= reconcile_jobs(api, now);
                changed |= !self.scheduler.schedule(api, now).is_empty();
                changed |= reconcile_endpoints(api);
                if !changed {
                    break;
                }
            }
            let _ = api.take_dirty();
            // Arm start timers for newly bound pods.
            for pod in api.pods.values() {
                if pod.status.phase == PodPhase::Pending
                    && pod.status.node.is_some()
                    && !self.started.contains(&pod.meta.uid)
                {
                    to_start.push((pod.meta.uid, self.config.pod_start_latency));
                }
            }
        }
        for (uid, delay) in to_start {
            self.started.insert(uid);
            ctx.schedule_self(delay, PodStart { uid });
        }
    }

    fn on_pod_start(&mut self, uid: Uid, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let finish: Option<PodOutcome>;
        {
            let api = &mut *self.api.write();
            let Some(pod) = api.pod_by_uid_mut(uid) else {
                return; // deleted meanwhile
            };
            if pod.status.phase != PodPhase::Pending || pod.status.node.is_none() {
                return;
            }
            // Pending(bound) → Running: both sides hold resources, so the
            // usage index is unaffected and a direct write is exact.
            pod.status.phase = PodPhase::Running;
            pod.status.started_at = Some(now);
            let key = pod.meta.key().to_string();
            let attempt: u32 = pod
                .meta
                .labels
                .get("attempt")
                .and_then(|a| a.parse().ok())
                .unwrap_or(0);
            let workload = pod.spec.containers[0].workload.clone();
            api.record_event(now, "PodStarted", key, "");
            api.mark_dirty();
            finish = match workload {
                WorkloadSpec::Run { duration, output } => {
                    Some((duration, true, String::new(), output))
                }
                WorkloadSpec::Fail { after, message } => Some((after, false, message, None)),
                WorkloadSpec::FlakyThenSucceed {
                    failures,
                    attempt_duration,
                } => {
                    if attempt >= failures {
                        Some((attempt_duration, true, String::new(), None))
                    } else {
                        Some((
                            attempt_duration,
                            false,
                            format!("flaky failure {}/{failures}", attempt + 1),
                            None,
                        ))
                    }
                }
                WorkloadSpec::Forever => None,
            };
        }
        if let Some((duration, ok, message, output)) = finish {
            self.finishing.insert(uid);
            ctx.schedule_self(duration, PodFinish {
                uid,
                ok,
                message,
                output,
            });
        }
        self.request_reconcile(ctx);
    }

    fn on_pod_finish(&mut self, msg: PodFinish, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        self.finishing.remove(&msg.uid);
        {
            let api = &mut *self.api.write();
            let Some(pod) = api.pod_by_uid(msg.uid) else {
                return;
            };
            if pod.status.phase != PodPhase::Running {
                return;
            }
            // Through the API: leaving Running releases the node's
            // resources in the persistent usage index.
            api.set_pod_phase(
                msg.uid,
                if msg.ok {
                    PodPhase::Succeeded
                } else {
                    PodPhase::Failed
                },
            );
            // lidc-lint: allow(panic-path) reason="set_pod_phase succeeded on msg.uid just above, so pod_by_uid_mut cannot miss"
            let pod = api.pod_by_uid_mut(msg.uid).expect("phase just set");
            pod.status.finished_at = Some(now);
            pod.status.message = msg.message.clone();
            pod.status.output = msg.output.clone();
            let key = pod.meta.key().to_string();
            let kind = if msg.ok { "PodSucceeded" } else { "PodFailed" };
            api.record_event(now, kind, key, msg.message.clone());
            api.mark_dirty();
        }
        self.request_reconcile(ctx);
    }
}

impl Actor for ClusterActor {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let msg = match msg.downcast::<Nudge>() {
            Ok(_) => {
                self.request_reconcile(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Reconcile>() {
            Ok(_) => {
                self.reconcile_pending = false;
                self.reconcile(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<PodStart>() {
            Ok(s) => {
                self.on_pod_start(s.uid, ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<PodFinish>() {
            Ok(f) => {
                self.on_pod_finish(*f, ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<SetHpaLoad>() {
            Ok(s) => {
                {
                    let api = &mut *self.api.write();
                    if let Some(hpa) = api.hpas.get_mut(&s.hpa) {
                        hpa.observed_load = s.load;
                        api.mark_dirty();
                    }
                }
                self.request_reconcile(ctx);
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<SetNodeReady>() {
            Ok(s) => {
                {
                    let api = &mut *self.api.write();
                    if let Some(node) = api.nodes.get_mut(&s.node) {
                        node.ready = s.ready;
                        api.mark_dirty();
                    }
                }
                self.request_reconcile(ctx);
                return;
            }
            Err(m) => m,
        };
        match msg.downcast::<CordonNode>() {
            Ok(c) => {
                self.api.write().set_node_cordoned(&c.node, c.cordoned);
                self.request_reconcile(ctx);
            }
            Err(_) => {
                ctx.metrics().incr("k8s.unknown_message", 1);
            }
        }
    }
}

// ----- controllers (free functions over the API server) -----

/// Node-failure semantics: pods bound to a node that went unready are lost
/// (the real node controller marks them and the owning Job/ReplicaSet makes
/// replacements). Marking them Failed here lets `reconcile_jobs` /
/// `reconcile_replicasets` re-create them on surviving nodes; the stale
/// start/finish timers no-op because the phase has moved on.
fn evict_from_unready_nodes(api: &mut ApiServer, now: SimTime) -> bool {
    let unready: Vec<String> = api
        .nodes
        .values()
        .filter(|n| !n.ready)
        .map(|n| n.meta.name.clone())
        .collect();
    if unready.is_empty() {
        return false;
    }
    let victims: Vec<Uid> = api
        .pods
        .values()
        .filter(|p| matches!(p.status.phase, PodPhase::Pending | PodPhase::Running))
        .filter(|p| {
            p.status
                .node
                .as_ref()
                .map(|n| unready.contains(n))
                .unwrap_or(false)
        })
        .map(|p| p.meta.uid)
        .collect();
    let mut changed = false;
    for uid in victims {
        // Through the API so the persistent usage index releases the node.
        if !api.set_pod_phase(uid, PodPhase::Failed) {
            continue;
        }
        // lidc-lint: allow(panic-path) reason="set_pod_phase(uid, ..) returned true just above, so the uid is present"
        let pod = api.pod_by_uid_mut(uid).expect("phase just set");
        pod.status.finished_at = Some(now);
        pod.status.message = "node lost".to_owned();
        let key = pod.meta.key().to_string();
        api.record_event(now, "PodEvicted", key, "node went unready");
        changed = true;
    }
    if changed {
        api.mark_dirty();
    }
    changed
}

fn bind_pvcs(api: &mut ApiServer, now: SimTime) -> bool {
    let pending: Vec<ObjectKey> = api
        .pvcs
        .iter()
        .filter(|(_, pvc)| pvc.phase == PvcPhase::Pending)
        .map(|(k, _)| k.clone())
        .collect();
    let mut changed = false;
    for key in pending {
        let request = api.pvcs[&key].request;
        // Smallest sufficient unbound volume, name tie-break (BTreeMap order).
        let candidate = api
            .pvs
            .values()
            .filter(|pv| pv.bound_to.is_none() && pv.capacity >= request)
            .min_by_key(|pv| (pv.capacity, pv.meta.name.clone()))
            .map(|pv| pv.meta.name.clone());
        if let Some(pv_name) = candidate {
            // lidc-lint: allow(panic-path) reason="pv_name was just selected from api.pvs iteration and nothing mutates pvs in between"
            api.pvs.get_mut(&pv_name).unwrap().bound_to = Some(key.to_string());
            // lidc-lint: allow(panic-path) reason="the caller iterates PVC keys collected from api.pvcs and nothing removes them mid-pass"
            let pvc = api.pvcs.get_mut(&key).unwrap();
            pvc.phase = PvcPhase::Bound;
            pvc.volume = Some(pv_name.clone());
            api.record_event(now, "PvcBound", key.to_string(), pv_name);
            changed = true;
        }
    }
    changed
}

fn reconcile_hpas(api: &mut ApiServer, now: SimTime) -> bool {
    let mut changed = false;
    let updates: Vec<(ObjectKey, u32)> = api
        .hpas
        .values()
        .map(|hpa| {
            (
                ObjectKey::new(hpa.meta.namespace.clone(), hpa.target.clone()),
                hpa.desired_replicas(),
            )
        })
        .collect();
    for (target, desired) in updates {
        if let Some(d) = api.deployments.get_mut(&target) {
            if d.replicas != desired {
                d.replicas = desired;
                api.record_event(now, "Scaled", target.to_string(), format!("to {desired}"));
                changed = true;
            }
        }
    }
    changed
}

fn reconcile_deployments(api: &mut ApiServer, now: SimTime) -> bool {
    let mut changed = false;
    let deployments: Vec<Deployment> = api.deployments.values().cloned().collect();
    for d in deployments {
        let rs_key = ObjectKey::new(d.meta.namespace.clone(), format!("{}-rs", d.meta.name));
        match api.replicasets.get_mut(&rs_key) {
            None => {
                let mut labels = d.template_labels.clone();
                labels.insert("rs".to_owned(), rs_key.name.clone());
                let rs = ReplicaSet {
                    meta: ObjectMeta {
                        name: rs_key.name.clone(),
                        namespace: rs_key.namespace.clone(),
                        labels: d.meta.labels.clone(),
                        uid: api.alloc_uid(),
                        created_at: now,
                    },
                    replicas: d.replicas,
                    selector: d.selector.clone(),
                    template: d.template.clone(),
                    template_labels: labels,
                    ready_replicas: 0,
                };
                api.record_event(now, "ReplicaSetCreated", rs_key.to_string(), "");
                api.replicasets.insert(rs_key, rs);
                changed = true;
            }
            Some(rs) => {
                if rs.replicas != d.replicas {
                    rs.replicas = d.replicas;
                    changed = true;
                }
                if rs.template != d.template {
                    rs.template = d.template.clone();
                    changed = true;
                }
            }
        }
    }
    changed
}

fn reconcile_replicasets(api: &mut ApiServer, now: SimTime) -> bool {
    let mut changed = false;
    let rs_keys: Vec<ObjectKey> = api.replicasets.keys().cloned().collect();
    for rs_key in rs_keys {
        let (replicas, template, labels, ns) = {
            let rs = &api.replicasets[&rs_key];
            (
                rs.replicas,
                rs.template.clone(),
                rs.template_labels.clone(),
                rs.meta.namespace.clone(),
            )
        };
        let live: Vec<ObjectKey> = api
            .pods
            .iter()
            .filter(|(_, p)| {
                !p.is_finished() && p.meta.labels.get("rs") == Some(&rs_key.name)
            })
            .map(|(k, _)| k.clone())
            .collect();
        let running = api
            .pods
            .values()
            .filter(|p| {
                p.status.phase == PodPhase::Running
                    && p.meta.labels.get("rs") == Some(&rs_key.name)
            })
            .count() as u32;
        if (live.len() as u32) < replicas {
            for _ in 0..(replicas - live.len() as u32) {
                let uid_hint = api.alloc_uid();
                let name = format!("{}-{}", rs_key.name, uid_hint.0);
                let mut meta = ObjectMeta::named(&name).in_namespace(&ns);
                meta.labels = labels.clone();
                let pod = Pod::new(meta, template.clone());
                let key = pod.meta.key().to_string();
                if api.create_pod(pod, now).is_ok() {
                    api.record_event(now, "ReplicaPodCreated", key, rs_key.to_string());
                    changed = true;
                }
            }
        } else if (live.len() as u32) > replicas {
            // Delete the newest extras (highest uid first).
            let mut extras = live.clone();
            // lidc-lint: allow(panic-path) reason="extras clones live, whose keys were collected from api.pods in this same pass"
            extras.sort_by_key(|k| std::cmp::Reverse(api.pods[k].meta.uid));
            for key in extras.into_iter().take(live.len() - replicas as usize) {
                // Through the API so the uid/job/usage indexes stay exact.
                api.delete_pod(&key);
                api.record_event(now, "ReplicaPodDeleted", key.to_string(), rs_key.to_string());
                changed = true;
            }
        }
        // lidc-lint: allow(panic-path) reason="rs_key was collected from api.replicasets at the top of the reconcile pass and replicasets are not removed mid-pass"
        let rs = api.replicasets.get_mut(&rs_key).unwrap();
        if rs.ready_replicas != running {
            rs.ready_replicas = running;
            changed = true;
        }
    }
    changed
}

/// The Job controller pass. `pub` so the `k8s_reconcile` microbench can
/// measure a pass in isolation against a large resident pod population.
///
/// Pod ownership comes from the API server's **persistent** pods-by-job
/// index ([`ApiServer::pods_of_job`]), maintained incrementally at pod
/// create/delete — this pass no longer sweeps every pod (PR 2's per-call
/// grouping sweep was O(pods) per pass; with thousands of long-running
/// pods resident on the 4096-node runs, that sweep dominated every
/// control-loop tick even when one job changed).
pub fn reconcile_jobs(api: &mut ApiServer, now: SimTime) -> bool {
    let mut changed = false;
    let job_keys: Vec<ObjectKey> = api.jobs.keys().cloned().collect();
    for key in job_keys {
        if api.jobs[&key].is_finished() {
            continue;
        }
        let backoff_limit = api.jobs[&key].spec.backoff_limit;
        // Pods owned by this job (persistent index, creation order).
        // Resolve each owned pod exactly once and derive every per-job
        // aggregate in a single read pass — on a steady-state pass this is
        // the entire per-job cost.
        let (owned_count, succeeded, failures, live, running_pod_start, fail_message) = {
            let owned = api.pods_of_job(&key.name);
            // lidc-lint: allow(panic-path) reason="pods_of_job returns keys of pods currently present in api.pods"
            let pods: Vec<&crate::pod::Pod> = owned.iter().map(|k| &api.pods[k]).collect();
            let succeeded = pods
                .iter()
                .find(|p| p.status.phase == PodPhase::Succeeded)
                .map(|p| {
                    (
                        p.status.finished_at,
                        p.status.output.clone(),
                        p.status.started_at,
                    )
                });
            let failures = pods
                .iter()
                .filter(|p| p.status.phase == PodPhase::Failed)
                .count() as u32;
            let live = pods.iter().any(|p| !p.is_finished());
            let running_pod_start = pods
                .iter()
                .filter_map(|p| {
                    if p.status.phase == PodPhase::Running {
                        p.status.started_at
                    } else {
                        None
                    }
                })
                .min();
            let fail_message = pods
                .iter()
                .rfind(|p| p.status.phase == PodPhase::Failed)
                .map(|p| p.status.message.clone());
            (
                owned.len(),
                succeeded,
                failures,
                live,
                running_pod_start,
                fail_message,
            )
        };

        if let Some((finished_at, output, started_at)) = succeeded {
            // lidc-lint: allow(panic-path) reason="key was collected from api.jobs at the top of the reconcile pass and jobs are never removed mid-pass"
            let job = api.jobs.get_mut(&key).unwrap();
            job.status.condition = JobCondition::Completed;
            job.status.finished_at = finished_at;
            job.status.output = output;
            if job.status.started_at.is_none() {
                job.status.started_at = started_at;
            }
            job.status.failures = failures;
            api.record_event(now, "JobCompleted", key.to_string(), "");
            changed = true;
        } else if failures > backoff_limit {
            let message = fail_message.unwrap_or_default();
            // lidc-lint: allow(panic-path) reason="key was collected from api.jobs at the top of the reconcile pass and jobs are never removed mid-pass"
            let job = api.jobs.get_mut(&key).unwrap();
            job.status.condition = JobCondition::Failed;
            job.status.finished_at = Some(now);
            job.status.message = message.clone();
            job.status.failures = failures;
            api.record_event(now, "JobFailed", key.to_string(), message);
            changed = true;
        } else if !live {
            // Launch the next attempt.
            let attempt = owned_count as u32;
            let name = format!("{}-{}", key.name, attempt);
            let mut meta = ObjectMeta::named(&name).in_namespace(&key.namespace);
            meta.labels.insert("job".to_owned(), key.name.clone());
            meta.labels.insert("attempt".to_owned(), attempt.to_string());
            let template = api.jobs[&key].spec.template.clone();
            let pod = Pod::new(meta, template);
            let pod_key = pod.meta.key().to_string();
            if api.create_pod(pod, now).is_ok() {
                // lidc-lint: allow(panic-path) reason="key was collected from api.jobs at the top of the reconcile pass and jobs are never removed mid-pass"
                let job = api.jobs.get_mut(&key).unwrap();
                job.status.pods.push(name);
                job.status.failures = failures;
                api.record_event(now, "JobPodLaunched", key.to_string(), pod_key);
                changed = true;
            }
        } else if let Some(start) = running_pod_start {
            // lidc-lint: allow(panic-path) reason="key was collected from api.jobs at the top of the reconcile pass and jobs are never removed mid-pass"
            let job = api.jobs.get_mut(&key).unwrap();
            if job.status.condition != JobCondition::Running {
                job.status.condition = JobCondition::Running;
                job.status.started_at = Some(start);
                api.record_event(now, "JobRunning", key.to_string(), "");
                changed = true;
            }
        }
    }
    changed
}

fn reconcile_endpoints(api: &mut ApiServer) -> bool {
    let mut changed = false;
    let svc_keys: Vec<ObjectKey> = api.services.keys().cloned().collect();
    for key in svc_keys {
        let selector = api.services[&key].spec.selector.clone();
        let mut endpoints: Vec<String> = api
            .pods
            .values()
            .filter(|p| p.status.phase == PodPhase::Running && selector.matches(&p.meta.labels))
            .filter_map(|p| p.status.ip.clone())
            .collect();
        endpoints.sort();
        // lidc-lint: allow(panic-path) reason="key was collected from api.services at the top of the reconcile pass"
        let svc = api.services.get_mut(&key).unwrap();
        if svc.status.endpoints != endpoints {
            svc.status.endpoints = endpoints;
            changed = true;
        }
    }
    changed
}

/// A deployed cluster: the actor id plus the shared API handle.
#[derive(Clone)]
pub struct Cluster {
    /// Control-plane actor.
    pub actor: ActorId,
    /// Shared API server.
    pub api: SharedApi,
    /// Cluster name.
    pub name: String,
}

impl Cluster {
    /// Spawn a cluster into the simulation.
    pub fn spawn(sim: &mut Sim, config: ClusterConfig) -> Cluster {
        let name = config.name.clone();
        let api = ApiServer::shared(&name);
        let actor = sim.spawn(
            format!("k8s-{name}"),
            ClusterActor::new(api.clone(), config),
        );
        Cluster { actor, api, name }
    }

    /// Add a node and nudge the control plane.
    pub fn add_node(&self, sim: &mut Sim, node: Node) {
        let now = sim.now();
        self.api.write().add_node(node, now);
        sim.send(self.actor, Nudge);
    }

    /// Create a service.
    pub fn create_service(&self, sim: &mut Sim, svc: Service) {
        let now = sim.now();
        self.api
            .write()
            .create_service(svc, now)
            .expect("service name collision");
        sim.send(self.actor, Nudge);
    }

    /// Create a job; returns its key.
    pub fn create_job(&self, sim: &mut Sim, name: &str, template: PodSpec, backoff: u32) -> ObjectKey {
        let now = sim.now();
        let job = Job::new(ObjectMeta::named(name), template, backoff);
        let key = self
            .api
            .write()
            .create_job(job, now)
            // lidc-lint: allow(panic-path) reason="job names embed the controller's monotonically increasing sequence number, so create_job never collides"
            .expect("job name collision");
        sim.send(self.actor, Nudge);
        key
    }

    /// Create a deployment.
    pub fn create_deployment(&self, sim: &mut Sim, d: Deployment) {
        let now = sim.now();
        self.api
            .write()
            .create_deployment(d, now)
            .expect("deployment name collision");
        sim.send(self.actor, Nudge);
    }

    /// Create an HPA.
    pub fn create_hpa(&self, sim: &mut Sim, hpa: Hpa) {
        let now = sim.now();
        self.api.write().create_hpa(hpa, now).expect("hpa name collision");
        sim.send(self.actor, Nudge);
    }

    /// Register a PV.
    pub fn add_pv(&self, sim: &mut Sim, pv: PersistentVolume) {
        let now = sim.now();
        self.api.write().add_pv(pv, now);
        sim.send(self.actor, Nudge);
    }

    /// Create a PVC.
    pub fn create_pvc(&self, sim: &mut Sim, pvc: PersistentVolumeClaim) {
        let now = sim.now();
        self.api.write().create_pvc(pvc, now).expect("pvc name collision");
        sim.send(self.actor, Nudge);
    }

    /// Snapshot a job's condition.
    pub fn job_condition(&self, key: &ObjectKey) -> Option<JobCondition> {
        self.api.read().jobs.get(key).map(|j| j.status.condition)
    }

    /// Snapshot a full job.
    pub fn job(&self, key: &ObjectKey) -> Option<Job> {
        self.api.read().jobs.get(key).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::ContainerSpec;
    use crate::resources::Resources;

    fn blast_template(duration_hours: u64, output_mb: u64) -> PodSpec {
        PodSpec::single(ContainerSpec {
            name: "blast".into(),
            image: "magicblast".into(),
            requests: Resources::new(2, 4),
            workload: WorkloadSpec::Run {
                duration: SimDuration::from_hours(duration_hours),
                output: Some(("result".into(), output_mb * 1_000_000)),
            },
        })
    }

    fn cluster_with_node(sim: &mut Sim, cores: u64, gib: u64) -> Cluster {
        let cluster = Cluster::spawn(sim, ClusterConfig::named("test"));
        cluster.add_node(sim, Node::new("node-1", Resources::new(cores, gib)));
        cluster
    }

    #[test]
    fn job_runs_to_completion() {
        let mut sim = Sim::new(1);
        let cluster = cluster_with_node(&mut sim, 8, 16);
        let key = cluster.create_job(&mut sim, "blast-1", blast_template(8, 941), 3);
        sim.run();
        let job = cluster.job(&key).unwrap();
        assert_eq!(job.status.condition, JobCondition::Completed);
        assert_eq!(job.status.output, Some(("result".into(), 941_000_000)));
        assert_eq!(job.run_time(), Some(SimDuration::from_hours(8)));
        assert!(job.status.finished_at.unwrap() > SimTime::ZERO + SimDuration::from_hours(8));
    }

    #[test]
    fn job_status_progresses_through_conditions() {
        let mut sim = Sim::new(2);
        let cluster = cluster_with_node(&mut sim, 8, 16);
        let key = cluster.create_job(&mut sim, "j", blast_template(1, 1), 0);
        // Before any reconcile: Pending.
        assert_eq!(cluster.job_condition(&key), Some(JobCondition::Pending));
        // After start latency + control latency: Running.
        sim.run_for(SimDuration::from_secs(2));
        assert_eq!(cluster.job_condition(&key), Some(JobCondition::Running));
        sim.run();
        assert_eq!(cluster.job_condition(&key), Some(JobCondition::Completed));
    }

    #[test]
    fn failed_job_retries_until_backoff_limit() {
        let mut sim = Sim::new(3);
        let cluster = cluster_with_node(&mut sim, 8, 16);
        let template = PodSpec::single(ContainerSpec {
            name: "bad".into(),
            image: "broken".into(),
            requests: Resources::new(1, 1),
            workload: WorkloadSpec::Fail {
                after: SimDuration::from_secs(10),
                message: "segfault".into(),
            },
        });
        let key = cluster.create_job(&mut sim, "doomed", template, 2);
        sim.run();
        let job = cluster.job(&key).unwrap();
        assert_eq!(job.status.condition, JobCondition::Failed);
        assert_eq!(job.status.failures, 3, "initial + 2 retries");
        assert_eq!(job.status.message, "segfault");
        let api = cluster.api.read();
        assert_eq!(api.pods.len(), 3, "three attempts");
    }

    #[test]
    fn flaky_job_eventually_succeeds_within_backoff() {
        let mut sim = Sim::new(4);
        let cluster = cluster_with_node(&mut sim, 8, 16);
        let template = PodSpec::single(ContainerSpec {
            name: "flaky".into(),
            image: "flaky".into(),
            requests: Resources::new(1, 1),
            workload: WorkloadSpec::FlakyThenSucceed {
                failures: 2,
                attempt_duration: SimDuration::from_secs(5),
            },
        });
        let key = cluster.create_job(&mut sim, "flaky", template, 3);
        sim.run();
        let job = cluster.job(&key).unwrap();
        assert_eq!(job.status.condition, JobCondition::Completed);
        assert_eq!(job.status.failures, 2);
    }

    #[test]
    fn jobs_queue_when_cluster_full() {
        let mut sim = Sim::new(5);
        let cluster = cluster_with_node(&mut sim, 4, 8);
        // Each job wants 2 cores/4 GiB ⇒ two run concurrently, third waits.
        let keys: Vec<ObjectKey> = (0..3)
            .map(|i| cluster.create_job(&mut sim, &format!("j{i}"), blast_template(1, 1), 0))
            .collect();
        sim.run_for(SimDuration::from_mins(30));
        let conditions: Vec<JobCondition> = keys
            .iter()
            .map(|k| cluster.job_condition(k).unwrap())
            .collect();
        assert_eq!(
            conditions
                .iter()
                .filter(|c| **c == JobCondition::Running)
                .count(),
            2,
            "exactly two running: {conditions:?}"
        );
        sim.run();
        for k in &keys {
            assert_eq!(cluster.job_condition(k), Some(JobCondition::Completed));
        }
    }

    #[test]
    fn deployment_maintains_replicas_and_endpoints() {
        let mut sim = Sim::new(6);
        let cluster = cluster_with_node(&mut sim, 16, 32);
        let template = PodSpec::single(ContainerSpec {
            name: "fs".into(),
            image: "fileserver".into(),
            requests: Resources::new(1, 1),
            workload: WorkloadSpec::Forever,
        });
        cluster.create_service(&mut sim, Service::cluster_ip("fileserver", "fs", 8080));
        cluster.create_deployment(&mut sim, Deployment::new("fileserver", "fs", 3, template));
        sim.run();
        let api = cluster.api.read();
        let running = api
            .pods
            .values()
            .filter(|p| p.status.phase == PodPhase::Running)
            .count();
        assert_eq!(running, 3);
        let svc = &api.services[&ObjectKey::named("fileserver")];
        assert_eq!(svc.status.endpoints.len(), 3, "endpoints track ready pods");
    }

    #[test]
    fn hpa_scales_deployment_up_and_down() {
        let mut sim = Sim::new(7);
        let cluster = cluster_with_node(&mut sim, 32, 64);
        let template = PodSpec::single(ContainerSpec {
            name: "w".into(),
            image: "worker".into(),
            requests: Resources::new(1, 1),
            workload: WorkloadSpec::Forever,
        });
        cluster.create_deployment(&mut sim, Deployment::new("workers", "w", 1, template));
        cluster.create_hpa(&mut sim, Hpa::new("workers-hpa", "workers", 1, 8, 0.5));
        sim.run();
        let count_running = |cluster: &Cluster| {
            cluster
                .api
                .read()
                .pods
                .values()
                .filter(|p| p.status.phase == PodPhase::Running)
                .count()
        };
        assert_eq!(count_running(&cluster), 1);
        sim.send(cluster.actor, SetHpaLoad {
            hpa: ObjectKey::named("workers-hpa"),
            load: 3.0,
        });
        sim.run();
        assert_eq!(count_running(&cluster), 6, "3.0/0.5 = 6 replicas");
        sim.send(cluster.actor, SetHpaLoad {
            hpa: ObjectKey::named("workers-hpa"),
            load: 0.0,
        });
        sim.run();
        assert_eq!(count_running(&cluster), 1, "scales back to min");
    }

    #[test]
    fn pvc_binds_to_smallest_sufficient_pv() {
        use crate::resources::Memory;
        use crate::storage::NfsExport;
        let mut sim = Sim::new(8);
        let cluster = cluster_with_node(&mut sim, 4, 8);
        cluster.add_pv(
            &mut sim,
            PersistentVolume::new("pv-big", Memory::gib(500), NfsExport::new()),
        );
        cluster.add_pv(
            &mut sim,
            PersistentVolume::new("pv-small", Memory::gib(100), NfsExport::new()),
        );
        cluster.create_pvc(
            &mut sim,
            PersistentVolumeClaim::new("datalake", Memory::gib(50)),
        );
        sim.run();
        let api = cluster.api.read();
        let pvc = &api.pvcs[&ObjectKey::named("datalake")];
        assert_eq!(pvc.phase, PvcPhase::Bound);
        assert_eq!(pvc.volume.as_deref(), Some("pv-small"));
        assert_eq!(api.pvs["pv-small"].bound_to.as_deref(), Some("ndnk8s/datalake"));
        assert!(api.pvs["pv-big"].bound_to.is_none());
    }

    #[test]
    fn node_failure_blocks_new_scheduling() {
        let mut sim = Sim::new(9);
        let cluster = cluster_with_node(&mut sim, 4, 8);
        sim.send(cluster.actor, SetNodeReady {
            node: "node-1".into(),
            ready: false,
        });
        let key = cluster.create_job(&mut sim, "stuck", blast_template(1, 1), 0);
        sim.run_for(SimDuration::from_mins(5));
        assert_eq!(cluster.job_condition(&key), Some(JobCondition::Pending));
        // Recovery.
        sim.send(cluster.actor, SetNodeReady {
            node: "node-1".into(),
            ready: true,
        });
        sim.run();
        assert_eq!(cluster.job_condition(&key), Some(JobCondition::Completed));
    }

    #[test]
    fn table1_shape_runtime_insensitive_to_resources() {
        // The paper's Table I observation: varying CPU 2→4 or memory 4→6
        // barely changes BLAST run time (the workload is not limited by the
        // extra allocation). Our WorkloadSpec durations are computed by the
        // cost model; here we verify the cluster faithfully reports them.
        let mut sim = Sim::new(10);
        let cluster = cluster_with_node(&mut sim, 16, 32);
        let mk = |cores: u64, gib: u64, secs: u64| {
            PodSpec::single(ContainerSpec {
                name: "blast".into(),
                image: "magicblast".into(),
                requests: Resources::new(cores, gib),
                workload: WorkloadSpec::run_for(SimDuration::from_secs(secs)),
            })
        };
        let a = cluster.create_job(&mut sim, "rice-2cpu", mk(2, 4, 29390), 0);
        let b = cluster.create_job(&mut sim, "rice-4cpu", mk(4, 4, 29230), 0);
        sim.run();
        let ra = cluster.job(&a).unwrap().run_time().unwrap();
        let rb = cluster.job(&b).unwrap().run_time().unwrap();
        assert_eq!(ra.to_string(), "8h9m50s");
        assert_eq!(rb.to_string(), "8h7m10s");
    }

    #[test]
    fn node_failure_evicts_and_job_recovers_on_survivor() {
        let mut sim = Sim::new(11);
        let cluster = Cluster::spawn(&mut sim, ClusterConfig::named("test"));
        cluster.add_node(&mut sim, Node::new("node-1", Resources::new(8, 16)));
        cluster.add_node(&mut sim, Node::new("node-2", Resources::new(8, 16)));
        let key = cluster.create_job(&mut sim, "blast-1", blast_template(8, 941), 3);
        // Let the pod start somewhere, then fail that node mid-run.
        sim.run_for(SimDuration::from_mins(30));
        let node = {
            let api = cluster.api.read();
            let pod = api
                .pods
                .values()
                .find(|p| p.status.phase == PodPhase::Running)
                .expect("pod running");
            pod.status.node.clone().unwrap()
        };
        sim.send(cluster.actor, SetNodeReady {
            node: node.clone(),
            ready: false,
        });
        sim.run();
        // Evicted, retried on the surviving node, completed.
        let job = cluster.job(&key).unwrap();
        assert_eq!(job.status.condition, JobCondition::Completed);
        assert_eq!(job.status.failures, 1, "one attempt lost to the node");
        let api = cluster.api.read();
        assert!(api.events.iter().any(|e| e.kind == "PodEvicted"));
        let survivor = api
            .pods
            .values()
            .find(|p| p.status.phase == PodPhase::Succeeded)
            .expect("replacement succeeded");
        assert_ne!(survivor.status.node.as_deref(), Some(node.as_str()));
    }

    #[test]
    fn node_failure_with_no_survivor_fails_job_after_backoff() {
        let mut sim = Sim::new(12);
        let cluster = cluster_with_node(&mut sim, 8, 16);
        let key = cluster.create_job(&mut sim, "blast-1", blast_template(8, 941), 1);
        sim.run_for(SimDuration::from_mins(30));
        sim.send(cluster.actor, SetNodeReady {
            node: "node-1".into(),
            ready: false,
        });
        // The only node is gone: replacements cannot schedule; the job
        // stays Pending-with-failures rather than falsely completing.
        sim.run_for(SimDuration::from_hours(20));
        let job = cluster.job(&key).unwrap();
        assert_ne!(job.status.condition, JobCondition::Completed);
        // Heal the node: the queued replacement now runs to completion.
        sim.send(cluster.actor, SetNodeReady {
            node: "node-1".into(),
            ready: true,
        });
        sim.run();
        assert_eq!(
            cluster.job(&key).unwrap().status.condition,
            JobCondition::Completed
        );
    }
}
