//! Resource quantities: CPU (millicores) and memory (bytes).
//!
//! Mirrors the Kubernetes quantity model closely enough for LIDC: compute
//! requests carry `cpu` and `mem` requirements (the paper encodes them in
//! Interest names as `mem=4&cpu=6`), the scheduler fits requests against
//! node allocatable, and nothing may overcommit.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// CPU in millicores (as in Kubernetes: `1000m` = 1 core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cpu(pub u64);

impl Cpu {
    /// Whole cores.
    pub const fn cores(n: u64) -> Self {
        Cpu(n * 1000)
    }

    /// Millicores.
    pub const fn millis(n: u64) -> Self {
        Cpu(n)
    }

    /// Parse `2`, `2.5`, or `2500m`.
    pub fn parse(s: &str) -> Option<Cpu> {
        let s = s.trim();
        if let Some(m) = s.strip_suffix('m') {
            return m.parse::<u64>().ok().map(Cpu);
        }
        let cores: f64 = s.parse().ok()?;
        if !cores.is_finite() || cores < 0.0 {
            return None;
        }
        Some(Cpu((cores * 1000.0).round() as u64))
    }

    /// Cores as a float (diagnostics).
    pub fn as_cores_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl fmt::Display for Cpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1000) {
            write!(f, "{}", self.0 / 1000)
        } else {
            write!(f, "{}m", self.0)
        }
    }
}

/// Memory in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Memory(pub u64);

const KI: u64 = 1024;
const MI: u64 = 1024 * 1024;
const GI: u64 = 1024 * 1024 * 1024;

impl Memory {
    /// Gibibytes.
    pub const fn gib(n: u64) -> Self {
        Memory(n * GI)
    }

    /// Mebibytes.
    pub const fn mib(n: u64) -> Self {
        Memory(n * MI)
    }

    /// Bytes.
    pub const fn bytes(n: u64) -> Self {
        Memory(n)
    }

    /// Parse `4Gi`, `512Mi`, `1024Ki`, `4G` (decimal), or raw bytes. A bare
    /// number with no unit is taken as GiB when small (the paper writes
    /// "Memory (GB): 4"), bytes otherwise.
    pub fn parse(s: &str) -> Option<Memory> {
        let s = s.trim();
        let parse_num = |t: &str| t.trim().parse::<f64>().ok().filter(|v| *v >= 0.0);
        for (suffix, mult) in [
            ("Gi", GI as f64),
            ("Mi", MI as f64),
            ("Ki", KI as f64),
            ("G", 1e9),
            ("M", 1e6),
            ("K", 1e3),
        ] {
            if let Some(t) = s.strip_suffix(suffix) {
                return parse_num(t).map(|v| Memory((v * mult).round() as u64));
            }
        }
        let v = parse_num(s)?;
        // Heuristic per the paper's convention: small bare numbers are GB.
        if v <= 1024.0 {
            Some(Memory((v * GI as f64).round() as u64))
        } else {
            Some(Memory(v.round() as u64))
        }
    }

    /// GiB as a float (diagnostics).
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / GI as f64
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(GI) {
            write!(f, "{}Gi", self.0 / GI)
        } else if self.0.is_multiple_of(MI) {
            write!(f, "{}Mi", self.0 / MI)
        } else if self.0.is_multiple_of(KI) {
            write!(f, "{}Ki", self.0 / KI)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// A (cpu, memory) bundle: requests, allocatable, usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// CPU millicores.
    pub cpu: Cpu,
    /// Memory bytes.
    pub memory: Memory,
}

impl Resources {
    /// Zero resources.
    pub const ZERO: Resources = Resources {
        cpu: Cpu(0),
        memory: Memory(0),
    };

    /// Construct from cores and GiB (the paper's units).
    pub const fn new(cores: u64, mem_gib: u64) -> Self {
        Resources {
            cpu: Cpu::cores(cores),
            memory: Memory::gib(mem_gib),
        }
    }

    /// True if `self` fits inside `available` on both axes.
    pub fn fits_in(&self, available: &Resources) -> bool {
        self.cpu <= available.cpu && self.memory <= available.memory
    }

    /// Saturating subtraction on both axes.
    pub fn saturating_sub(&self, rhs: &Resources) -> Resources {
        Resources {
            cpu: Cpu(self.cpu.0.saturating_sub(rhs.cpu.0)),
            memory: Memory(self.memory.0.saturating_sub(rhs.memory.0)),
        }
    }

    /// The dominant-share utilisation of `self` against `capacity`
    /// (max of cpu fraction and memory fraction, in \[0,1\] when feasible).
    pub fn dominant_utilisation(&self, capacity: &Resources) -> f64 {
        let cpu_frac = if capacity.cpu.0 == 0 {
            0.0
        } else {
            self.cpu.0 as f64 / capacity.cpu.0 as f64
        };
        let mem_frac = if capacity.memory.0 == 0 {
            0.0
        } else {
            self.memory.0 as f64 / capacity.memory.0 as f64
        };
        cpu_frac.max(mem_frac)
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            cpu: Cpu(self.cpu.0 + rhs.cpu.0),
            memory: Memory(self.memory.0 + rhs.memory.0),
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;
    fn sub(self, rhs: Resources) -> Resources {
        self.saturating_sub(&rhs)
    }
}

impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu={} mem={}", self.cpu, self.memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_parse_and_display() {
        assert_eq!(Cpu::parse("2"), Some(Cpu::cores(2)));
        assert_eq!(Cpu::parse("2.5"), Some(Cpu(2500)));
        assert_eq!(Cpu::parse("250m"), Some(Cpu(250)));
        assert_eq!(Cpu::parse("x"), None);
        assert_eq!(Cpu::parse("-1"), None);
        assert_eq!(Cpu::cores(4).to_string(), "4");
        assert_eq!(Cpu(1500).to_string(), "1500m");
    }

    #[test]
    fn memory_parse_units() {
        assert_eq!(Memory::parse("4Gi"), Some(Memory::gib(4)));
        assert_eq!(Memory::parse("512Mi"), Some(Memory::mib(512)));
        assert_eq!(Memory::parse("4G"), Some(Memory(4_000_000_000)));
        assert_eq!(Memory::parse("4"), Some(Memory::gib(4)), "bare number = GB per paper");
        assert_eq!(Memory::parse("2000000000"), Some(Memory(2_000_000_000)), "big bare number = bytes");
        assert_eq!(Memory::parse("junk"), None);
    }

    #[test]
    fn memory_display() {
        assert_eq!(Memory::gib(6).to_string(), "6Gi");
        assert_eq!(Memory::mib(512).to_string(), "512Mi");
        assert_eq!(Memory(1536).to_string(), "1536");
    }

    #[test]
    fn fits_and_subtract() {
        let node = Resources::new(8, 32);
        let req = Resources::new(4, 16);
        assert!(req.fits_in(&node));
        let left = node - req;
        assert_eq!(left, Resources::new(4, 16));
        assert!(req.fits_in(&left));
        let too_big = Resources::new(16, 1);
        assert!(!too_big.fits_in(&node));
        // Saturation.
        assert_eq!(req - node, Resources::ZERO);
    }

    #[test]
    fn accumulate() {
        let mut total = Resources::ZERO;
        total += Resources::new(2, 4);
        total += Resources::new(1, 2);
        assert_eq!(total, Resources::new(3, 6));
        total -= Resources::new(1, 1);
        assert_eq!(total, Resources {
            cpu: Cpu::cores(2),
            memory: Memory::gib(5)
        });
    }

    #[test]
    fn dominant_utilisation() {
        let cap = Resources::new(10, 10);
        let use_cpu_heavy = Resources::new(8, 2);
        assert!((use_cpu_heavy.dominant_utilisation(&cap) - 0.8).abs() < 1e-9);
        let use_mem_heavy = Resources::new(1, 9);
        assert!((use_mem_heavy.dominant_utilisation(&cap) - 0.9).abs() < 1e-9);
        assert_eq!(Resources::ZERO.dominant_utilisation(&Resources::ZERO), 0.0);
    }
}
