//! Pods: the smallest execution unit, plus the simulated workload model.

use lidc_simcore::time::{SimDuration, SimTime};

use crate::meta::ObjectMeta;
use crate::resources::Resources;

/// What a simulated container does when it runs.
///
/// Real Kubernetes runs an image; the simulator runs a *description* whose
/// duration/outcome the creator computes up front (for LIDC compute jobs the
/// gateway derives the duration from the genomics cost model). Keeping this
/// declarative keeps `lidc-k8s` independent of the workload domain.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Run for `duration`, then succeed, optionally reporting an output
    /// artifact (key + size in bytes) for the job's status.
    Run {
        /// Virtual execution time.
        duration: SimDuration,
        /// Artifact `(identifier, bytes)` recorded on success.
        output: Option<(String, u64)>,
    },
    /// Run for `after`, then fail with `message`.
    Fail {
        /// Virtual time until the failure.
        after: SimDuration,
        /// Error message recorded in the pod/job status.
        message: String,
    },
    /// Fail `failures` times (each after `attempt_duration`), then succeed —
    /// exercises Job backoff.
    FlakyThenSucceed {
        /// Number of leading failures.
        failures: u32,
        /// Duration of every attempt, failing or succeeding.
        attempt_duration: SimDuration,
    },
    /// Run until deleted (services/daemons such as the gateway NFD pod).
    Forever,
}

impl WorkloadSpec {
    /// A fixed-duration successful run.
    pub fn run_for(duration: SimDuration) -> Self {
        WorkloadSpec::Run {
            duration,
            output: None,
        }
    }
}

/// A container within a pod.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerSpec {
    /// Container name.
    pub name: String,
    /// Image reference (informational; e.g. `ncbi/magicblast:1.6`).
    pub image: String,
    /// Resource requests (the scheduler reserves these).
    pub requests: Resources,
    /// The simulated behaviour.
    pub workload: WorkloadSpec,
}

/// Pod specification.
#[derive(Debug, Clone, PartialEq)]
pub struct PodSpec {
    /// Containers (LIDC jobs use exactly one).
    pub containers: Vec<ContainerSpec>,
    /// Optional node name constraint.
    pub node_name: Option<String>,
    /// PVC names this pod mounts.
    pub volumes: Vec<String>,
}

impl PodSpec {
    /// A single-container pod spec.
    pub fn single(container: ContainerSpec) -> Self {
        PodSpec {
            containers: vec![container],
            node_name: None,
            volumes: Vec::new(),
        }
    }

    /// Total resource requests across containers.
    pub fn total_requests(&self) -> Resources {
        self.containers
            .iter()
            .fold(Resources::ZERO, |acc, c| acc + c.requests)
    }
}

/// Pod lifecycle phase (Kubernetes semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PodPhase {
    /// Accepted but not yet scheduled/started.
    Pending,
    /// Executing on a node.
    Running,
    /// All containers finished successfully.
    Succeeded,
    /// A container failed.
    Failed,
}

/// Pod runtime status.
#[derive(Debug, Clone, PartialEq)]
pub struct PodStatus {
    /// Phase.
    pub phase: PodPhase,
    /// Node the pod is bound to.
    pub node: Option<String>,
    /// Synthetic pod IP once running.
    pub ip: Option<String>,
    /// When it started running.
    pub started_at: Option<SimTime>,
    /// When it reached a terminal phase.
    pub finished_at: Option<SimTime>,
    /// Failure or progress message.
    pub message: String,
    /// Restart count (failed attempts executed in place).
    pub restarts: u32,
    /// Output artifact reported by a successful `Run` workload.
    pub output: Option<(String, u64)>,
}

impl Default for PodStatus {
    fn default() -> Self {
        PodStatus {
            phase: PodPhase::Pending,
            node: None,
            ip: None,
            started_at: None,
            finished_at: None,
            message: String::new(),
            restarts: 0,
            output: None,
        }
    }
}

/// A pod: spec + status.
#[derive(Debug, Clone, PartialEq)]
pub struct Pod {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Specification.
    pub spec: PodSpec,
    /// Runtime status.
    pub status: PodStatus,
}

impl Pod {
    /// A pending pod.
    pub fn new(meta: ObjectMeta, spec: PodSpec) -> Self {
        Pod {
            meta,
            spec,
            status: PodStatus::default(),
        }
    }

    /// True when the pod is in a terminal phase.
    pub fn is_finished(&self) -> bool {
        matches!(self.status.phase, PodPhase::Succeeded | PodPhase::Failed)
    }

    /// True while the pod holds node resources (scheduled and not finished).
    pub fn holds_resources(&self) -> bool {
        self.status.node.is_some() && !self.is_finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn container(cores: u64, gib: u64) -> ContainerSpec {
        ContainerSpec {
            name: "main".into(),
            image: "test:latest".into(),
            requests: Resources::new(cores, gib),
            workload: WorkloadSpec::run_for(SimDuration::from_secs(1)),
        }
    }

    #[test]
    fn total_requests_sums_containers() {
        let spec = PodSpec {
            containers: vec![container(1, 2), container(2, 3)],
            node_name: None,
            volumes: vec![],
        };
        assert_eq!(spec.total_requests(), Resources::new(3, 5));
    }

    #[test]
    fn lifecycle_predicates() {
        let mut pod = Pod::new(ObjectMeta::named("p"), PodSpec::single(container(1, 1)));
        assert_eq!(pod.status.phase, PodPhase::Pending);
        assert!(!pod.is_finished());
        assert!(!pod.holds_resources(), "pending pods hold nothing");
        pod.status.node = Some("n1".into());
        pod.status.phase = PodPhase::Running;
        assert!(pod.holds_resources());
        pod.status.phase = PodPhase::Succeeded;
        assert!(pod.is_finished());
        assert!(!pod.holds_resources(), "finished pods release resources");
    }
}
