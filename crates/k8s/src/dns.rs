//! CoreDNS-style in-cluster name resolution.
//!
//! The paper's §V-A enables the MicroK8s DNS add-on so services resolve as
//! `<service>.<namespace>.svc.cluster.local`; LIDC maps NDN names onto these
//! service names. This module resolves such DNS names against the API
//! server, returning the ClusterIP and (optionally) the ready endpoints.

use crate::apiserver::ApiServer;
use crate::meta::ObjectKey;

/// A successful resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// The service's stable virtual IP.
    pub cluster_ip: String,
    /// Ready pod IPs backing the service (may be empty).
    pub endpoints: Vec<String>,
    /// The service key that matched.
    pub service: ObjectKey,
}

/// Errors from [`resolve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsError {
    /// The name is not of the form `<svc>.<ns>.svc.cluster.local`.
    MalformedName(String),
    /// No such service.
    NxDomain(String),
}

impl std::fmt::Display for DnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnsError::MalformedName(n) => write!(f, "malformed cluster DNS name: {n}"),
            DnsError::NxDomain(n) => write!(f, "NXDOMAIN: {n}"),
        }
    }
}

impl std::error::Error for DnsError {}

/// Resolve an in-cluster DNS name (`<svc>.<ns>.svc.cluster.local`).
pub fn resolve(api: &ApiServer, dns_name: &str) -> Result<Resolution, DnsError> {
    let key = parse_service_dns(dns_name)
        .ok_or_else(|| DnsError::MalformedName(dns_name.to_owned()))?;
    let svc = api
        .services
        .get(&key)
        .ok_or_else(|| DnsError::NxDomain(dns_name.to_owned()))?;
    Ok(Resolution {
        cluster_ip: svc.status.cluster_ip.clone(),
        endpoints: svc.status.endpoints.clone(),
        service: key,
    })
}

/// Parse `<svc>.<ns>.svc.cluster.local` into an [`ObjectKey`].
pub fn parse_service_dns(dns_name: &str) -> Option<ObjectKey> {
    let rest = dns_name.strip_suffix(".svc.cluster.local")?;
    let (svc, ns) = rest.split_once('.')?;
    
    
    if svc.is_empty() || ns.is_empty() || ns.contains('.') {
        return None;
    }
    Some(ObjectKey::new(ns, svc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Service;
    use lidc_simcore::time::SimTime;

    #[test]
    fn parse_valid_and_invalid() {
        assert_eq!(
            parse_service_dns("dl-nfd.ndnk8s.svc.cluster.local"),
            Some(ObjectKey::new("ndnk8s", "dl-nfd"))
        );
        assert_eq!(parse_service_dns("dl-nfd.ndnk8s"), None);
        assert_eq!(parse_service_dns("a.b.c.svc.cluster.local"), None);
        assert_eq!(parse_service_dns(".ns.svc.cluster.local"), None);
        assert_eq!(parse_service_dns("svc..svc.cluster.local"), None);
    }

    #[test]
    fn resolve_returns_cluster_ip_and_endpoints() {
        let mut api = ApiServer::new("c");
        api.create_service(Service::cluster_ip("dl-nfd", "nfd", 6363), SimTime::ZERO)
            .unwrap();
        let r = resolve(&api, "dl-nfd.ndnk8s.svc.cluster.local").unwrap();
        assert_eq!(r.cluster_ip, "10.96.0.1");
        assert!(r.endpoints.is_empty(), "no pods yet");
        assert_eq!(r.service, ObjectKey::new("ndnk8s", "dl-nfd"));
    }

    #[test]
    fn resolve_errors() {
        let api = ApiServer::new("c");
        assert!(matches!(
            resolve(&api, "not-a-dns-name"),
            Err(DnsError::MalformedName(_))
        ));
        assert!(matches!(
            resolve(&api, "ghost.ndnk8s.svc.cluster.local"),
            Err(DnsError::NxDomain(_))
        ));
    }
}
