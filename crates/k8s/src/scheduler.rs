//! The pod scheduler: filter + score, never overcommitting a node.
//!
//! Mirrors kube-scheduler's two-phase design. Filtering removes nodes that
//! are not ready, violate an explicit `node_name` constraint, or lack free
//! resources for the pod's requests. Scoring ranks the survivors by the
//! configured policy. Binding writes `status.node`.

use crate::apiserver::ApiServer;
use crate::meta::ObjectKey;
use crate::resources::Resources;
use lidc_simcore::time::SimTime;

/// Node-scoring policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScorePolicy {
    /// Prefer the emptiest node (spreads load; kube-scheduler default-ish).
    #[default]
    LeastAllocated,
    /// Prefer the fullest node that still fits (bin packing).
    MostAllocated,
    /// Prefer the node whose cpu/memory utilisation stays most balanced.
    Balanced,
}

/// The scheduler.
#[derive(Debug, Default, Clone)]
pub struct Scheduler {
    /// Scoring policy.
    pub policy: ScorePolicy,
}

impl Scheduler {
    /// A scheduler with the given policy.
    pub fn new(policy: ScorePolicy) -> Self {
        Scheduler { policy }
    }

    /// Bind every schedulable pending pod. Returns the bound pod keys.
    ///
    /// Per-node usage comes from the API server's **persistent** usage
    /// index ([`ApiServer::node_usage`]), which [`ApiServer::bind_pod`]
    /// updates as each pod binds, and the work list comes from its
    /// **pending-pod** index ([`ApiServer::pending_pods`], already in
    /// creation-uid order) — no per-pass O(pods) sweep remains anywhere in
    /// this function.
    pub fn schedule(&self, api: &mut ApiServer, now: SimTime) -> Vec<ObjectKey> {
        let pending: Vec<(ObjectKey, Resources, Option<String>)> = api
            .pending_pods()
            .map(|k| {
                // lidc-lint: allow(panic-path) reason="pending_pods yields keys of pods present in api.pods"
                let p = &api.pods[k];
                (k.clone(), p.spec.total_requests(), p.spec.node_name.clone())
            })
            .collect();
        if pending.is_empty() {
            return Vec::new();
        }

        let mut bound = Vec::new();
        for (key, requests, node_constraint) in pending {
            let Some(node) = self.pick_node(api, &requests, node_constraint.as_deref()) else {
                continue; // stays pending; retried next reconcile
            };
            // bind_pod charges the usage index, so the next pick sees it.
            if api.bind_pod(&key, &node, now) {
                bound.push(key);
            }
        }
        bound
    }

    fn pick_node(
        &self,
        api: &ApiServer,
        requests: &Resources,
        constraint: Option<&str>,
    ) -> Option<String> {
        let candidates = api
            .nodes
            .values()
            .filter(|n| n.ready && !n.cordoned)
            .filter(|n| constraint.is_none_or(|c| c == n.meta.name))
            .filter(|n| {
                let free = n.allocatable.saturating_sub(&api.node_usage(&n.meta.name));
                requests.fits_in(&free)
            });
        // Deterministic tie-break by node name via max_by with name-reversed
        // comparison: take the best score, then lexicographically smallest.
        let mut best: Option<(f64, &str)> = None;
        for n in candidates {
            let score = self.score(api, &n.meta.name, requests);
            let better = match best {
                None => true,
                Some((bs, bn)) => {
                    score > bs + 1e-12 || ((score - bs).abs() <= 1e-12 && n.meta.name.as_str() < bn)
                }
            };
            if better {
                best = Some((score, &n.meta.name));
            }
        }
        best.map(|(_, name)| name.to_owned())
    }

    /// Higher is better.
    fn score(&self, api: &ApiServer, node: &str, requests: &Resources) -> f64 {
        // lidc-lint: allow(panic-path) reason="score is only called with node names drawn from api.nodes iteration in schedule()"
        let allocatable = api.nodes[node].allocatable;
        let used_after = api.node_usage(node) + *requests;
        let util = used_after.dominant_utilisation(&allocatable);
        match self.policy {
            ScorePolicy::LeastAllocated => 1.0 - util,
            ScorePolicy::MostAllocated => util,
            ScorePolicy::Balanced => {
                let cpu = if allocatable.cpu.0 == 0 {
                    0.0
                } else {
                    used_after.cpu.0 as f64 / allocatable.cpu.0 as f64
                };
                let mem = if allocatable.memory.0 == 0 {
                    0.0
                } else {
                    used_after.memory.0 as f64 / allocatable.memory.0 as f64
                };
                1.0 - (cpu - mem).abs()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ObjectMeta;
    use crate::node::Node;
    use crate::pod::{ContainerSpec, Pod, PodPhase, PodSpec, WorkloadSpec};
    use lidc_simcore::time::SimDuration;

    const T0: SimTime = SimTime::ZERO;

    fn api_with_nodes(nodes: &[(&str, u64, u64)]) -> ApiServer {
        let mut api = ApiServer::new("test");
        for (name, cores, gib) in nodes {
            api.add_node(Node::new(*name, Resources::new(*cores, *gib)), T0);
        }
        api
    }

    fn make_pod(name: &str, cores: u64, gib: u64) -> Pod {
        Pod::new(
            ObjectMeta::named(name),
            PodSpec::single(ContainerSpec {
                name: "c".into(),
                image: "i".into(),
                requests: Resources::new(cores, gib),
                workload: WorkloadSpec::run_for(SimDuration::from_secs(1)),
            }),
        )
    }

    #[test]
    fn binds_to_fitting_node_only() {
        let mut api = api_with_nodes(&[("small", 1, 1), ("big", 8, 16)]);
        api.create_pod(make_pod("p", 4, 8), T0).unwrap();
        let bound = Scheduler::default().schedule(&mut api, T0);
        assert_eq!(bound.len(), 1);
        let pod = &api.pods[&bound[0]];
        assert_eq!(pod.status.node.as_deref(), Some("big"));
        assert!(pod.status.ip.is_some());
    }

    #[test]
    fn unschedulable_pod_stays_pending() {
        let mut api = api_with_nodes(&[("n", 2, 2)]);
        api.create_pod(make_pod("too-big", 4, 4), T0).unwrap();
        let bound = Scheduler::default().schedule(&mut api, T0);
        assert!(bound.is_empty());
        let pod = api.pods.values().next().unwrap();
        assert_eq!(pod.status.phase, PodPhase::Pending);
        assert!(pod.status.node.is_none());
    }

    #[test]
    fn never_overcommits() {
        let mut api = api_with_nodes(&[("n1", 4, 8), ("n2", 4, 8)]);
        for i in 0..10 {
            api.create_pod(make_pod(&format!("p{i}"), 2, 4), T0).unwrap();
        }
        // Mark bound pods running so they hold resources.
        let scheduler = Scheduler::default();
        let bound = scheduler.schedule(&mut api, T0);
        assert_eq!(bound.len(), 4, "2 fit per node");
        for key in &bound {
            let uid = api.pods[key].meta.uid;
            api.set_pod_phase(uid, PodPhase::Running);
        }
        api.debug_check_pod_indexes().unwrap();
        for node in ["n1", "n2"] {
            let used = api.node_usage(node);
            assert!(
                used.fits_in(&api.nodes[node].allocatable),
                "{node} overcommitted: {used}"
            );
        }
        // Releasing one pod frees space for exactly one more.
        let first = bound[0].clone();
        let uid = api.pods[&first].meta.uid;
        api.set_pod_phase(uid, PodPhase::Succeeded);
        let more = scheduler.schedule(&mut api, T0);
        assert_eq!(more.len(), 1);
    }

    #[test]
    fn node_name_constraint_respected() {
        let mut api = api_with_nodes(&[("a", 8, 8), ("b", 8, 8)]);
        let mut p = make_pod("pinned", 1, 1);
        p.spec.node_name = Some("b".into());
        api.create_pod(p, T0).unwrap();
        let bound = Scheduler::default().schedule(&mut api, T0);
        assert_eq!(api.pods[&bound[0]].status.node.as_deref(), Some("b"));
    }

    #[test]
    fn not_ready_nodes_excluded() {
        let mut api = api_with_nodes(&[("a", 8, 8)]);
        api.nodes.get_mut("a").unwrap().ready = false;
        api.create_pod(make_pod("p", 1, 1), T0).unwrap();
        assert!(Scheduler::default().schedule(&mut api, T0).is_empty());
    }

    #[test]
    fn cordoned_nodes_excluded_until_uncordoned() {
        let mut api = api_with_nodes(&[("a", 8, 8), ("b", 8, 8)]);
        // "a" wins the deterministic tie-break, so cordoning it must move
        // the pod to "b"; cordoning both must leave the pod pending.
        api.set_node_cordoned("a", true);
        api.create_pod(make_pod("p1", 1, 1), T0).unwrap();
        let bound = Scheduler::default().schedule(&mut api, T0);
        assert_eq!(api.pods[&bound[0]].status.node.as_deref(), Some("b"));
        api.set_node_cordoned("b", true);
        api.create_pod(make_pod("p2", 1, 1), T0).unwrap();
        assert!(Scheduler::default().schedule(&mut api, T0).is_empty());
        api.debug_check_pod_indexes().unwrap();
        api.set_node_cordoned("a", false);
        let bound = Scheduler::default().schedule(&mut api, T0);
        assert_eq!(api.pods[&bound[0]].status.node.as_deref(), Some("a"));
    }

    #[test]
    fn least_allocated_spreads() {
        let mut api = api_with_nodes(&[("a", 8, 8), ("b", 8, 8)]);
        api.create_pod(make_pod("p1", 2, 2), T0).unwrap();
        api.create_pod(make_pod("p2", 2, 2), T0).unwrap();
        let s = Scheduler::new(ScorePolicy::LeastAllocated);
        let bound = s.schedule(&mut api, T0);
        for key in &bound {
            let uid = api.pods[key].meta.uid;
            api.set_pod_phase(uid, PodPhase::Running);
        }
        let nodes: Vec<_> = bound
            .iter()
            .map(|k| api.pods[k].status.node.clone().unwrap())
            .collect();
        assert_ne!(nodes[0], nodes[1], "spread across both nodes");
    }

    #[test]
    fn most_allocated_packs() {
        let mut api = api_with_nodes(&[("a", 8, 8), ("b", 8, 8)]);
        // Pre-load node a a bit.
        let mut warm = make_pod("warm", 2, 2);
        warm.status.node = Some("a".into());
        warm.status.phase = PodPhase::Running;
        api.create_pod(warm, T0).unwrap();
        api.create_pod(make_pod("p1", 2, 2), T0).unwrap();
        let s = Scheduler::new(ScorePolicy::MostAllocated);
        let bound = s.schedule(&mut api, T0);
        assert_eq!(api.pods[&bound[0]].status.node.as_deref(), Some("a"), "packs onto warmer node");
    }

    #[test]
    fn deterministic_tie_break_by_name() {
        let mut api = api_with_nodes(&[("zeta", 4, 4), ("alpha", 4, 4)]);
        api.create_pod(make_pod("p", 1, 1), T0).unwrap();
        let bound = Scheduler::default().schedule(&mut api, T0);
        assert_eq!(api.pods[&bound[0]].status.node.as_deref(), Some("alpha"));
    }

    #[test]
    fn random_workload_never_overcommits_property() {
        use lidc_simcore::rng::DetRng;
        let mut rng = DetRng::new(0x5EED);
        for trial in 0..30 {
            let mut api = api_with_nodes(&[("a", 6, 12), ("b", 4, 8), ("c", 2, 4)]);
            let s = Scheduler::default();
            for i in 0..40 {
                let cores = rng.next_below(4) + 1;
                let gib = rng.next_below(6) + 1;
                api.create_pod(make_pod(&format!("t{trial}-p{i}"), cores, gib), T0)
                    .unwrap();
                let bound = s.schedule(&mut api, T0);
                for key in &bound {
                    let uid = api.pods[key].meta.uid;
                    api.set_pod_phase(uid, PodPhase::Running);
                }
                // Occasionally finish a random running pod.
                if rng.next_bool(0.3) {
                    if let Some(k) = api
                        .pods
                        .iter()
                        .filter(|(_, p)| p.status.phase == PodPhase::Running)
                        .map(|(k, _)| k.clone())
                        .next()
                    {
                        let uid = api.pods[&k].meta.uid;
                        api.set_pod_phase(uid, PodPhase::Succeeded);
                    }
                }
                api.debug_check_pod_indexes().unwrap();
                for node in ["a", "b", "c"] {
                    assert!(
                        api.node_usage(node).fits_in(&api.nodes[node].allocatable),
                        "overcommit on {node}"
                    );
                }
            }
        }
    }
}
