//! # lidc-k8s — a Kubernetes control-plane simulator
//!
//! The MicroK8s substitution from DESIGN.md §2: everything LIDC touches in
//! Kubernetes, built from scratch on the `lidc-simcore` event loop:
//!
//! * [`meta`] / [`resources`] — object metadata, labels/selectors, CPU and
//!   memory quantities.
//! * [`node`] / [`pod`] / [`service`] / [`job`] / [`deployment`] /
//!   [`storage`] — the API objects (pods carry a simulated
//!   [`pod::WorkloadSpec`] instead of a container image).
//! * [`apiserver`] — the typed object store shared between controllers and
//!   the LIDC gateway, with an append-only event log.
//! * [`scheduler`] — filter/score pod placement that never overcommits.
//! * [`dns`] — CoreDNS-style `<svc>.<ns>.svc.cluster.local` resolution.
//! * [`cluster`] — the control-plane actor running all controllers (PVC
//!   binder, HPA, Deployment, ReplicaSet, Job, scheduler, endpoints) plus
//!   the [`cluster::Cluster`] facade.
//!
//! ## Example: run a job to completion
//!
//! ```
//! use lidc_k8s::prelude::*;
//! use lidc_simcore::prelude::*;
//!
//! let mut sim = Sim::new(0);
//! let cluster = Cluster::spawn(&mut sim, ClusterConfig::named("demo"));
//! cluster.add_node(&mut sim, Node::new("n1", Resources::new(8, 16)));
//! let spec = PodSpec::single(ContainerSpec {
//!     name: "work".into(),
//!     image: "demo:1".into(),
//!     requests: Resources::new(2, 4),
//!     workload: WorkloadSpec::run_for(SimDuration::from_secs(30)),
//! });
//! let job = cluster.create_job(&mut sim, "demo-job", spec, 0);
//! sim.run();
//! assert_eq!(cluster.job_condition(&job), Some(JobCondition::Completed));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apiserver;
pub mod cluster;
pub mod deployment;
pub mod dns;
pub mod job;
pub mod meta;
pub mod node;
pub mod pod;
pub mod resources;
pub mod scheduler;
pub mod service;
pub mod storage;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::apiserver::{ApiServer, ClusterEvent, SharedApi};
    pub use crate::cluster::{
        Cluster, ClusterActor, ClusterConfig, CordonNode, Nudge, SetHpaLoad, SetNodeReady,
    };
    pub use crate::deployment::{Deployment, Hpa, ReplicaSet};
    pub use crate::dns::{parse_service_dns, resolve};
    pub use crate::job::{Job, JobCondition, JobStatus};
    pub use crate::meta::{LabelSelector, ObjectKey, ObjectMeta, Uid, DEFAULT_NAMESPACE};
    pub use crate::node::Node;
    pub use crate::pod::{ContainerSpec, Pod, PodPhase, PodSpec, WorkloadSpec};
    pub use crate::resources::{Cpu, Memory, Resources};
    pub use crate::scheduler::{Scheduler, ScorePolicy};
    pub use crate::service::{Service, ServicePort, ServiceSpec, ServiceType};
    pub use crate::storage::{NfsExport, PersistentVolume, PersistentVolumeClaim, PvcPhase};
}
