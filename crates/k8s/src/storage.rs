//! Persistent storage: PersistentVolumes, claims, and the NFS-backed store.
//!
//! The paper mounts an NFS server into MicroK8s through a PVC and uses it as
//! the data lake's backing store (§IV, §V-B). [`NfsExport`] is the simulated
//! remote filesystem: a shared key→bytes map that both the PVC machinery and
//! the `lidc-datalake` repo wrap.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::meta::ObjectMeta;
use crate::resources::Memory;

/// A simulated NFS export: a concurrent key→bytes map with usage accounting.
/// Cheap to clone (shared).
#[derive(Debug, Clone, Default)]
pub struct NfsExport {
    // lidc-lint: allow(actor-isolation) reason="models the shared NFS mount of the paper's deployment: one filesystem visible from every cluster; the BTreeMap keeps listings canonical"
    inner: Arc<RwLock<BTreeMap<String, Bytes>>>,
}

impl NfsExport {
    /// An empty export.
    pub fn new() -> Self {
        NfsExport::default()
    }

    /// Write (or overwrite) a file.
    pub fn write(&self, path: impl Into<String>, content: impl Into<Bytes>) {
        self.inner.write().insert(path.into(), content.into());
    }

    /// Read a file.
    pub fn read(&self, path: &str) -> Option<Bytes> {
        self.inner.read().get(path).cloned()
    }

    /// Delete a file; true if it existed.
    pub fn delete(&self, path: &str) -> bool {
        self.inner.write().remove(path).is_some()
    }

    /// Whether a file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.inner.read().contains_key(path)
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.inner.read().len()
    }

    /// Total bytes stored.
    pub fn used_bytes(&self) -> u64 {
        self.inner.read().values().map(|b| b.len() as u64).sum()
    }

    /// List paths under a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.inner
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }
}

/// A PersistentVolume backed by an NFS export.
#[derive(Debug, Clone)]
pub struct PersistentVolume {
    /// Metadata (cluster-scoped: namespace is empty).
    pub meta: ObjectMeta,
    /// Capacity.
    pub capacity: Memory,
    /// Backing export.
    pub export: NfsExport,
    /// Name of the PVC bound to this volume, if any.
    pub bound_to: Option<String>,
}

impl PersistentVolume {
    /// A new unbound volume.
    pub fn new(name: impl Into<String>, capacity: Memory, export: NfsExport) -> Self {
        PersistentVolume {
            meta: ObjectMeta::named(name).in_namespace(""),
            capacity,
            export,
            bound_to: None,
        }
    }
}

/// PVC binding phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PvcPhase {
    /// Awaiting a matching volume.
    Pending,
    /// Bound to a volume.
    Bound,
}

/// A PersistentVolumeClaim.
#[derive(Debug, Clone)]
pub struct PersistentVolumeClaim {
    /// Metadata.
    pub meta: ObjectMeta,
    /// Requested capacity.
    pub request: Memory,
    /// Phase.
    pub phase: PvcPhase,
    /// Bound volume name.
    pub volume: Option<String>,
}

impl PersistentVolumeClaim {
    /// A new pending claim.
    pub fn new(name: impl Into<String>, request: Memory) -> Self {
        PersistentVolumeClaim {
            meta: ObjectMeta::named(name),
            request,
            phase: PvcPhase::Pending,
            volume: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nfs_export_read_write_delete() {
        let nfs = NfsExport::new();
        assert!(!nfs.exists("ref/human.fa"));
        nfs.write("ref/human.fa", &b"ACGT"[..]);
        assert!(nfs.exists("ref/human.fa"));
        assert_eq!(nfs.read("ref/human.fa").unwrap().as_ref(), b"ACGT");
        assert_eq!(nfs.used_bytes(), 4);
        assert!(nfs.delete("ref/human.fa"));
        assert!(!nfs.delete("ref/human.fa"));
        assert_eq!(nfs.file_count(), 0);
    }

    #[test]
    fn nfs_export_clones_share_state() {
        let a = NfsExport::new();
        let b = a.clone();
        a.write("x", &b"1"[..]);
        assert!(b.exists("x"));
    }

    #[test]
    fn nfs_list_by_prefix() {
        let nfs = NfsExport::new();
        nfs.write("sra/rice/SRR1", &b"a"[..]);
        nfs.write("sra/rice/SRR2", &b"b"[..]);
        nfs.write("sra/kidney/SRR3", &b"c"[..]);
        assert_eq!(nfs.list("sra/rice/").len(), 2);
        assert_eq!(nfs.list("sra/").len(), 3);
        assert_eq!(nfs.list("ref/").len(), 0);
        let listed = nfs.list("sra/rice/");
        assert_eq!(listed, vec!["sra/rice/SRR1".to_owned(), "sra/rice/SRR2".to_owned()]);
    }

    #[test]
    fn pvc_defaults() {
        let pvc = PersistentVolumeClaim::new("datalake-pvc", Memory::gib(100));
        assert_eq!(pvc.phase, PvcPhase::Pending);
        assert!(pvc.volume.is_none());
        let pv = PersistentVolume::new("pv-1", Memory::gib(500), NfsExport::new());
        assert!(pv.bound_to.is_none());
    }
}
