//! Property-based tests for the simulation core: time and byte-size codecs,
//! histogram ordering, RNG determinism, and engine delivery-order
//! invariants.

use lidc_simcore::bytesize::{format_bytes, parse_bytes};
use lidc_simcore::engine::{Actor, ActorId, Ctx, Msg, Sim};
use lidc_simcore::metrics::Histogram;
use lidc_simcore::rng::DetRng;
use lidc_simcore::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    // --- time ---------------------------------------------------------------

    #[test]
    fn duration_display_parse_round_trip(nanos in 0u64..u64::MAX / 4) {
        let d = SimDuration::from_nanos(nanos);
        let shown = d.to_string();
        let parsed = SimDuration::parse(&shown).unwrap();
        // Display rounds to its unit's printed precision: whole seconds at
        // minute scale and above, three decimals below that. The round trip
        // must be exact within that quantum.
        let quantum = if nanos >= 60_000_000_000 {
            SimDuration::from_millis(500)
        } else if nanos >= 1_000_000_000 {
            SimDuration::from_micros(501)
        } else if nanos >= 1_000_000 {
            SimDuration::from_nanos(501)
        } else {
            SimDuration::from_nanos(1)
        };
        let err = if parsed > d { parsed - d } else { d - parsed };
        prop_assert!(
            err <= quantum,
            "{nanos}ns -> {shown} -> {parsed} (err {err})"
        );
    }

    #[test]
    fn duration_arithmetic_is_consistent(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!(da + db, SimDuration::from_nanos(a + b));
        prop_assert_eq!((da + db).saturating_sub(db), da);
        prop_assert_eq!(da.saturating_sub(da + db), SimDuration::ZERO);
        let t = SimTime::ZERO + da;
        prop_assert_eq!(t.since(SimTime::ZERO), da);
        prop_assert_eq!((t + db).since(t), db);
    }

    #[test]
    fn duration_scaling(a in 0u64..1 << 30, k in 1u64..16) {
        let d = SimDuration::from_nanos(a);
        prop_assert_eq!(d * k, SimDuration::from_nanos(a * k));
        prop_assert_eq!((d * k) / k, d);
    }

    // --- bytesize -------------------------------------------------------------

    #[test]
    fn format_bytes_parses_back_within_rounding(n in 0u64..1 << 50) {
        let shown = format_bytes(n);
        let parsed = parse_bytes(&shown).unwrap().0;
        // format_bytes prints 3 significant decimals per unit; accept the
        // corresponding relative error.
        let err = parsed.abs_diff(n) as f64;
        prop_assert!(
            err <= (n as f64) * 0.005 + 1.0,
            "{n} -> {shown} -> {parsed}"
        );
    }

    // --- histogram -------------------------------------------------------------

    #[test]
    fn histogram_percentiles_are_monotone_and_bounded(
        values in proptest::collection::vec(0.0f64..1e9, 1..200),
    ) {
        let mut h = Histogram::new();
        for v in &values {
            h.record(*v);
        }
        let min = h.min();
        let max = h.max();
        let p25 = h.percentile(25.0);
        let p50 = h.percentile(50.0);
        let p95 = h.percentile(95.0);
        prop_assert!(min <= p25 && p25 <= p50 && p50 <= p95 && p95 <= max);
        prop_assert!(h.mean() >= min && h.mean() <= max);
        prop_assert_eq!(h.count(), values.len());
    }

    // --- rng ---------------------------------------------------------------------

    #[test]
    fn rng_streams_deterministic_and_derive_independent(seed in any::<u64>()) {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        // Derived streams differ from the parent and from each other.
        let mut d1 = DetRng::new(seed).derive(1);
        let mut d2 = DetRng::new(seed).derive(2);
        let same = (0..64).filter(|_| d1.next_u64() == d2.next_u64()).count();
        prop_assert!(same < 8, "derived streams look identical");
    }

    #[test]
    fn rng_next_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = DetRng::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.next_below(n) < n);
        }
    }

    // --- engine ------------------------------------------------------------------

    #[test]
    fn engine_delivers_in_nondecreasing_time_order(
        seed in any::<u64>(),
        delays in proptest::collection::vec(0u64..10_000, 1..50),
    ) {
        struct Recorder {
            stamps: Vec<SimTime>,
        }
        struct Tick;
        impl Actor for Recorder {
            fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
                if msg.downcast::<Tick>().is_ok() {
                    self.stamps.push(ctx.now());
                }
            }
        }
        let mut sim = Sim::new(seed);
        let r: ActorId = sim.spawn("rec", Recorder { stamps: vec![] });
        let n = delays.len();
        for d in &delays {
            sim.send_after(SimDuration::from_micros(*d), r, Tick);
        }
        sim.run();
        let stamps = &sim.actor::<Recorder>(r).unwrap().stamps;
        prop_assert_eq!(stamps.len(), n);
        prop_assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
        let mut expect: Vec<u64> = delays;
        expect.sort_unstable();
        let got: Vec<u64> = stamps
            .iter()
            .map(|t| t.since(SimTime::ZERO).as_nanos() / 1_000)
            .collect();
        prop_assert_eq!(got, expect);
    }
}
