//! Property test for the metrics-merge contract: folding the same set of
//! per-worker `Metrics` buffers in *any* order yields identical readouts —
//! counter tables, histogram summaries, and percentiles. This is the
//! algebraic fact the engine's parallel dispatch leans on when it merges
//! worker buffers in whatever order the join produces.
//!
//! Samples are integer-valued (exactly representable), so sums are exact
//! and "identical" means bit-identical, not approximately equal.

use lidc_simcore::metrics::Metrics;
use lidc_simcore::rng::DetRng;
use proptest::prelude::*;

/// One write against a metrics buffer.
#[derive(Debug, Clone)]
enum Op {
    Incr(usize, u64),
    SetMax(usize, u64),
    Record(usize, u32),
}

// Disjoint name pools per write kind: a key is either a running counter,
// a high-water mark, or a histogram — mixing `incr` and `set_max` on one
// name has no defined merge semantics and never occurs in the system.
const CTR_NAMES: &[&str] = &["ndn.rx", "job.completed"];
const MAX_NAMES: &[&str] = &["disp.batch_max", "cs.bytes_peak"];
const HIST_NAMES: &[&str] = &["job.latency", "ndn.rtt"];

prop_compose! {
    fn op_strategy()(kind in 0u8..3, n in 0usize..2, v in 0u64..1_000_000) -> Op {
        match kind {
            0 => Op::Incr(n, v % 1_000),
            1 => Op::SetMax(n, v),
            _ => Op::Record(n, v as u32),
        }
    }
}

fn apply(ops: &[Op]) -> Metrics {
    let mut m = Metrics::new();
    for op in ops {
        match *op {
            Op::Incr(n, v) => m.incr(CTR_NAMES[n], v),
            Op::SetMax(n, v) => m.set_max(MAX_NAMES[n], v),
            Op::Record(n, v) => m.record(HIST_NAMES[n], f64::from(v)),
        }
    }
    m
}

/// Everything observable about a merged registry, rendered to strings so
/// the comparison covers the exact readout paths reports use.
fn readout(m: &mut Metrics) -> Vec<String> {
    let mut out = vec![m.counters_table("counters", "").to_markdown()];
    let names: Vec<String> = m.histogram_names().map(str::to_owned).collect();
    for name in names {
        let h = m.histogram_mut(&name).expect("present");
        out.push(format!("{name}: {}", h.summary()));
        out.push(format!("{name}.p25={}", h.percentile(25.0)));
    }
    out
}

proptest! {
    #[test]
    fn merge_readouts_are_permutation_invariant(
        buffers in proptest::collection::vec(proptest::collection::vec(op_strategy(), 0..30), 1..8),
        perm_seed in any::<u64>(),
    ) {
        // Merge in the given order…
        let mut in_order = Metrics::new();
        for ops in &buffers {
            in_order.merge(apply(ops));
        }

        // …and in a seeded Fisher–Yates shuffle of the same buffers.
        let mut idx: Vec<usize> = (0..buffers.len()).collect();
        let mut rng = DetRng::new(perm_seed);
        for i in (1..idx.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            idx.swap(i, j);
        }
        let mut shuffled = Metrics::new();
        for &i in &idx {
            shuffled.merge(apply(&buffers[i]));
        }

        prop_assert_eq!(readout(&mut in_order), readout(&mut shuffled));
    }

    #[test]
    fn merge_equals_direct_recording(
        buffers in proptest::collection::vec(proptest::collection::vec(op_strategy(), 0..30), 1..8),
    ) {
        // Merging per-worker buffers must equal having recorded every op
        // into one registry, with set_max folded as a running maximum.
        let mut merged = Metrics::new();
        for ops in &buffers {
            merged.merge(apply(ops));
        }
        let all: Vec<Op> = buffers.concat();
        let mut direct = apply(&all);
        prop_assert_eq!(readout(&mut merged), readout(&mut direct));
    }
}
