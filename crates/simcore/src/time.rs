//! Virtual time: instants and durations with integer-nanosecond resolution.
//!
//! The paper reports run times like `8h9m50s` (Table I); [`SimDuration`]'s
//! `Display` implementation reproduces exactly that format so the regenerated
//! tables are directly comparable, and [`SimDuration::parse`] reads the
//! paper's values back for assertions in tests.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, measured in nanoseconds since simulation start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

const NANOS_PER_MICRO: u64 = 1_000;
const NANOS_PER_MILLI: u64 = 1_000_000;
const NANOS_PER_SEC: u64 = 1_000_000_000;
const NANOS_PER_MIN: u64 = 60 * NANOS_PER_SEC;
const NANOS_PER_HOUR: u64 = 60 * NANOS_PER_MIN;

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// The far-future sentinel: no representable instant is later. Used by
    /// the horizon scheduler as the "no constraint" bound.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since simulation start.
    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }

    /// The immediately following instant (one nanosecond later), saturating
    /// at [`SimTime::MAX`]. The horizon scheduler uses this to turn an
    /// inclusive deadline into an exclusive window bound.
    pub const fn next_instant(self) -> SimTime {
        SimTime(self.0.saturating_add(1))
    }

    /// Add a duration, saturating at [`SimTime::MAX`] instead of panicking
    /// (lookahead arithmetic routinely adds to far-future horizons).
    pub const fn saturating_add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Elapsed time since the origin.
    pub fn elapsed(self) -> SimDuration {
        SimDuration(self.0)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(n: u64) -> Self {
        SimDuration(n)
    }

    /// Construct from microseconds.
    pub const fn from_micros(n: u64) -> Self {
        SimDuration(n * NANOS_PER_MICRO)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(n: u64) -> Self {
        SimDuration(n * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(n: u64) -> Self {
        SimDuration(n * NANOS_PER_SEC)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(n: u64) -> Self {
        SimDuration(n * NANOS_PER_MIN)
    }

    /// Construct from whole hours.
    pub const fn from_hours(n: u64) -> Self {
        SimDuration(n * NANOS_PER_HOUR)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    /// Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Multiply by a non-negative factor, rounding to the nearest nanosecond.
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> Self {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Parse a paper-style duration string such as `8h9m50s`, `9m50s`,
    /// `50s`, `120ms`, `5us`, or `17ns`. Units may be combined in descending
    /// order; every unit is optional but at least one must be present.
    pub fn parse(s: &str) -> Result<SimDuration, DurationParseError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(DurationParseError::Empty);
        }
        let mut total: u64 = 0;
        let mut rest = s;
        let mut matched = false;
        // Units must be consumed in descending order of magnitude so that
        // e.g. the `m` of `ms` is not mistaken for minutes.
        let units: [(&str, u64); 6] = [
            ("h", NANOS_PER_HOUR),
            ("ms", NANOS_PER_MILLI),
            ("m", NANOS_PER_MIN),
            ("us", NANOS_PER_MICRO),
            ("ns", 1),
            ("s", NANOS_PER_SEC),
        ];
        'outer: while !rest.is_empty() {
            let digits_end = rest
                .find(|c: char| !c.is_ascii_digit() && c != '.')
                .ok_or(DurationParseError::MissingUnit)?;
            if digits_end == 0 {
                return Err(DurationParseError::BadNumber);
            }
            let (num_str, tail) = rest.split_at(digits_end);
            let value: f64 = num_str.parse().map_err(|_| DurationParseError::BadNumber)?;
            for (unit, nanos) in units {
                if let Some(t) = tail.strip_prefix(unit) {
                    // `m` would also strip the front of `ms`; the ordering of
                    // the table above guarantees `ms` is tried first.
                    total = total
                        .checked_add((value * nanos as f64).round() as u64)
                        .ok_or(DurationParseError::Overflow)?;
                    rest = t;
                    matched = true;
                    continue 'outer;
                }
            }
            return Err(DurationParseError::MissingUnit);
        }
        if matched {
            Ok(SimDuration(total))
        } else {
            Err(DurationParseError::Empty)
        }
    }
}

/// Error returned by [`SimDuration::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurationParseError {
    /// The input contained no duration components.
    Empty,
    /// A numeric component could not be parsed.
    BadNumber,
    /// A numeric component was not followed by a recognised unit.
    MissingUnit,
    /// The total duration overflowed the nanosecond counter.
    Overflow,
}

impl fmt::Display for DurationParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurationParseError::Empty => write!(f, "empty duration string"),
            DurationParseError::BadNumber => write!(f, "malformed number in duration"),
            DurationParseError::MissingUnit => write!(f, "missing or unknown duration unit"),
            DurationParseError::Overflow => write!(f, "duration overflows u64 nanoseconds"),
        }
    }
}

impl std::error::Error for DurationParseError {}

impl fmt::Display for SimDuration {
    /// Formats like the paper's Table I: `8h9m50s` for hour-scale values,
    /// then `9m50s`, `1.234s`, `12.345ms`, `6.789us`, `17ns` as the
    /// magnitude shrinks.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        if n >= NANOS_PER_HOUR {
            // Round to the nearest second, as the paper does.
            let total_secs = (n + NANOS_PER_SEC / 2) / NANOS_PER_SEC;
            let h = total_secs / 3600;
            let m = (total_secs % 3600) / 60;
            let s = total_secs % 60;
            write!(f, "{h}h{m}m{s}s")
        } else if n >= NANOS_PER_MIN {
            let total_secs = (n + NANOS_PER_SEC / 2) / NANOS_PER_SEC;
            let m = total_secs / 60;
            let s = total_secs % 60;
            write!(f, "{m}m{s}s")
        } else if n >= NANOS_PER_SEC {
            write!(f, "{:.3}s", n as f64 / NANOS_PER_SEC as f64)
        } else if n >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", n as f64 / NANOS_PER_MILLI as f64)
        } else if n >= NANOS_PER_MICRO {
            write!(f, "{:.3}us", n as f64 / NANOS_PER_MICRO as f64)
        } else {
            write!(f, "{n}ns")
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({self})")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_formats_round_trip() {
        // The exact strings from the paper's Table I.
        for s in ["8h9m50s", "8h7m10s", "24h16m12s", "24h2m47s"] {
            let d = SimDuration::parse(s).unwrap();
            assert_eq!(d.to_string(), s, "round-trip of {s}");
        }
    }

    #[test]
    fn display_magnitudes() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(6789).to_string(), "6.789ms");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(59).to_string(), "59.000s");
        assert_eq!(SimDuration::from_secs(60).to_string(), "1m0s");
        assert_eq!(SimDuration::from_secs(3661).to_string(), "1h1m1s");
    }

    #[test]
    fn display_rounds_to_nearest_second_at_hour_scale() {
        let d = SimDuration::from_hours(8) + SimDuration::from_millis(750);
        assert_eq!(d.to_string(), "8h0m1s");
    }

    #[test]
    fn parse_compound_and_simple() {
        assert_eq!(SimDuration::parse("90s").unwrap(), SimDuration::from_secs(90));
        assert_eq!(
            SimDuration::parse("1h30m").unwrap(),
            SimDuration::from_mins(90)
        );
        assert_eq!(
            SimDuration::parse("250ms").unwrap(),
            SimDuration::from_millis(250)
        );
        assert_eq!(SimDuration::parse("10us").unwrap(), SimDuration::from_micros(10));
        assert_eq!(SimDuration::parse("5ns").unwrap(), SimDuration::from_nanos(5));
        assert_eq!(
            SimDuration::parse("2m").unwrap(),
            SimDuration::from_mins(2),
            "bare m is minutes"
        );
    }

    #[test]
    fn parse_fractional() {
        assert_eq!(
            SimDuration::parse("1.5s").unwrap(),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn parse_errors() {
        assert_eq!(SimDuration::parse(""), Err(DurationParseError::Empty));
        assert_eq!(SimDuration::parse("12"), Err(DurationParseError::MissingUnit));
        assert_eq!(SimDuration::parse("h"), Err(DurationParseError::BadNumber));
        assert_eq!(SimDuration::parse("3x"), Err(DurationParseError::MissingUnit));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(10);
        assert_eq!(t.as_nanos(), 10 * NANOS_PER_SEC);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_secs(10));
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO, "saturates");
        assert_eq!(t - SimTime::ZERO, SimDuration::from_secs(10));
        let back = t - SimDuration::from_secs(4);
        assert_eq!(back.elapsed(), SimDuration::from_secs(6));
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_secs(2) * 3;
        assert_eq!(d, SimDuration::from_secs(6));
        assert_eq!(d / 2, SimDuration::from_secs(3));
        assert_eq!(
            d.saturating_sub(SimDuration::from_secs(10)),
            SimDuration::ZERO
        );
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(3));
        assert!(SimDuration::ZERO.is_zero());
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
    }
}
