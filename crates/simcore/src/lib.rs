//! # lidc-simcore — deterministic discrete-event simulation core
//!
//! Every subsystem in the LIDC reproduction (the NDN forwarders, the
//! Kubernetes control planes, the gateways, the WAN links) runs on top of
//! this crate. It provides:
//!
//! * **Virtual time** ([`SimTime`], [`SimDuration`]) with integer-nanosecond
//!   resolution and paper-style formatting (`8h9m50s`).
//! * **A discrete-event engine** ([`Sim`]) that dispatches typed messages to
//!   registered [`Actor`]s in deterministic `(time, sequence)` order.
//! * **Deterministic randomness** ([`DetRng`]) — a single `u64` seed fans out
//!   into independent, reproducible streams.
//! * **Metrics** ([`Metrics`], [`Histogram`]) and **report emission**
//!   ([`Table`], [`Report`]) used by the experiment harnesses to regenerate
//!   the paper's tables.
//!
//! The engine is intentionally single-threaded: determinism is a design
//! requirement (DESIGN.md §8), and the simulated workloads are scheduled in
//! virtual time, so wall-clock parallelism buys nothing. Real parallelism is
//! used where real computation happens (the genomics aligner kernel).
//!
//! ## Example
//!
//! ```
//! use lidc_simcore::prelude::*;
//!
//! struct Ping { peer: Option<ActorId>, got: u32 }
//! struct Tick;
//!
//! impl Actor for Ping {
//!     fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
//!         if msg.downcast::<Tick>().is_ok() {
//!             self.got += 1;
//!             if let Some(p) = self.peer {
//!                 ctx.send_after(SimDuration::from_millis(5), p, Tick);
//!             }
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new(42);
//! let a = sim.spawn("a", Ping { peer: None, got: 0 });
//! let b = sim.spawn("b", Ping { peer: Some(a), got: 0 });
//! sim.send(b, Tick);
//! sim.run();
//! assert_eq!(sim.actor::<Ping>(a).unwrap().got, 1);
//! assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(5));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bytesize;
pub mod engine;
pub mod metrics;
pub mod report;
pub mod rng;
pub mod time;

pub use bytesize::{format_bytes, parse_bytes, ByteSize};
pub use engine::{Actor, ActorId, Ctx, Msg, Sim};
pub use metrics::{Histogram, HistogramSummary, Metrics};
pub use report::{Report, Table};
pub use rng::{DetRng, SplitMix64};
pub use time::{SimDuration, SimTime};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::bytesize::{format_bytes, ByteSize};
    pub use crate::engine::{Actor, ActorId, Ctx, Msg, Sim};
    pub use crate::metrics::{Histogram, Metrics};
    pub use crate::report::{Report, Table};
    pub use crate::rng::DetRng;
    pub use crate::time::{SimDuration, SimTime};
}
