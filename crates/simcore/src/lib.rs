//! # lidc-simcore — deterministic discrete-event simulation core
//!
//! Every subsystem in the LIDC reproduction (the NDN forwarders, the
//! Kubernetes control planes, the gateways, the WAN links) runs on top of
//! this crate. It provides:
//!
//! * **Virtual time** ([`SimTime`], [`SimDuration`]) with integer-nanosecond
//!   resolution and paper-style formatting (`8h9m50s`).
//! * **A discrete-event engine** ([`Sim`]) that dispatches typed messages to
//!   registered [`Actor`]s in deterministic `(time, sequence)` order.
//! * **Deterministic randomness** ([`DetRng`]) — a single `u64` seed fans out
//!   into independent, reproducible streams.
//! * **Metrics** ([`Metrics`], [`Histogram`]) and **report emission**
//!   ([`Table`], [`Report`]) used by the experiment harnesses to regenerate
//!   the paper's tables.
//!
//! The engine is serial by default and **deterministically parallel** on
//! demand: determinism is a design requirement (DESIGN.md §8), and
//! [`Sim::set_threads`] may only buy wall-clock speed, never change a
//! result. The contract (spelled out in [`engine`]'s module docs): at any
//! thread count the schedule, every metric readout, every reply, and every
//! actor end state are bit-identical to serial execution. Parallel mode may
//! reorder only the wall-clock interleaving of same-instant batches for
//! *distinct* actors that opt in via [`engine::Concurrency::Concurrent`];
//! it may not reorder anything observable — cross-actor delivery order,
//! effect sequencing, per-actor RNG streams ([`engine::Ctx::rng`] draws
//! from a stream derived per actor from the master seed), or metrics
//! (buffered per worker and folded in run order via [`Metrics::merge`]).
//! Concurrent actors must not spawn/kill/halt in handlers (panics) nor
//! write state shared with other Concurrent actors. Real parallelism is
//! likewise used where real computation happens (the genomics aligner
//! kernel, the forwarder's sharded burst ingress).
//!
//! ## Example
//!
//! ```
//! use lidc_simcore::prelude::*;
//!
//! struct Ping { peer: Option<ActorId>, got: u32 }
//! struct Tick;
//!
//! impl Actor for Ping {
//!     fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
//!         if msg.downcast::<Tick>().is_ok() {
//!             self.got += 1;
//!             if let Some(p) = self.peer {
//!                 ctx.send_after(SimDuration::from_millis(5), p, Tick);
//!             }
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new(42);
//! let a = sim.spawn("a", Ping { peer: None, got: 0 });
//! let b = sim.spawn("b", Ping { peer: Some(a), got: 0 });
//! sim.send(b, Tick);
//! sim.run();
//! assert_eq!(sim.actor::<Ping>(a).unwrap().got, 1);
//! assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(5));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bytesize;
pub mod engine;
pub mod faults;
pub mod metrics;
pub mod metrics_keys;
pub mod report;
pub mod rng;
pub mod time;

pub use bytesize::{format_bytes, parse_bytes, ByteSize};
pub use engine::{Actor, ActorId, Concurrency, Ctx, GroupId, Msg, Sim};
pub use faults::{
    ChaosProfile, FaultAction, FaultController, FaultEvent, FaultHook, FaultKind, FaultSchedule,
    StartFaults,
};
pub use metrics::{Histogram, HistogramSummary, Metrics};
pub use report::{Report, Table};
pub use rng::{DetRng, SplitMix64};
pub use time::{SimDuration, SimTime};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::bytesize::{format_bytes, ByteSize};
    pub use crate::engine::{Actor, ActorId, Ctx, GroupId, Msg, Sim};
    pub use crate::faults::{
        FaultAction, FaultController, FaultEvent, FaultKind, FaultSchedule, StartFaults,
    };
    pub use crate::metrics::{Histogram, Metrics};
    pub use crate::report::{Report, Table};
    pub use crate::rng::DetRng;
    pub use crate::time::{SimDuration, SimTime};
}
