//! Seeded fault injection: typed fault schedules and the controller actor
//! that applies and heals them mid-run.
//!
//! ## Determinism contract
//!
//! Chaos runs must be bit-identical across thread counts and across repeated
//! runs with the same master seed. Two rules make that hold:
//!
//! 1. **The schedule is pre-generated, never drawn during the run.** A
//!    [`FaultSchedule`] is either built explicitly or generated from a
//!    *dedicated RNG stream* derived from the master seed (e.g.
//!    `DetRng::new(seed).derive_str("faults")`). [`DetRng::derive_str`] does
//!    not advance the parent, so the fault stream is decorrelated from — and
//!    independent of the consumption order of — every other stream in the
//!    simulation. The same seed therefore yields the same schedule no matter
//!    what else the run does.
//! 2. **Application is a single [`Exclusive`](crate::Concurrency::Exclusive)
//!    actor.** The [`FaultController`] converts the schedule into ordinary
//!    timed messages to itself at [`StartFaults`] time; the engine dispatches
//!    them in deterministic `(time, sequence)` order like any other event, so
//!    the interleaving of fault firings with workload traffic is identical at
//!    any thread count.
//!
//! Fault timers use [`Ctx::schedule_self_background`] (daemon timers), so a
//! pending heal far in the future never keeps [`Sim::run`](crate::Sim::run)
//! from quiescing once the workload itself has drained.
//!
//! The controller is deliberately ignorant of the stack above it: applying a
//! [`FaultKind`] to forwarders, API servers, or gateways is delegated to a
//! [`FaultHook`] closure supplied by the scenario harness, which maps each
//! kind onto the control messages of the world it built (face up/down,
//! node-ready flips, link degradation, FIB mutation, …). The controller owns
//! the *when* (timing, flapping, healing, metrics, the timeline); the hook
//! owns the *how*.

use std::fmt;

use crate::engine::{Actor, ActorId, Ctx, Msg, Sim};
use crate::time::{SimDuration, SimTime};

/// A typed fault. The taxonomy covers the adversities the LIDC paper's
/// location-independence claim must survive.
///
/// Targets are symbolic names (cluster names, link labels, node names);
/// resolving them to actor or face identifiers is the [`FaultHook`]'s job.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// An entire cluster becomes unreachable (its WAN attachment is cut).
    ClusterOutage {
        /// Cluster name.
        cluster: String,
    },
    /// A single worker node crashes (pods on it are lost).
    NodeCrash {
        /// Cluster the node belongs to.
        cluster: String,
        /// Node name within the cluster.
        node: String,
    },
    /// A link goes administratively down at both ends.
    LinkDown {
        /// Link label (by convention, the cluster whose WAN link it is).
        link: String,
    },
    /// A link stays up but degrades: latency multiplied, loss added.
    LinkDegrade {
        /// Link label.
        link: String,
        /// Multiplier applied to the link's propagation latency (≥ 1.0).
        latency_factor: f64,
        /// Additional loss probability added to the link's base loss.
        extra_loss: f64,
    },
    /// A producer (gateway/cluster) slows down: its link latency is
    /// multiplied without any loss, modelling an overloaded endpoint.
    SlowProducer {
        /// Producer label (cluster name).
        producer: String,
        /// Latency multiplier (≥ 1.0).
        factor: f64,
    },
    /// Routing goes stale: a prefix advertisement for one cluster is
    /// withdrawn without the cluster actually dying.
    StaleFib {
        /// The prefix whose route goes stale.
        prefix: String,
        /// Cluster whose advertisement is withdrawn.
        cluster: String,
    },
    /// A link corrupts a fraction of packets in flight. How a corrupted
    /// packet manifests is the receiving stack's choice: the NDN layer's
    /// legacy mode drops it *at the link* (an idealization), while its
    /// bit-flip mode delivers the damaged bytes downstream so signature
    /// verification catches them at the first verify point (see
    /// docs/INTEGRITY.md).
    PacketCorrupt {
        /// Link label.
        link: String,
        /// Per-packet corruption probability.
        probability: f64,
    },
    /// A producer turns byzantine: it keeps answering, but with wrong
    /// bytes. `signed = false` serves unsigned garbage (fails signature
    /// verification at the first hop); `signed = true` serves correctly
    /// signed Data under the wrong name (verifiable, but never matches
    /// the consumer's Interest, so it dies as unsolicited Data).
    ByzantineProducer {
        /// Cluster whose producer misbehaves.
        cluster: String,
        /// Whether the wrong bytes carry a valid signature.
        signed: bool,
    },
    /// A correlated region failure: one firing takes down the declared
    /// set of member clusters (and their WAN links) together, modelling
    /// a shared power/fiber domain rather than independent outages.
    RegionOutage {
        /// Region label.
        region: String,
        /// Member cluster names that fail and heal as one unit.
        members: Vec<String>,
    },
}

impl FaultKind {
    /// Stable per-kind metrics key under the `fault.` namespace.
    pub fn metric_key(&self) -> &'static str {
        match self {
            FaultKind::ClusterOutage { .. } => "fault.cluster_outage",
            FaultKind::NodeCrash { .. } => "fault.node_crash",
            FaultKind::LinkDown { .. } => "fault.link_down",
            FaultKind::LinkDegrade { .. } => "fault.link_degrade",
            FaultKind::SlowProducer { .. } => "fault.slow_producer",
            FaultKind::StaleFib { .. } => "fault.stale_fib",
            FaultKind::PacketCorrupt { .. } => "fault.packet_corrupt",
            FaultKind::ByzantineProducer { .. } => "fault.byzantine_producer",
            FaultKind::RegionOutage { .. } => "fault.region_outage",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::ClusterOutage { cluster } => write!(f, "cluster-outage({cluster})"),
            FaultKind::NodeCrash { cluster, node } => write!(f, "node-crash({cluster}/{node})"),
            FaultKind::LinkDown { link } => write!(f, "link-down({link})"),
            FaultKind::LinkDegrade { link, latency_factor, extra_loss } => {
                write!(f, "link-degrade({link} x{latency_factor} +loss={extra_loss})")
            }
            FaultKind::SlowProducer { producer, factor } => {
                write!(f, "slow-producer({producer} x{factor})")
            }
            FaultKind::StaleFib { prefix, cluster } => {
                write!(f, "stale-fib({prefix} @ {cluster})")
            }
            FaultKind::PacketCorrupt { link, probability } => {
                write!(f, "packet-corrupt({link} p={probability})")
            }
            FaultKind::ByzantineProducer { cluster, signed } => {
                write!(f, "byzantine-producer({cluster} signed={signed})")
            }
            FaultKind::RegionOutage { region, members } => {
                write!(f, "region-outage({region}: {})", members.join("+"))
            }
        }
    }
}

/// Whether a firing applies the fault or heals it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Apply the fault.
    Inject,
    /// Undo the fault (restore healthy state).
    Heal,
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Inject => write!(f, "inject"),
            FaultAction::Heal => write!(f, "heal"),
        }
    }
}

/// One timed fault: when it starts, how long it lasts, whether it flaps.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Offset from [`StartFaults`] at which the fault is injected.
    pub at: SimDuration,
    /// How long the fault persists before it is healed; `None` = permanent.
    pub duration: Option<SimDuration>,
    /// When set, the fault *flaps*: it toggles between injected and healed
    /// every `flap_period` for the whole `duration` (ignored when the fault
    /// is permanent). Models an unstable link rather than a clean cut.
    pub flap_period: Option<SimDuration>,
    /// What breaks.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// A fault injected at `at` and never healed.
    pub fn permanent(at: SimDuration, kind: FaultKind) -> Self {
        FaultEvent { at, duration: None, flap_period: None, kind }
    }

    /// A fault injected at `at` and healed after `duration`.
    pub fn transient(at: SimDuration, duration: SimDuration, kind: FaultKind) -> Self {
        FaultEvent { at, duration: Some(duration), flap_period: None, kind }
    }

    /// A flapping fault: toggles every `flap_period` within `duration`.
    pub fn flapping(
        at: SimDuration,
        duration: SimDuration,
        flap_period: SimDuration,
        kind: FaultKind,
    ) -> Self {
        FaultEvent { at, duration: Some(duration), flap_period: Some(flap_period), kind }
    }

    /// The individual `(offset, action)` firings this event expands to,
    /// in chronological order. A transient fault yields an inject and a
    /// heal; a flapping fault yields the full toggle train, always ending
    /// healed at `at + duration`.
    pub fn firings(&self) -> Vec<(SimDuration, FaultAction)> {
        let mut out = vec![(self.at, FaultAction::Inject)];
        let Some(duration) = self.duration else {
            return out;
        };
        let end = self.at + duration;
        if let Some(period) = self.flap_period {
            if !period.is_zero() {
                let mut t = self.at + period;
                let mut injected = true;
                while t < end {
                    injected = !injected;
                    out.push((t, if injected { FaultAction::Inject } else { FaultAction::Heal }));
                    t += period;
                }
            }
        }
        // Always end healed at the boundary (the flap loop stops strictly
        // before `end`, so this never duplicates a firing).
        out.push((end, FaultAction::Heal));
        out
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{} ", self.at)?;
        match self.duration {
            Some(d) => write!(f, "for {} ", d)?,
            None => write!(f, "permanent ")?,
        }
        if let Some(p) = self.flap_period {
            write!(f, "flap {} ", p)?;
        }
        write!(f, "{}", self.kind)
    }
}

/// An ordered collection of timed faults — the full chaos plan for a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Append an event (builder style).
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.push(event);
        self
    }

    /// Append an event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
        self.events.sort_by(|a, b| {
            a.at.cmp(&b.at).then_with(|| a.kind.to_string().cmp(&b.kind.to_string()))
        });
    }

    /// The events, sorted by injection time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A stable, human-readable dump of the schedule — one line per event.
    /// Two schedules are identical iff their fingerprints match; used by the
    /// determinism tests to compare schedules across thread counts.
    pub fn fingerprint(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }

    /// Generate a randomized schedule from a *dedicated* RNG stream.
    ///
    /// Call with a stream derived from the master seed, e.g.
    /// `&mut DetRng::new(seed).derive_str("faults")` — never with a stream
    /// another component also draws from, or the schedule would depend on
    /// unrelated consumption order. Draws are made in a fixed order per
    /// event, so the same `(stream state, profile)` always yields the same
    /// schedule.
    pub fn generate(rng: &mut crate::rng::DetRng, profile: &ChaosProfile) -> Self {
        let mut schedule = FaultSchedule::new();
        let horizon = profile.horizon.as_nanos().max(1);
        let draw_at =
            |rng: &mut crate::rng::DetRng| SimDuration::from_nanos(rng.next_below(horizon));
        let draw_dur = |rng: &mut crate::rng::DetRng| {
            let mean = profile.mean_duration.as_secs_f64().max(1e-9);
            let d = rng.next_exponential(mean).clamp(mean * 0.1, mean * 4.0);
            SimDuration::from_secs_f64(d)
        };
        for _ in 0..profile.outages {
            let (at, dur) = (draw_at(rng), draw_dur(rng));
            if let Some(cluster) = rng.choose(&profile.clusters) {
                schedule.push(FaultEvent::transient(
                    at,
                    dur,
                    FaultKind::ClusterOutage { cluster: cluster.clone() },
                ));
            }
        }
        for _ in 0..profile.node_crashes {
            let (at, dur) = (draw_at(rng), draw_dur(rng));
            if let Some(cluster) = rng.choose(&profile.clusters) {
                let node = rng.next_below(profile.nodes_per_cluster.max(1) as u64);
                schedule.push(FaultEvent::transient(
                    at,
                    dur,
                    FaultKind::NodeCrash {
                        cluster: cluster.clone(),
                        node: format!("{cluster}-node-{node}"),
                    },
                ));
            }
        }
        for _ in 0..profile.link_degrades {
            let (at, dur) = (draw_at(rng), draw_dur(rng));
            if let Some(link) = rng.choose(&profile.links) {
                let latency_factor = 2.0 + rng.next_f64() * 8.0;
                let extra_loss = rng.next_f64() * 0.1;
                schedule.push(FaultEvent::transient(
                    at,
                    dur,
                    FaultKind::LinkDegrade { link: link.clone(), latency_factor, extra_loss },
                ));
            }
        }
        // The integrity kinds draw *after* the original three families so a
        // profile with `byzantine = region_outages = 0` consumes exactly the
        // draws it did before they existed (schedules stay stable per seed).
        for _ in 0..profile.byzantine {
            let (at, dur) = (draw_at(rng), draw_dur(rng));
            let signed = rng.next_bool(0.5);
            if let Some(cluster) = rng.choose(&profile.clusters) {
                schedule.push(FaultEvent::transient(
                    at,
                    dur,
                    FaultKind::ByzantineProducer { cluster: cluster.clone(), signed },
                ));
            }
        }
        for _ in 0..profile.region_outages {
            let (at, dur) = (draw_at(rng), draw_dur(rng));
            if let Some((region, members)) = rng.choose(&profile.regions) {
                schedule.push(FaultEvent::transient(
                    at,
                    dur,
                    FaultKind::RegionOutage { region: region.clone(), members: members.clone() },
                ));
            }
        }
        schedule
    }
}

/// Parameters for [`FaultSchedule::generate`].
#[derive(Debug, Clone)]
pub struct ChaosProfile {
    /// Faults are injected within `[0, horizon)`.
    pub horizon: SimDuration,
    /// Cluster names eligible for outages and node crashes.
    pub clusters: Vec<String>,
    /// Link labels eligible for degradation.
    pub links: Vec<String>,
    /// Nodes per cluster (node names are `<cluster>-node-<i>`, matching the
    /// names the chaos worlds give their Kubernetes nodes).
    pub nodes_per_cluster: usize,
    /// Number of cluster outages to draw.
    pub outages: usize,
    /// Number of node crashes to draw.
    pub node_crashes: usize,
    /// Number of link degradations to draw.
    pub link_degrades: usize,
    /// Number of byzantine-producer episodes to draw (default 0: the
    /// integrity kinds are opt-in so pre-existing seeds keep their
    /// schedules). Keep rates low — a byzantine producer poisons every
    /// answer it gives, so storms of them can starve a small federation.
    pub byzantine: usize,
    /// Number of correlated region outages to draw (default 0).
    pub region_outages: usize,
    /// Region definitions eligible for [`FaultKind::RegionOutage`]:
    /// `(region label, member clusters)`.
    pub regions: Vec<(String, Vec<String>)>,
    /// Mean fault duration (exponential, clamped to `[0.1, 4] × mean`).
    pub mean_duration: SimDuration,
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile {
            horizon: SimDuration::from_secs(60),
            clusters: Vec::new(),
            links: Vec::new(),
            nodes_per_cluster: 3,
            outages: 1,
            node_crashes: 1,
            link_degrades: 1,
            byzantine: 0,
            region_outages: 0,
            regions: Vec::new(),
            mean_duration: SimDuration::from_secs(10),
        }
    }
}

/// Scenario-supplied applicator: maps a [`FaultKind`] onto the control
/// messages of the world the scenario built. Must be **idempotent** (a heal
/// of an already-healthy target, or a re-inject during a flap, is a no-op)
/// because flap trains can fire the same action twice at boundaries.
pub type FaultHook = Box<dyn FnMut(&FaultKind, FaultAction, &mut Ctx<'_>) + Send>;

/// Kick off a deployed [`FaultController`]'s schedule. All fault timers are
/// measured from the instant this message is handled.
pub struct StartFaults;

/// One scheduled firing (internal timer message).
struct Fire {
    idx: usize,
    action: FaultAction,
}

/// The actor that applies and heals faults per a [`FaultSchedule`].
///
/// On [`StartFaults`] it expands every event into its firing train and
/// schedules each firing as a background timer to itself; each firing calls
/// the [`FaultHook`], bumps `fault.injected` / `fault.healed` plus the
/// per-kind counter, and appends to the timeline.
pub struct FaultController {
    schedule: FaultSchedule,
    hook: FaultHook,
    timeline: Vec<(SimTime, String)>,
}

impl FaultController {
    /// Create a controller (not yet spawned) for `schedule`.
    pub fn new(schedule: FaultSchedule, hook: FaultHook) -> Self {
        FaultController { schedule, hook, timeline: Vec::new() }
    }

    /// Spawn a controller into `sim` and send it [`StartFaults`] so the
    /// schedule begins at the current instant. Returns the controller's id.
    ///
    /// The controller lives in its own **barrier group**: it declares zero
    /// lookahead to every other group, so under the horizon scheduler no
    /// group advances past the next scheduled firing and every zero-delay
    /// injection lands at exactly the instant it would under the legacy
    /// engine (see docs/ENGINE.md).
    pub fn deploy(sim: &mut Sim, schedule: FaultSchedule, hook: FaultHook) -> ActorId {
        let group = sim.new_group("faults");
        sim.set_barrier_group(group);
        let prev = sim.set_default_group(group);
        let id = sim.spawn("fault-controller", FaultController::new(schedule, hook));
        sim.set_default_group(prev);
        sim.send(id, StartFaults);
        id
    }

    /// The chronological `(time, "action kind")` record of every firing.
    pub fn timeline(&self) -> &[(SimTime, String)] {
        &self.timeline
    }

    /// Stable text dump of the timeline — one line per firing. Used by the
    /// determinism tests to compare runs across seeds and thread counts.
    pub fn timeline_text(&self) -> String {
        let mut s = String::new();
        for (t, line) in &self.timeline {
            s.push_str(&format!("{t} {line}\n"));
        }
        s
    }

    /// The schedule this controller executes.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }
}

impl Actor for FaultController {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        let msg = match msg.downcast::<StartFaults>() {
            Ok(_) => {
                for (idx, event) in self.schedule.events.iter().enumerate() {
                    for (offset, action) in event.firings() {
                        ctx.schedule_self_background(offset, Fire { idx, action });
                    }
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(fire) = msg.downcast::<Fire>() {
            let kind = self.schedule.events[fire.idx].kind.clone();
            (self.hook)(&kind, fire.action, ctx);
            match fire.action {
                FaultAction::Inject => ctx.metrics().incr("fault.injected", 1),
                FaultAction::Heal => ctx.metrics().incr("fault.healed", 1),
            }
            // lidc-lint: allow(metric-key) reason="kind.metric_key() expands to the fault.* family, every member of which is a registered constant in metrics_keys.rs"
            ctx.metrics().incr(kind.metric_key(), 1);
            self.timeline.push((ctx.now(), format!("{} {}", fire.action, kind)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn outage(c: &str) -> FaultKind {
        FaultKind::ClusterOutage { cluster: c.into() }
    }

    #[test]
    fn transient_fault_fires_inject_then_heal() {
        let e = FaultEvent::transient(
            SimDuration::from_secs(5),
            SimDuration::from_secs(10),
            outage("a"),
        );
        assert_eq!(
            e.firings(),
            vec![
                (SimDuration::from_secs(5), FaultAction::Inject),
                (SimDuration::from_secs(15), FaultAction::Heal),
            ]
        );
    }

    #[test]
    fn permanent_fault_never_heals() {
        let e = FaultEvent::permanent(SimDuration::from_secs(1), outage("a"));
        assert_eq!(e.firings(), vec![(SimDuration::from_secs(1), FaultAction::Inject)]);
    }

    #[test]
    fn flapping_fault_toggles_and_ends_healed() {
        let e = FaultEvent::flapping(
            SimDuration::from_secs(0),
            SimDuration::from_secs(10),
            SimDuration::from_secs(3),
            outage("a"),
        );
        let f = e.firings();
        assert_eq!(f.first().unwrap().1, FaultAction::Inject);
        assert_eq!(*f.last().unwrap(), (SimDuration::from_secs(10), FaultAction::Heal));
        // 0:inject, 3:heal, 6:inject, 9:heal, 10:heal(final)
        assert_eq!(f.len(), 5);
        for pair in f.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "chronological");
        }
    }

    #[test]
    fn generate_is_deterministic_per_stream() {
        let profile = ChaosProfile {
            clusters: vec!["a".into(), "b".into()],
            links: vec!["a".into(), "b".into()],
            outages: 3,
            node_crashes: 3,
            link_degrades: 3,
            ..Default::default()
        };
        let root = DetRng::new(42);
        let s1 = FaultSchedule::generate(&mut root.derive_str("faults"), &profile);
        // Consuming a sibling stream must not perturb the fault stream.
        let mut sibling = root.derive_str("workload");
        for _ in 0..100 {
            sibling.next_u64();
        }
        let s2 = FaultSchedule::generate(&mut root.derive_str("faults"), &profile);
        assert_eq!(s1.fingerprint(), s2.fingerprint());
        assert_eq!(s1.len(), 9);
    }

    #[test]
    fn generate_draws_integrity_kinds_after_legacy_families() {
        let legacy = ChaosProfile {
            clusters: vec!["a".into(), "b".into()],
            links: vec!["a".into(), "b".into()],
            ..Default::default()
        };
        let extended = ChaosProfile {
            byzantine: 2,
            region_outages: 1,
            regions: vec![("west-coast".into(), vec!["a".into(), "b".into()])],
            ..legacy.clone()
        };
        let root = DetRng::new(7);
        let s_legacy = FaultSchedule::generate(&mut root.derive_str("faults"), &legacy);
        let s_ext = FaultSchedule::generate(&mut root.derive_str("faults"), &extended);
        // The legacy families draw first, so their events are byte-identical
        // whether or not the integrity kinds are enabled.
        for e in s_legacy.events() {
            assert!(s_ext.events().contains(e), "legacy event perturbed: {e}");
        }
        assert_eq!(s_ext.len(), s_legacy.len() + 3);
        let byz = s_ext
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::ByzantineProducer { .. }))
            .count();
        let region = s_ext
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::RegionOutage { .. }))
            .count();
        assert_eq!((byz, region), (2, 1));
        assert!(s_ext.fingerprint().contains("region-outage(west-coast: a+b)"));
    }

    #[test]
    fn controller_fires_hooks_and_records_timeline() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;

        let schedule = FaultSchedule::new()
            .with(FaultEvent::transient(
                SimDuration::from_secs(1),
                SimDuration::from_secs(2),
                outage("edge"),
            ))
            .with(FaultEvent::permanent(SimDuration::from_secs(2), outage("core")));
        let injects = Arc::new(AtomicU32::new(0));
        let heals = Arc::new(AtomicU32::new(0));
        let (i2, h2) = (injects.clone(), heals.clone());
        let mut sim = Sim::new(7);
        let ctl = FaultController::deploy(
            &mut sim,
            schedule,
            Box::new(move |_kind, action, _ctx| match action {
                FaultAction::Inject => {
                    i2.fetch_add(1, Ordering::SeqCst);
                }
                FaultAction::Heal => {
                    h2.fetch_add(1, Ordering::SeqCst);
                }
            }),
        );
        // Fault timers are background; a foreground event must outlast them.
        struct Sink;
        impl Actor for Sink {
            fn on_message(&mut self, _msg: Msg, _ctx: &mut Ctx<'_>) {}
        }
        struct Tick;
        let sink = sim.spawn("sink", Sink);
        sim.send_after(SimDuration::from_secs(10), sink, Tick);
        sim.run();
        assert_eq!(injects.load(Ordering::SeqCst), 2);
        assert_eq!(heals.load(Ordering::SeqCst), 1);
        let ctl = sim.actor::<FaultController>(ctl).unwrap();
        assert_eq!(ctl.timeline().len(), 3);
        assert!(ctl.timeline_text().contains("inject cluster-outage(edge)"));
        assert!(ctl.timeline_text().contains("heal cluster-outage(edge)"));
        assert_eq!(sim.metrics_ref().counter("fault.injected"), 2);
        assert_eq!(sim.metrics_ref().counter("fault.healed"), 1);
        assert_eq!(sim.metrics_ref().counter("fault.cluster_outage"), 3);
    }
}
