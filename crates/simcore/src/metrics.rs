//! Simulation metrics: counters and sample histograms.
//!
//! Deterministic by construction: `BTreeMap` keys iterate in sorted order so
//! report generation is byte-stable for a fixed seed.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::time::SimDuration;

/// A sample-recording histogram with on-demand percentile queries.
///
/// Samples are stored exactly (the reproduction's experiments record at most
/// a few hundred thousand samples per metric, so exact storage is cheaper
/// than maintaining sketch invariants and keeps percentiles precise).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Minimum sample (0 when empty).
    pub min: f64,
    /// Maximum sample (0 when empty).
    pub max: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Histogram {
    /// New, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Record a duration in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Smallest sample; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest sample; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
    }

    /// Percentile `p` in `[0, 100]` using nearest-rank on the sorted samples;
    /// 0 when empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.samples.len() as f64 - 1.0)).round() as usize;
        self.samples[rank.min(self.samples.len() - 1)]
    }

    /// Append every sample of `other` to this histogram, preserving
    /// `other`'s recording order (the merge building block for per-worker
    /// metrics buffers).
    pub fn absorb(&mut self, mut other: Histogram) {
        if self.samples.is_empty() {
            // Adopt the other side wholesale (keeps its sorted flag).
            *self = other;
            return;
        }
        self.samples.append(&mut other.samples);
        self.sorted = false;
    }

    /// Produce a summary snapshot.
    pub fn summary(&mut self) -> HistogramSummary {
        let count = self.count();
        let mean = self.mean();
        let min = if count == 0 { 0.0 } else { self.percentile(0.0) };
        HistogramSummary {
            count,
            mean,
            min,
            max: self.max(),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
        }
    }
}

impl fmt::Display for HistogramSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} min={:.4} p50={:.4} p90={:.4} p99={:.4} max={:.4}",
            self.count, self.mean, self.min, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// A named registry of counters and histograms.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    /// Keys written through [`Metrics::set_max`]: [`Metrics::merge`] combines
    /// them by maximum instead of by sum, so a high-water mark merged from a
    /// per-worker buffer stays a high-water mark.
    max_keys: BTreeSet<String>,
}

impl Metrics {
    /// New, empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Increment (or create) the counter `name` by `by`.
    pub fn incr(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Current value of counter `name` (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Raise counter `name` to `v` if `v` exceeds its current value
    /// (high-water marks, e.g. the engine's largest dispatch batch).
    pub fn set_max(&mut self, name: &str, v: u64) {
        let slot = self.counters.entry(name.to_owned()).or_insert(0);
        *slot = (*slot).max(v);
        if !self.max_keys.contains(name) {
            self.max_keys.insert(name.to_owned());
        }
    }

    /// Fold `other` into this registry with deterministic, order-insensitive
    /// semantics: counters add, high-water marks ([`Metrics::set_max`] keys)
    /// take the maximum, and histograms append `other`'s samples in their
    /// recording order. Keys merge in sorted (`BTreeMap`) order, so merging
    /// the same set of buffers always walks the same key sequence; because
    /// sums and maxes commute, the *readouts* are also independent of the
    /// order the buffers themselves are merged in (pinned by a unit test).
    /// This is what lets the engine's parallel dispatch hand each worker a
    /// private `Metrics` buffer and still end up with the exact registry a
    /// sequential run produces.
    pub fn merge(&mut self, other: Metrics) {
        for (name, v) in other.counters {
            if other.max_keys.contains(&name) {
                let slot = self.counters.entry(name.clone()).or_insert(0);
                *slot = (*slot).max(v);
                self.max_keys.insert(name);
            } else {
                *self.counters.entry(name).or_insert(0) += v;
            }
        }
        for (name, h) in other.histograms {
            self.histograms.entry(name).or_default().absorb(h);
        }
    }

    /// Record a sample into histogram `name`.
    pub fn record(&mut self, name: &str, v: f64) {
        self.histograms.entry(name.to_owned()).or_default().record(v);
    }

    /// Record a duration (seconds) into histogram `name`.
    pub fn record_duration(&mut self, name: &str, d: SimDuration) {
        self.record(name, d.as_secs_f64());
    }

    /// Access a histogram if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Mutable access (for percentile queries, which sort lazily).
    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        self.histograms.get_mut(name)
    }

    /// All counter names, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// All counters with their values, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Render the counters matching `prefix` as a report table (sorted by
    /// name; deterministic). Experiment binaries use this to surface
    /// subsystem counters — e.g. the Content Store's byte budget
    /// (`ndn.cs_*`: bytes used, byte-evictions, admission rejections) —
    /// next to their dispatch reports.
    pub fn counters_table(&self, title: impl Into<String>, prefix: &str) -> crate::report::Table {
        let mut table = crate::report::Table::new(title, &["counter", "value"]);
        for (name, value) in self.counters() {
            if name.starts_with(prefix) {
                table.push_row(vec![name.to_owned(), value.to_string()]);
            }
        }
        table
    }

    /// All histogram names, sorted.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Remove every counter and histogram.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.histograms.clear();
        self.max_keys.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.incr("x", 2);
        m.incr("x", 3);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(100.0), 100.0);
        let p50 = h.percentile(50.0);
        assert!((50.0..=51.0).contains(&p50), "p50 = {p50}");
        let p90 = h.percentile(90.0);
        assert!((90.0..=91.0).contains(&p90), "p90 = {p90}");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let mut h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn summary_fields_consistent() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 9.0, 3.0] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert!((s.mean - 4.5).abs() < 1e-12);
    }

    #[test]
    fn record_after_percentile_resorts() {
        let mut h = Histogram::new();
        h.record(10.0);
        assert_eq!(h.percentile(50.0), 10.0);
        h.record(1.0);
        assert_eq!(h.percentile(0.0), 1.0, "new min visible after re-sort");
    }

    #[test]
    fn registry_iteration_is_sorted() {
        let mut m = Metrics::new();
        m.incr("zeta", 1);
        m.incr("alpha", 1);
        m.record("m2", 1.0);
        m.record("m1", 1.0);
        let counters: Vec<_> = m.counter_names().collect();
        assert_eq!(counters, vec!["alpha", "zeta"]);
        let histos: Vec<_> = m.histogram_names().collect();
        assert_eq!(histos, vec!["m1", "m2"]);
    }

    #[test]
    fn counters_table_filters_by_prefix() {
        let mut m = Metrics::new();
        m.incr("ndn.cs_evict.count", 3);
        m.incr("ndn.cs_evict.bytes", 4096);
        m.incr("gateway.jobs_created", 1);
        let t = m.counters_table("CS", "ndn.cs_");
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "ndn.cs_evict.bytes");
        assert_eq!(t.rows[0][1], "4096");
        assert_eq!(t.rows[1][0], "ndn.cs_evict.count");
    }

    #[test]
    fn merge_sums_counters_maxes_marks_and_appends_histograms() {
        let mut base = Metrics::new();
        base.incr("pkts", 10);
        base.set_max("peak", 5);
        base.record("lat", 1.0);

        let mut worker = Metrics::new();
        worker.incr("pkts", 3);
        worker.incr("drops", 1);
        worker.set_max("peak", 9);
        worker.record("lat", 2.0);
        worker.record("other", 7.0);

        base.merge(worker);
        assert_eq!(base.counter("pkts"), 13);
        assert_eq!(base.counter("drops"), 1);
        assert_eq!(base.counter("peak"), 9, "high-water mark maxed, not summed");
        assert_eq!(base.histogram("lat").unwrap().count(), 2);
        assert_eq!(base.histogram("other").unwrap().count(), 1);
        // A lower mark merged later must not regress the max.
        let mut late = Metrics::new();
        late.set_max("peak", 2);
        base.merge(late);
        assert_eq!(base.counter("peak"), 9);
    }

    #[test]
    fn merge_order_does_not_change_readouts() {
        // Three per-worker buffers merged in two different orders must give
        // identical counters, maxes, and histogram summaries. Samples are
        // exactly-representable values so float sums are order-exact.
        let make = |seed: u64| {
            let mut m = Metrics::new();
            m.incr("n", seed);
            m.set_max("hi", seed * 10);
            for i in 0..seed {
                m.record("h", (seed * 100 + i) as f64);
            }
            m
        };
        let mut fwd = Metrics::new();
        for s in [1u64, 2, 3] {
            fwd.merge(make(s));
        }
        let mut rev = Metrics::new();
        for s in [3u64, 2, 1] {
            rev.merge(make(s));
        }
        assert_eq!(
            fwd.counters().collect::<Vec<_>>(),
            rev.counters().collect::<Vec<_>>()
        );
        let sf = fwd.histogram_mut("h").unwrap().summary();
        let sr = rev.histogram_mut("h").unwrap().summary();
        assert_eq!(sf.count, sr.count);
        assert_eq!(sf.mean, sr.mean);
        assert_eq!(sf.min, sr.min);
        assert_eq!(sf.max, sr.max);
        assert_eq!(sf.p50, sr.p50);
        assert_eq!(sf.p90, sr.p90);
        assert_eq!(sf.p99, sr.p99);
    }

    #[test]
    fn absorb_into_empty_adopts_and_into_full_appends() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        b.record(3.0);
        b.record(1.0);
        a.absorb(b);
        assert_eq!(a.count(), 2);
        let mut c = Histogram::new();
        c.record(0.5);
        a.absorb(c);
        assert_eq!(a.count(), 3);
        assert_eq!(a.percentile(0.0), 0.5);
    }

    #[test]
    fn duration_recording() {
        let mut m = Metrics::new();
        m.record_duration("lat", SimDuration::from_millis(1500));
        assert!((m.histogram("lat").unwrap().mean() - 1.5).abs() < 1e-12);
    }
}
