//! Byte-size formatting matching the paper's conventions.
//!
//! Table I reports output sizes as `941MB` and `2.71GB` — decimal (SI) units,
//! two decimals at GB scale and integers at MB scale. [`format_bytes`]
//! reproduces that, and [`parse_bytes`] reads the paper's strings back for
//! test assertions.

use std::fmt;

/// A byte count with paper-style `Display`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(pub u64);

const KB: u64 = 1_000;
const MB: u64 = 1_000_000;
const GB: u64 = 1_000_000_000;
const TB: u64 = 1_000_000_000_000;

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Construct from decimal kilobytes.
    pub const fn from_kb(v: u64) -> Self {
        ByteSize(v * KB)
    }

    /// Construct from decimal megabytes.
    pub const fn from_mb(v: u64) -> Self {
        ByteSize(v * MB)
    }

    /// Construct from decimal gigabytes.
    pub const fn from_gb(v: u64) -> Self {
        ByteSize(v * GB)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Fractional decimal gigabytes.
    pub fn as_gb_f64(self) -> f64 {
        self.0 as f64 / GB as f64
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_bytes(self.0))
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteSize({} = {})", self.0, format_bytes(self.0))
    }
}

impl std::ops::Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_add(rhs.0).expect("ByteSize overflow"))
    }
}

impl std::ops::AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

/// Format a byte count the way the paper's Table I does: `2.71GB`, `941MB`,
/// `12.3KB`, `512B`.
pub fn format_bytes(bytes: u64) -> String {
    if bytes >= TB {
        format!("{:.2}TB", bytes as f64 / TB as f64)
    } else if bytes >= GB {
        format!("{:.2}GB", bytes as f64 / GB as f64)
    } else if bytes >= MB {
        format!("{}MB", (bytes as f64 / MB as f64).round() as u64)
    } else if bytes >= KB {
        format!("{:.1}KB", bytes as f64 / KB as f64)
    } else {
        format!("{bytes}B")
    }
}

/// Parse a paper-style size string (`941MB`, `2.71GB`, `512B`, optionally
/// with a space before the unit). Decimal (SI) units.
pub fn parse_bytes(s: &str) -> Result<ByteSize, ByteParseError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(ByteParseError::Empty);
    }
    let unit_start = s
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(s.len());
    let (num, unit) = s.split_at(unit_start);
    let value: f64 = num.trim().parse().map_err(|_| ByteParseError::BadNumber)?;
    let mult = match unit.trim().to_ascii_uppercase().as_str() {
        "" | "B" => 1.0,
        "KB" => KB as f64,
        "MB" => MB as f64,
        "GB" => GB as f64,
        "TB" => TB as f64,
        _ => return Err(ByteParseError::BadUnit),
    };
    let bytes = value * mult;
    if !bytes.is_finite() || bytes < 0.0 || bytes > u64::MAX as f64 {
        return Err(ByteParseError::OutOfRange);
    }
    Ok(ByteSize(bytes.round() as u64))
}

/// Error returned by [`parse_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteParseError {
    /// Empty input.
    Empty,
    /// The numeric prefix did not parse.
    BadNumber,
    /// Unrecognised unit suffix.
    BadUnit,
    /// Value out of `u64` range.
    OutOfRange,
}

impl fmt::Display for ByteParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ByteParseError::Empty => write!(f, "empty size string"),
            ByteParseError::BadNumber => write!(f, "malformed number in size"),
            ByteParseError::BadUnit => write!(f, "unknown size unit"),
            ByteParseError::OutOfRange => write!(f, "size out of range"),
        }
    }
}

impl std::error::Error for ByteParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_round_trip() {
        // The exact strings from Table I.
        assert_eq!(format_bytes(941 * MB), "941MB");
        assert_eq!(format_bytes(2_710_000_000), "2.71GB");
        assert_eq!(parse_bytes("941MB").unwrap(), ByteSize(941 * MB));
        assert_eq!(parse_bytes("2.71GB").unwrap(), ByteSize(2_710_000_000));
    }

    #[test]
    fn magnitude_boundaries() {
        assert_eq!(format_bytes(0), "0B");
        assert_eq!(format_bytes(999), "999B");
        assert_eq!(format_bytes(1_000), "1.0KB");
        assert_eq!(format_bytes(999_949), "999.9KB");
        assert_eq!(format_bytes(1_000_000), "1MB");
        assert_eq!(format_bytes(1_500_000), "2MB", "rounds at MB scale");
        assert_eq!(format_bytes(GB), "1.00GB");
        assert_eq!(format_bytes(TB), "1.00TB");
    }

    #[test]
    fn parse_variants() {
        assert_eq!(parse_bytes("512").unwrap(), ByteSize(512));
        assert_eq!(parse_bytes("512B").unwrap(), ByteSize(512));
        assert_eq!(parse_bytes(" 1.5 KB ").unwrap(), ByteSize(1500));
        assert_eq!(parse_bytes("3gb").unwrap(), ByteSize(3 * GB));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(parse_bytes(""), Err(ByteParseError::Empty));
        assert_eq!(parse_bytes("abc"), Err(ByteParseError::BadNumber));
        assert_eq!(parse_bytes("1XB"), Err(ByteParseError::BadUnit));
        // Exponent notation is not part of the paper's format: the `e` reads
        // as the start of the unit, which is unknown.
        assert_eq!(parse_bytes("1e300GB"), Err(ByteParseError::BadUnit));
        assert_eq!(
            parse_bytes("99999999999999999999GB"),
            Err(ByteParseError::OutOfRange)
        );
    }

    #[test]
    fn constructors_and_arithmetic() {
        assert_eq!(ByteSize::from_gb(2).as_u64(), 2 * GB);
        assert_eq!(ByteSize::from_mb(1) + ByteSize::from_kb(1), ByteSize(1_001_000));
        let mut b = ByteSize::ZERO;
        b += ByteSize::from_kb(2);
        assert_eq!(b, ByteSize(2000));
        assert!((ByteSize::from_gb(3).as_gb_f64() - 3.0).abs() < 1e-12);
    }
}
