//! Experiment report emission: markdown tables, CSV, and JSON artifacts.
//!
//! Every experiment binary in `lidc-bench` produces a [`Report`] containing
//! one or more [`Table`]s; reports render as markdown (for EXPERIMENTS.md and
//! stdout) and persist as CSV + JSON under `results/` so runs can be diffed.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A titled table of string cells (already formatted by the experiment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table heading.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row data; each row must have `columns.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Panics if the cell count does not match the header.
    pub fn push_row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width {} != column count {} in table {:?}",
            cells.len(),
            self.columns.len(),
            self.title
        );
        self.rows.push(cells);
    }

    /// Render as a GitHub-flavoured markdown table (with title as a header).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        // Column widths for human-readable alignment.
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(line, " {:width$} |", cell, width = widths[i]);
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.columns));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Render as RFC-4180-ish CSV (quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Convert to a JSON value: `{title, columns, rows}`.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows,
        })
    }
}

/// A full experiment report: identifying metadata plus one or more tables.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. `table1`, `fig5`); used as the output file stem.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Free-form notes (assumptions, seed, parameters).
    pub notes: Vec<String>,
    /// Tables, in presentation order.
    pub tables: Vec<Table>,
}

impl Report {
    /// Create an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            notes: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Append a table.
    pub fn add_table(&mut self, t: Table) {
        self.tables.push(t);
    }

    /// Render the whole report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}\n", self.id, self.title);
        for note in &self.notes {
            let _ = writeln!(out, "> {note}");
        }
        if !self.notes.is_empty() {
            out.push('\n');
        }
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        out
    }

    /// Convert to a JSON value.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "id": self.id,
            "title": self.title,
            "notes": self.notes,
            "tables": self.tables.iter().map(Table::to_json).collect::<Vec<_>>(),
        })
    }

    /// Write `<dir>/<id>.md`, `<dir>/<id>.json`, and one CSV per table
    /// (`<dir>/<id>.<n>.csv`). Creates `dir` if needed.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.md", self.id)), self.to_markdown())?;
        let json = serde_json::to_string_pretty(&self.to_json())
            .map_err(io::Error::other)?;
        fs::write(dir.join(format!("{}.json", self.id)), json)?;
        for (i, t) in self.tables.iter().enumerate() {
            fs::write(dir.join(format!("{}.{}.csv", self.id, i)), t.to_csv())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("Computation Performance", &["SRR ID", "CPU", "Run Time"]);
        t.push_row(vec!["SRR2931415", "2", "8h9m50s"]);
        t.push_row(vec!["SRR5139395", "2", "24h16m12s"]);
        t
    }

    #[test]
    fn markdown_contains_all_cells_and_separator() {
        let md = sample_table().to_markdown();
        assert!(md.contains("### Computation Performance"));
        assert!(md.contains("| SRR ID"));
        assert!(md.contains("SRR2931415"));
        assert!(md.contains("24h16m12s"));
        assert!(md.lines().any(|l| l.starts_with("|--") || l.starts_with("|-")));
    }

    #[test]
    fn markdown_columns_align() {
        let md = sample_table().to_markdown();
        let data_lines: Vec<&str> = md.lines().filter(|l| l.starts_with('|')).collect();
        let widths: Vec<usize> = data_lines.iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "all rows equal width: {widths:?}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn report_writes_files() {
        let dir = std::env::temp_dir().join(format!("lidc-report-test-{}", std::process::id()));
        let mut r = Report::new("table1", "Computation Performance");
        r.note("seed=42");
        r.add_table(sample_table());
        r.write_to(&dir).unwrap();
        assert!(dir.join("table1.md").exists());
        assert!(dir.join("table1.json").exists());
        assert!(dir.join("table1.0.csv").exists());
        let json: serde_json::Value =
            serde_json::from_str(&fs::read_to_string(dir.join("table1.json")).unwrap()).unwrap();
        assert_eq!(json["id"], "table1");
        assert_eq!(json["tables"][0]["rows"][0][0], "SRR2931415");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_markdown_includes_notes() {
        let mut r = Report::new("x", "X");
        r.note("note-1");
        let md = r.to_markdown();
        assert!(md.contains("> note-1"));
    }
}
