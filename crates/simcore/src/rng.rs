//! Deterministic random number generation.
//!
//! All stochastic behaviour in the reproduction (workload arrival jitter,
//! synthetic sequence content, link-loss draws) flows from a single `u64`
//! seed. [`SplitMix64`] expands seeds, and [`DetRng`] (xoshiro256++) is the
//! working generator. Streams can be [`DetRng::derive`]d so independent
//! components get decorrelated but reproducible randomness regardless of the
//! order in which other components consume their own streams.

use rand::RngCore;

/// SplitMix64: a tiny, high-quality 64-bit mixer used to expand seeds.
///
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014). This is the canonical seeding procedure for the
/// xoshiro family.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a mixer from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Deterministic RNG: xoshiro256++ seeded via SplitMix64.
///
/// Implements [`rand::RngCore`] so it composes with the `rand` distribution
/// machinery, while guaranteeing bit-identical streams across platforms and
/// `rand` versions (unlike `StdRng`, whose algorithm is unspecified).
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Create a generator from a `u64` seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // xoshiro256++ must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        DetRng { s }
    }

    /// Derive an independent child stream identified by `tag`.
    ///
    /// Children with different tags are decorrelated; the same `(parent
    /// state, tag)` always yields the same child. Deriving does **not**
    /// advance the parent, so component A's stream does not depend on whether
    /// component B was created before or after it.
    pub fn derive(&self, tag: u64) -> DetRng {
        let mixed = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ tag.wrapping_mul(0xA24B_AED4_963E_E407);
        DetRng::new(mixed)
    }

    /// Derive a child stream from a string label (stable hash of the label).
    pub fn derive_str(&self, label: &str) -> DetRng {
        // FNV-1a over the label bytes: stable, allocation-free.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.derive(h)
    }

    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 64-bit output (inherent, so callers don't need the
    /// `rand::RngCore` trait in scope).
    pub fn next_u64(&mut self) -> u64 {
        self.next()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        // Lemire's multiply-shift rejection method for unbiased bounded draws.
        loop {
            let x = self.next();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low < n {
                let threshold = n.wrapping_neg() % n;
                if low < threshold {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }

    /// Draw from an exponential distribution with the given mean.
    pub fn next_exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Pick a uniformly random element of `slice`; `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_below(slice.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_order_independent() {
        let root = DetRng::new(99);
        let mut c1 = root.derive(5);
        // Consuming the sibling stream must not perturb tag-5's stream.
        let mut sibling = root.derive(6);
        for _ in 0..10 {
            sibling.next_u64();
        }
        let mut c2 = root.derive(5);
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn derive_str_stable() {
        let root = DetRng::new(3);
        let mut a = root.derive_str("gateway");
        let mut b = root.derive_str("gateway");
        let mut c = root.derive_str("datalake");
        assert_eq!(a.next_u64(), b.next_u64());
        // Overwhelmingly likely to differ.
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut rng = DetRng::new(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = DetRng::new(13);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut rng = DetRng::new(17);
        let n = 20_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| rng.next_exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < 0.15,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn fill_bytes_handles_partial_words() {
        let mut rng = DetRng::new(23);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = DetRng::new(29);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "a 100-element shuffle is not identity");
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = DetRng::new(31);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let xs = [1, 2, 3];
        assert!(xs.contains(rng.choose(&xs).unwrap()));
    }
}
