//! The metrics-key registry: the workspace's observability schema.
//!
//! Every counter/histogram/peak key recorded in non-test code MUST be
//! declared here, and every key declared here must be recorded somewhere —
//! `lidc-lint`'s `metric-key` rule enforces both directions statically,
//! and `tests/` drift guards re-check the recorded side at runtime (the
//! suites assert their recorded keys ⊆ [`ALL`]). A typo'd key is a silent
//! observability hole: the dashboards read zero while the sim happily
//! counts into a name nobody queries. Keys recorded only from test
//! regions (engine/metrics unit tests) are deliberately NOT registered.
//!
//! Workflow for a new metric: add the `pub const` with a doc comment,
//! reference it (or its exact literal) at the recording site, and the
//! lint goes green; drop the recording site and the lint flags the orphan
//! here until the const is removed too.

// ---------------------------------------------------------------- engine --

/// Batched-delivery bursts the engine coalesced (one per `on_batch` call).
pub const SIM_BATCH_BURSTS: &str = "sim.batch.bursts";
/// Messages that rode inside a coalesced batch instead of solo delivery.
pub const SIM_BATCH_COALESCED: &str = "sim.batch.coalesced_messages";
/// Largest single delivered batch (peak, `set_max`).
pub const SIM_BATCH_MAX_SIZE: &str = "sim.batch.max_size";
/// Messages dropped because their destination actor was dead.
pub const SIM_DROPPED_MESSAGES: &str = "sim.dropped_messages";
/// Horizon-scheduler lookahead advances taken.
pub const SIM_HORIZON_ADVANCES: &str = "sim.horizon.advances";
/// Horizon-scheduler rounds executed.
pub const SIM_HORIZON_ROUNDS: &str = "sim.horizon.rounds";
/// Horizon rounds that fell back to single-event steps on a timestamp tie.
pub const SIM_HORIZON_TIE_STEPS: &str = "sim.horizon.tie_steps";
/// Concurrent-wave executions (each wave runs many actors in parallel).
pub const SIM_PARALLEL_WAVES: &str = "sim.parallel.waves";
/// Actor runs that executed inside a parallel wave.
pub const SIM_PARALLEL_WAVE_RUNS: &str = "sim.parallel.wave_runs";

// ---------------------------------------------------------------- faults --

/// Fault activations applied by the controller.
pub const FAULT_INJECTED: &str = "fault.injected";
/// Fault heals (expiry or explicit) applied by the controller.
pub const FAULT_HEALED: &str = "fault.healed";
/// Faults the baseline adapter could not map onto its topology.
pub const FAULT_UNMAPPED: &str = "fault.unmapped";
/// Per-kind activation counters (`FaultKind::metric_key`).
pub const FAULT_CLUSTER_OUTAGE: &str = "fault.cluster_outage";
/// See [`FAULT_CLUSTER_OUTAGE`].
pub const FAULT_NODE_CRASH: &str = "fault.node_crash";
/// See [`FAULT_CLUSTER_OUTAGE`].
pub const FAULT_LINK_DOWN: &str = "fault.link_down";
/// See [`FAULT_CLUSTER_OUTAGE`].
pub const FAULT_LINK_DEGRADE: &str = "fault.link_degrade";
/// See [`FAULT_CLUSTER_OUTAGE`].
pub const FAULT_SLOW_PRODUCER: &str = "fault.slow_producer";
/// See [`FAULT_CLUSTER_OUTAGE`].
pub const FAULT_STALE_FIB: &str = "fault.stale_fib";
/// See [`FAULT_CLUSTER_OUTAGE`].
pub const FAULT_PACKET_CORRUPT: &str = "fault.packet_corrupt";
/// See [`FAULT_CLUSTER_OUTAGE`].
pub const FAULT_BYZANTINE_PRODUCER: &str = "fault.byzantine_producer";
/// See [`FAULT_CLUSTER_OUTAGE`].
pub const FAULT_REGION_OUTAGE: &str = "fault.region_outage";

// ------------------------------------------------------------- ndn plane --

/// Interests received by forwarders.
pub const NDN_RX_INTERESTS: &str = "ndn.rx_interests";
/// Data packets received by forwarders.
pub const NDN_RX_DATA: &str = "ndn.rx_data";
/// NACKs received by forwarders.
pub const NDN_RX_NACKS: &str = "ndn.rx_nacks";
/// Packets received on a face currently down.
pub const NDN_RX_FACE_DOWN: &str = "ndn.rx_face_down";
/// Packets received naming a face the forwarder doesn't have.
pub const NDN_RX_NO_SUCH_FACE: &str = "ndn.rx_no_such_face";
/// Transmissions dropped because the egress face was down.
pub const NDN_TX_FACE_DOWN: &str = "ndn.tx_face_down";
/// Transmissions dropped because the egress face doesn't exist.
pub const NDN_TX_NO_SUCH_FACE: &str = "ndn.tx_no_such_face";
/// Interests forwarded upstream after FIB lookup.
pub const NDN_INTERESTS_FORWARDED: &str = "ndn.interests_forwarded";
/// Interests NACKed for want of a FIB route.
pub const NDN_NO_ROUTE: &str = "ndn.no_route";
/// Interests dropped by the dead-nonce list.
pub const NDN_DUPLICATE_NONCE: &str = "ndn.duplicate_nonce";
/// Interests dropped at hop limit zero.
pub const NDN_HOP_LIMIT_DROPS: &str = "ndn.hop_limit_drops";
/// Interests aggregated onto an existing PIT entry.
pub const NDN_PIT_AGGREGATED: &str = "ndn.pit_aggregated";
/// PIT entries satisfied by Data.
pub const NDN_PIT_SATISFIED: &str = "ndn.pit_satisfied";
/// PIT entries expired by the sweeper.
pub const NDN_PIT_EXPIRED: &str = "ndn.pit_expired";
/// Content-store hits.
pub const NDN_CS_HITS: &str = "ndn.cs_hits";
/// Content-store misses.
pub const NDN_CS_MISSES: &str = "ndn.cs_misses";
/// Data rejected by CS admission policy.
pub const NDN_CS_ADMISSION_REJECTED: &str = "ndn.cs_admission_rejected";
/// CS evictions (entry count).
pub const NDN_CS_EVICT_COUNT: &str = "ndn.cs_evict.count";
/// CS evictions (bytes reclaimed).
pub const NDN_CS_EVICT_BYTES: &str = "ndn.cs_evict.bytes";
/// Peak CS occupancy in bytes (`set_max`).
pub const NDN_CS_BYTES_USED_PEAK: &str = "ndn.cs_bytes_used_peak";
/// Data arriving with no matching PIT entry.
pub const NDN_UNSOLICITED_DATA: &str = "ndn.unsolicited_data";
/// Interests NACKed because every viable next hop was down.
pub const NDN_FACE_DOWN_NACKED: &str = "ndn.face_down_nacked";
/// Interests rerouted around a down next hop.
pub const NDN_FACE_DOWN_REROUTED: &str = "ndn.face_down_rerouted";
/// Packets dropped by link-loss fault injection.
pub const NDN_LINK_LOSS_DROPS: &str = "ndn.link_loss_drops";
/// Packets dropped by link-corruption fault injection (legacy drop mode).
pub const NDN_LINK_CORRUPT_DROPS: &str = "ndn.link_corrupt_drops";
/// Data packets bit-flipped in flight by link-corruption fault injection
/// (honest mode: the damage travels downstream until verification).
pub const NDN_LINK_CORRUPT_FLIPS: &str = "ndn.link_corrupt_flips";
/// Data packets that failed signature verification at a forwarder.
pub const NDN_VERIFY_FAILED: &str = "ndn.verify_failed";
/// Unverifiable Data that would have satisfied a PIT entry and been
/// cached — the cache-poisoning attempts the verify gate refused.
pub const NDN_CS_POISON_REJECTED: &str = "ndn.cs_poison_rejected";
/// Verification-failure strikes recorded against an ingress face.
pub const NDN_QUARANTINE_STRIKES: &str = "ndn.quarantine_strikes";
/// Next hops excluded from forwarding because their face is quarantined.
pub const NDN_QUARANTINE_SKIPS: &str = "ndn.quarantine_skips";
/// Messages a forwarder did not understand.
pub const NDN_UNKNOWN_MESSAGE: &str = "ndn.unknown_message";
/// Link-level batch flushes (egress coalescing).
pub const NDN_BATCH_LINK_FLUSHES: &str = "ndn.batch.link_flushes";
/// Packets carried by link-level batches.
pub const NDN_BATCH_LINK_PACKETS: &str = "ndn.batch.link_packets";
/// Sharded-ingress parallel runs taken by a forwarder.
pub const NDN_PARALLEL_RUNS: &str = "ndn.parallel.runs";
/// Packets processed inside sharded-ingress parallel runs.
pub const NDN_PARALLEL_PACKETS: &str = "ndn.parallel.packets";

// ---------------------------------------------------------- compute plane --

/// Jobs admitted by the LIDC gateway.
pub const GATEWAY_JOBS_CREATED: &str = "gateway.jobs_created";
/// Gateway result-cache hits (dedup of identical submissions).
pub const GATEWAY_CACHE_HITS: &str = "gateway.cache_hits";
/// Results published into the namespace by the gateway.
pub const GATEWAY_RESULTS_PUBLISHED: &str = "gateway.results_published";
/// Status Interests answered by the gateway.
pub const GATEWAY_STATUS_QUERIES: &str = "gateway.status_queries";
/// Submissions rejected by gateway validation.
pub const GATEWAY_VALIDATION_FAILURES: &str = "gateway.validation_failures";
/// Request bursts the gateway absorbed via batch delivery.
pub const GATEWAY_BATCH_BURSTS: &str = "gateway.batch.bursts";
/// Requests that arrived inside gateway batches.
pub const GATEWAY_BATCH_REQUESTS: &str = "gateway.batch.requests";
/// Replies a byzantine gateway deliberately mangled (fault injection).
pub const GATEWAY_BYZANTINE_REPLIES: &str = "gateway.byzantine_replies";
/// Runs submitted by workload clients.
pub const CLIENT_SUBMISSIONS: &str = "client.submissions";
/// Runs that completed successfully end-to-end.
pub const CLIENT_COMPLETED_RUNS: &str = "client.completed_runs";
/// Runs that terminally failed.
pub const CLIENT_FAILED_RUNS: &str = "client.failed_runs";
/// Submissions rejected before admission.
pub const CLIENT_REJECTED_RUNS: &str = "client.rejected_runs";
/// Client resubmissions after a NACK/timeout.
pub const CLIENT_RESUBMISSIONS: &str = "client.resubmissions";
/// Result payload fetches completed by clients.
pub const CLIENT_RESULTS_FETCHED: &str = "client.results_fetched";
/// Data a client rejected on receive because its signature did not
/// verify (defense-in-depth behind the forwarder gate).
pub const CLIENT_VERIFY_FAILED: &str = "client.verify_failed";
/// HTTP-ingress requests translated into native submissions.
pub const HTTP_TRANSLATED: &str = "http.translated";
/// HTTP-ingress requests rejected at translation.
pub const HTTP_REJECTED: &str = "http.rejected";

// ------------------------------------------------------ k8s + baselines --

/// Messages the k8s control-plane actors did not understand.
pub const K8S_UNKNOWN_MESSAGE: &str = "k8s.unknown_message";
/// Jobs created by the centralized baseline controller.
pub const CENTRAL_JOBS_CREATED: &str = "central.jobs_created";
/// Objects served whole by the datalake file server.
pub const DATALAKE_OBJECTS_SERVED: &str = "datalake.objects_served";
/// Segments served by the datalake file server.
pub const DATALAKE_SEGMENTS_SERVED: &str = "datalake.segments_served";
/// Datalake requests for objects that don't exist.
pub const DATALAKE_NOT_FOUND: &str = "datalake.not_found";

/// Every registered key, for runtime drift guards. Keep in declaration
/// order; the uniqueness test sorts a copy.
pub const ALL: &[&str] = &[
    SIM_BATCH_BURSTS,
    SIM_BATCH_COALESCED,
    SIM_BATCH_MAX_SIZE,
    SIM_DROPPED_MESSAGES,
    SIM_HORIZON_ADVANCES,
    SIM_HORIZON_ROUNDS,
    SIM_HORIZON_TIE_STEPS,
    SIM_PARALLEL_WAVES,
    SIM_PARALLEL_WAVE_RUNS,
    FAULT_INJECTED,
    FAULT_HEALED,
    FAULT_UNMAPPED,
    FAULT_CLUSTER_OUTAGE,
    FAULT_NODE_CRASH,
    FAULT_LINK_DOWN,
    FAULT_LINK_DEGRADE,
    FAULT_SLOW_PRODUCER,
    FAULT_STALE_FIB,
    FAULT_PACKET_CORRUPT,
    FAULT_BYZANTINE_PRODUCER,
    FAULT_REGION_OUTAGE,
    NDN_RX_INTERESTS,
    NDN_RX_DATA,
    NDN_RX_NACKS,
    NDN_RX_FACE_DOWN,
    NDN_RX_NO_SUCH_FACE,
    NDN_TX_FACE_DOWN,
    NDN_TX_NO_SUCH_FACE,
    NDN_INTERESTS_FORWARDED,
    NDN_NO_ROUTE,
    NDN_DUPLICATE_NONCE,
    NDN_HOP_LIMIT_DROPS,
    NDN_PIT_AGGREGATED,
    NDN_PIT_SATISFIED,
    NDN_PIT_EXPIRED,
    NDN_CS_HITS,
    NDN_CS_MISSES,
    NDN_CS_ADMISSION_REJECTED,
    NDN_CS_EVICT_COUNT,
    NDN_CS_EVICT_BYTES,
    NDN_CS_BYTES_USED_PEAK,
    NDN_UNSOLICITED_DATA,
    NDN_FACE_DOWN_NACKED,
    NDN_FACE_DOWN_REROUTED,
    NDN_LINK_LOSS_DROPS,
    NDN_LINK_CORRUPT_DROPS,
    NDN_LINK_CORRUPT_FLIPS,
    NDN_VERIFY_FAILED,
    NDN_CS_POISON_REJECTED,
    NDN_QUARANTINE_STRIKES,
    NDN_QUARANTINE_SKIPS,
    NDN_UNKNOWN_MESSAGE,
    NDN_BATCH_LINK_FLUSHES,
    NDN_BATCH_LINK_PACKETS,
    NDN_PARALLEL_RUNS,
    NDN_PARALLEL_PACKETS,
    GATEWAY_JOBS_CREATED,
    GATEWAY_CACHE_HITS,
    GATEWAY_RESULTS_PUBLISHED,
    GATEWAY_STATUS_QUERIES,
    GATEWAY_VALIDATION_FAILURES,
    GATEWAY_BATCH_BURSTS,
    GATEWAY_BATCH_REQUESTS,
    GATEWAY_BYZANTINE_REPLIES,
    CLIENT_SUBMISSIONS,
    CLIENT_COMPLETED_RUNS,
    CLIENT_FAILED_RUNS,
    CLIENT_REJECTED_RUNS,
    CLIENT_RESUBMISSIONS,
    CLIENT_RESULTS_FETCHED,
    CLIENT_VERIFY_FAILED,
    HTTP_TRANSLATED,
    HTTP_REJECTED,
    K8S_UNKNOWN_MESSAGE,
    CENTRAL_JOBS_CREATED,
    DATALAKE_OBJECTS_SERVED,
    DATALAKE_SEGMENTS_SERVED,
    DATALAKE_NOT_FOUND,
];

/// True when `key` is registered. Runtime complement of the static
/// `metric-key` lint rule — the suites assert this over every key they
/// actually recorded.
pub fn is_registered(key: &str) -> bool {
    ALL.contains(&key)
}

/// The subset of `keys` that is not registered, sorted and deduplicated —
/// empty means the run stayed inside the schema.
pub fn unregistered<'a>(keys: impl IntoIterator<Item = &'a str>) -> Vec<String> {
    let mut bad: Vec<String> = keys
        .into_iter()
        .filter(|k| !is_registered(k))
        .map(|k| k.to_string())
        .collect();
    bad.sort();
    bad.dedup();
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The drift guard's static half: no duplicate declarations.
    #[test]
    fn registry_keys_are_unique() {
        let mut sorted: Vec<&str> = ALL.to_vec();
        sorted.sort();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(before, sorted.len(), "duplicate key in metrics_keys::ALL");
    }

    #[test]
    fn membership_helpers() {
        assert!(is_registered("sim.horizon.rounds"));
        assert!(!is_registered("sim.horizon.rouds"));
        assert_eq!(
            unregistered(["ndn.cs_hits", "nope.a", "nope.a", "fault.healed"]),
            vec!["nope.a".to_string()]
        );
    }
}
