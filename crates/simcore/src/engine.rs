//! The discrete-event engine: actors, messages, and the scheduler.
//!
//! Design notes:
//!
//! * **Determinism.** Events are dispatched in `(time, sequence)` order; the
//!   sequence number is a monotone counter, so two events scheduled for the
//!   same instant fire in scheduling order (FIFO). The engine is
//!   single-threaded; all randomness comes from the engine's [`DetRng`].
//! * **Messages are `Box<dyn Any + Send>`.** Each subsystem (NDN, K8s, LIDC)
//!   defines its own message structs and downcasts on receipt. This keeps
//!   `lidc-simcore` free of domain types and lets independently developed
//!   crates share one event loop.
//! * **Effects, not re-entrancy.** While an actor handles a message it
//!   records *effects* (sends, spawns, kills) in its [`Ctx`]; the engine
//!   applies them after the handler returns. This sidesteps aliasing issues
//!   without `RefCell` gymnastics and keeps handler execution atomic in
//!   virtual time.
//! * **Batched dispatch.** A maximal run of *consecutive* (in `(time, seq)`
//!   order) events addressed to the same actor at the same instant is
//!   delivered as one [`Actor::on_batch`] call instead of one handler
//!   invocation per message. The default `on_batch` loops [`Actor::on_message`],
//!   so untouched actors behave exactly as before; actors on burst-heavy
//!   paths (the LIDC gateway, the NDN forwarder) override it to amortize
//!   per-delivery work. The contract:
//!
//!   * messages within a batch are in their original FIFO (`seq`) order;
//!   * only *consecutive* same-destination events coalesce — an interleaved
//!     event for another actor ends the batch, so cross-actor delivery
//!     order is exactly what sequential dispatch would produce;
//!   * effects recorded while handling a batch are applied after the whole
//!     batch, which yields the same queue contents as per-message dispatch
//!     (same-instant effects always sort after already-queued events);
//!   * batching can be disabled with [`Sim::set_batching`] (equivalence
//!     tests run both modes and compare end states).
//!
//! # Parallel same-instant dispatch and the determinism contract
//!
//! [`Sim::set_threads`] (default 1 = fully serial) lets the engine execute a
//! **wave** — consecutive same-instant batches addressed to *distinct*
//! actors — concurrently on a persistent worker pool. Parallel mode is
//! **bit-identical** to serial mode: the same seed produces the same event
//! schedule, the same replies, the same metrics readouts (excepting the
//! `sim.batch.*`/`sim.parallel.*` dispatch-observability counters, whose
//! batch granularity the corner below can shift), and the same actor end
//! states at any thread count. That guarantee rests on four mechanisms,
//! which together define what parallel mode may and may not reorder:
//!
//! * **Opt-in concurrency.** Only actors that declare
//!   [`Concurrency::Concurrent`] via [`Actor::concurrency`] join a wave; an
//!   [`Concurrency::Exclusive`] actor's batch (the default) always runs
//!   alone, exactly as in serial mode. A wave is the maximal prefix of
//!   consecutive same-instant runs for distinct Concurrent actors; a
//!   repeated destination, an Exclusive actor, or a time change ends it.
//!   Batch boundaries match serial mode with one exception: when a wave
//!   member sends a zero-delay message to a *later* member of the same
//!   wave, serial dispatch would coalesce that message into the later
//!   actor's batch, while a wave delivers it as a separate follow-up batch
//!   (the run was already popped). Message *order* and every delivery are
//!   unchanged — only batch granularity (and thus the `sim.batch.*`
//!   observability counters and drain stats, which are outside the
//!   equivalence contract) can differ in that corner.
//! * **Per-actor RNG streams.** [`Ctx::rng`] draws from a stream derived
//!   once per actor from the master seed (not from a shared engine stream),
//!   so the values an actor draws depend only on its own draw history —
//!   never on which other actors ran before it at the same instant.
//!   Harness-level draws through [`Sim::rng`] use the master stream and are
//!   unaffected.
//! * **Buffered effects, merged in run order.** A wave handler records
//!   sends/kills into a private buffer; buffers are applied in the wave's
//!   run order (the `(time, seq)` order of each run's first event), so
//!   scheduled events receive exactly the sequence numbers serial execution
//!   would assign.
//! * **Buffered metrics, merged in run order.** Each wave handler writes a
//!   private [`Metrics`] buffer; buffers fold into the engine registry via
//!   [`Metrics::merge`] (counters add, `set_max` keys max, histogram
//!   samples append in run order), reproducing the serial registry exactly.
//!
//! What parallel mode may reorder: the *wall-clock* interleaving of
//! Concurrent handlers within one wave (invisible by construction, given
//! the rules below). What it may **not** reorder: anything observable —
//! cross-actor delivery order, effect sequencing, RNG streams, metrics.
//!
//! The rules Concurrent actors must obey (violations panic or race):
//! handlers must not call [`Ctx::spawn`], [`Ctx::kill`], or [`Ctx::halt`]
//! (these require the serial effect interlock; all three panic from a wave
//! worker), and must not write state shared with other Concurrent actors
//! (reading state that only Exclusive actors write is safe — an Exclusive
//! writer never overlaps a wave).
//!
//! # Horizon mode: conservative lookahead scheduling
//!
//! [`Sim::set_horizon`] switches [`Sim::run`]/[`Sim::run_until`] from the
//! single global event loop to a conservative (lookahead-based) **horizon
//! scheduler**. Actors are partitioned into **groups**
//! ([`Sim::new_group`] / [`Sim::assign_group`] / [`Sim::set_default_group`]);
//! each group owns a local event queue and a committed horizon, and groups
//! whose next event lies strictly below their **limit** advance
//! independently — a group's limit is the smallest `N(g) + L*(g→h)` over
//! *all* groups `g` (including `g = h`), where `N(g)` is `g`'s earliest
//! unprocessed event time and `L*` is the declared **lookahead** matrix
//! ([`Sim::set_lookahead`], derived from link latencies by the network
//! layer; `∞` when the groups never communicate) closed under min-plus
//! composition (Floyd–Warshall) at run entry, so an empty or relaying
//! group never weakens the bound. The closure leaves the diagonal at the
//! minimum *cycle* weight, making the `g = h` term `N(h)` + h's shortest
//! round-trip — an event h processes can loop through a neighbour back
//! into h's own queue, and the window must not outrun it. Deep dive:
//! `docs/ENGINE.md`.
//!
//! **Equivalence.** Horizon mode is bit-identical to the legacy loop — same
//! replies, same actor end states, same counters, same schedules — at any
//! thread count, excepting the `sim.batch.*`/`sim.parallel.*`/
//! `sim.horizon.*` dispatch-observability counters (batch *granularity* may
//! coarsen inside a window, never message order) and raw histogram sample
//! *order* (summaries are permutation-insensitive by construction). The
//! guarantee rests on the canonical event key: every event is stamped
//! `(time, sent_at, source, seq)` — delivery time, the instant the sender
//! recorded the send, the sender's actor id (`u32::MAX` for harness sends),
//! and a per-sender monotone counter. Both modes dispatch queued events in
//! key order, so the global interleaving no longer depends on *when* an
//! event was enqueued, only on who sent it and when — which is identical in
//! both modes by induction.
//!
//! When no group can advance (every head is at its limit — e.g. groups
//! coupled by zero lookahead, or everyone clamped at the foreground
//! frontier), the scheduler falls back to **tie-steps**: it pops the
//! globally minimal key, exactly reproducing the legacy loop event for
//! event, batch boundary for batch boundary. A **barrier group**
//! ([`Sim::set_barrier_group`]) declares zero lookahead to every other
//! group, so nobody advances past its next event — the `FaultController`
//! uses this to make zero-delay cross-group fault injections land at
//! identical instants in both modes.
//!
//! With [`Sim::set_threads`] `> 1`, groups that can advance in the same
//! round execute on the worker pool concurrently (safe because every
//! cross-group effect provably arrives at or beyond the receiver's limit);
//! runtime causality asserts back the proof. Dynamic actors: [`Ctx::spawn`]
//! spawns into the **caller's group** at its committed horizon and works
//! under serial horizon execution (threads = 1, or a single-CPU host where
//! rounds inline); like waves, spawn/kill/halt panic from a pooled round.
//! Cross-group [`Ctx::kill`] panics in horizon mode (the target may have
//! advanced past the killer's clock); [`Ctx::halt`] stops the loop at the
//! end of the current round (best-effort — groups ahead of the halting
//! instant keep their progress).

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use crate::metrics::Metrics;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// A type-erased message. Use [`Msg::downcast`] (inherited from `Box<dyn
/// Any>`) to recover the concrete type.
pub type Msg = Box<dyn Any + Send>;

/// Identifies an actor registered with a [`Sim`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(u32);

impl ActorId {
    /// Raw index (useful for diagnostics and per-actor RNG derivation).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// Whether an actor's handlers may execute concurrently with *other*
/// actors' handlers at the same virtual instant (see the module docs for
/// the full determinism contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Concurrency {
    /// The default: this actor's batches always run alone, exactly as under
    /// serial dispatch. Safe for every actor.
    #[default]
    Exclusive,
    /// This actor's same-instant batch may run on a worker thread
    /// concurrently with other Concurrent actors' batches. The actor's
    /// handlers must not spawn/kill/halt (panics) and must not write state
    /// shared with other Concurrent actors.
    Concurrent,
}

/// A simulated component: it receives messages and reacts by recording
/// effects on the [`Ctx`].
pub trait Actor: Send + 'static {
    /// Handle one message delivered at the current virtual time.
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>);

    /// Declare whether this actor may join a parallel same-instant wave
    /// (default: [`Concurrency::Exclusive`] — never). See the module docs
    /// for the obligations [`Concurrency::Concurrent`] takes on.
    fn concurrency(&self) -> Concurrency {
        Concurrency::Exclusive
    }

    /// Handle a coalesced burst of messages, all addressed to this actor at
    /// the same virtual instant, in FIFO order (see the module docs for the
    /// full contract). Implementations must consume every message in
    /// `msgs`. The default drains the buffer through [`Actor::on_message`],
    /// preserving per-message behavior for actors that don't opt in.
    fn on_batch(&mut self, msgs: &mut Vec<Msg>, ctx: &mut Ctx<'_>) {
        for msg in msgs.drain(..) {
            self.on_message(msg, ctx);
        }
    }

    /// Called once when the actor is registered, before any message.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
}

/// Object-safe shim adding downcasting on top of [`Actor`]; blanket-implemented.
trait AnyActor: Actor {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Actor> AnyActor for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Identifies an actor group — the unit of independent time advancement in
/// horizon mode (see the module docs). Group 0 ([`GroupId::DEFAULT`]) always
/// exists; every actor belongs to exactly one group. In legacy mode groups
/// are inert bookkeeping.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(u32);

impl GroupId {
    /// The default group every actor joins unless told otherwise.
    pub const DEFAULT: GroupId = GroupId(0);

    /// Raw index (diagnostics).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group#{}", self.0)
    }
}

/// The `source` stamp for events enqueued from outside any handler
/// ([`Sim::send`]/[`Sim::send_after`]). Sorts after every actor id, so a
/// harness send at instant `t` lands after same-instant actor sends — the
/// order the harness observes anyway (it only runs between `run` calls).
const HARNESS_SOURCE: u32 = u32::MAX;

/// The canonical event key: `(time, sent_at, source, seq)`. Dispatch pops
/// queued events in key order in *both* execution modes; see the module
/// docs for why this makes horizon mode bit-identical to the legacy loop.
type EventKey = (SimTime, SimTime, u32, u64);

enum Effect {
    Send {
        at: SimTime,
        to: ActorId,
        msg: Msg,
        background: bool,
        /// Instant the sender recorded the send (its `now`).
        sent_at: SimTime,
        /// Sender actor id (or [`HARNESS_SOURCE`]).
        source: u32,
        /// Per-sender monotone counter.
        seq: u64,
    },
    Spawn {
        id: ActorId,
        label: String,
        actor: Box<dyn AnyActor>,
        /// The spawner's group: children join their parent's group.
        group: u32,
    },
    Kill {
        id: ActorId,
        /// The killer's group: horizon mode rejects cross-group kills.
        by_group: u32,
    },
    Halt,
}

/// The handler-side view of the engine: scheduling, randomness, metrics.
pub struct Ctx<'a> {
    self_id: ActorId,
    now: SimTime,
    rng: &'a mut DetRng,
    metrics: &'a mut Metrics,
    /// `None` when this context belongs to a parallel worker (a same-instant
    /// wave, or a pooled horizon round): spawn (which must allocate from the
    /// engine's id counter synchronously) is unavailable there, as are
    /// kill/halt (see the module docs).
    next_actor_id: Option<&'a mut u32>,
    /// This actor's per-sender send counter (part of the canonical event
    /// key; lives in the actor's slot and travels with it into workers).
    send_seq: &'a mut u64,
    /// The handling actor's group (children spawn into it).
    group: u32,
    effects: &'a mut Vec<Effect>,
}

impl Ctx<'_> {
    /// The id of the actor currently handling a message.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's deterministic RNG stream, derived once from the master
    /// seed. Draws depend only on the actor's own history, never on what
    /// other actors ran first — the property parallel dispatch relies on.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// The group of the actor currently handling a message.
    pub fn group(&self) -> GroupId {
        GroupId(self.group)
    }

    /// Record a send effect stamped with the canonical event key (see the
    /// module docs): `sent_at` = now, `source` = self, `seq` = this actor's
    /// next send counter.
    fn push_send(&mut self, at: SimTime, to: ActorId, msg: Msg, background: bool) {
        let seq = *self.send_seq;
        *self.send_seq += 1;
        self.effects.push(Effect::Send {
            at,
            to,
            msg,
            background,
            sent_at: self.now,
            source: self.self_id.0,
            seq,
        });
    }

    /// Deliver `msg` to `to` at the current instant (after the current
    /// handler completes).
    pub fn send<M: Send + 'static>(&mut self, to: ActorId, msg: M) {
        self.send_after(SimDuration::ZERO, to, msg);
    }

    /// Deliver `msg` to `to` after `delay`.
    pub fn send_after<M: Send + 'static>(&mut self, delay: SimDuration, to: ActorId, msg: M) {
        self.push_send(self.now + delay, to, Box::new(msg), false);
    }

    /// Deliver an already-boxed message after `delay` (used when relaying).
    pub fn send_boxed_after(&mut self, delay: SimDuration, to: ActorId, msg: Msg) {
        self.push_send(self.now + delay, to, msg, false);
    }

    /// Schedule a message to self after `delay` (a timer).
    pub fn schedule_self<M: Send + 'static>(&mut self, delay: SimDuration, msg: M) {
        self.send_after(delay, self.self_id, msg);
    }

    /// Schedule a *background* (daemon) timer to self: the event fires in
    /// order like any other, but pending background events alone do not keep
    /// [`Sim::run`] alive. Use for unbounded periodic work (load
    /// advertisement, cache refresh) so simulations terminate when all
    /// *foreground* work — requests, jobs, replies — has drained.
    pub fn schedule_self_background<M: Send + 'static>(&mut self, delay: SimDuration, msg: M) {
        self.push_send(self.now + delay, self.self_id, Box::new(msg), true);
    }

    /// Register a new actor; it starts receiving messages immediately.
    /// Returns its id synchronously so the spawner can address it.
    ///
    /// The child joins the **caller's group**. In horizon mode it
    /// materializes at the caller's committed horizon — it is addressable
    /// and schedulable from the effect batch that spawned it onward, exactly
    /// as under the legacy loop (pinned by the spawn-mid-advance regression
    /// test).
    ///
    /// # Panics
    ///
    /// Panics when called from a parallel worker — a
    /// [`Concurrency::Concurrent`] actor's handler inside a same-instant
    /// wave, or any handler inside a pooled horizon round (threads > 1 on a
    /// multi-core host): id allocation is inherently serial. Under serial
    /// horizon execution spawn works from any handler.
    pub fn spawn<A: Actor>(&mut self, label: impl Into<String>, actor: A) -> ActorId {
        let Some(counter) = self.next_actor_id.as_deref_mut() else {
            panic!("Ctx::spawn is not available inside a parallel wave or pooled horizon round");
        };
        let id = ActorId(*counter);
        *counter += 1;
        self.effects.push(Effect::Spawn {
            id,
            label: label.into(),
            actor: Box::new(actor),
            group: self.group,
        });
        id
    }

    /// Remove an actor. Pending messages to it are silently dropped (the
    /// `sim.dropped_messages` counter records how many).
    ///
    /// # Panics
    ///
    /// Panics from a parallel worker (a kill applied mid-wave or mid-round
    /// could not reproduce serial drop accounting). In horizon mode the
    /// target must additionally be in the **caller's own group** — a
    /// cross-group target may already have advanced past the caller's
    /// clock, so the engine panics rather than diverge.
    pub fn kill(&mut self, id: ActorId) {
        assert!(
            self.next_actor_id.is_some(),
            "Ctx::kill is not available inside a parallel wave or pooled horizon round"
        );
        self.effects.push(Effect::Kill {
            id,
            by_group: self.group,
        });
    }

    /// Stop the simulation after the current handler completes. In horizon
    /// mode the stop is best-effort: the loop exits at the end of the
    /// current round, and groups that had already advanced past the halting
    /// instant keep their progress.
    ///
    /// # Panics
    ///
    /// Panics from a parallel worker (a halt mid-wave could not stop
    /// runs that already executed concurrently, diverging from serial).
    pub fn halt(&mut self) {
        assert!(
            self.next_actor_id.is_some(),
            "Ctx::halt is not available inside a parallel wave or pooled horizon round"
        );
        self.effects.push(Effect::Halt);
    }
}

struct Scheduled {
    time: SimTime,
    /// Instant the sender recorded the send (≤ `time`).
    sent_at: SimTime,
    /// Sender actor id, or [`HARNESS_SOURCE`].
    source: u32,
    /// Per-sender monotone counter.
    seq: u64,
    to: ActorId,
    msg: Msg,
    background: bool,
}

impl Scheduled {
    /// The canonical dispatch key (total order: `(source, seq)` pairs are
    /// unique).
    fn key(&self) -> EventKey {
        (self.time, self.sent_at, self.source, self.seq)
    }
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Per-actor message-drain statistics (batched-dispatch observability).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Messages delivered to this actor.
    pub messages: u64,
    /// Handler invocations (each serving one batch of ≥ 1 messages).
    pub batches: u64,
    /// Largest single batch delivered.
    pub max_batch: u64,
}

impl DrainStats {
    /// Mean messages per handler invocation (0 when never delivered).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.messages as f64 / self.batches as f64
        }
    }
}

struct Slot {
    actor: Option<Box<dyn AnyActor>>,
    label: String,
    drain: DrainStats,
    /// This actor's private RNG stream (see [`Ctx::rng`]).
    rng: DetRng,
    /// Per-sender send counter (canonical event key component).
    send_seq: u64,
    /// The group this actor belongs to (horizon-mode partitioning).
    group: u32,
}

impl Slot {
    /// Placeholder left in the roster while the real slot travels inside a
    /// horizon group job; overwritten when the job's result merges back.
    fn vacant(group: u32) -> Slot {
        Slot {
            actor: None,
            label: String::new(),
            drain: DrainStats::default(),
            rng: DetRng::new(0),
            send_seq: 0,
            group,
        }
    }
}

/// Per-group metadata (label + barrier flag); the scheduling state lives in
/// a run-scoped [`HzState`].
struct GroupMeta {
    label: String,
    /// A barrier group declares zero lookahead to every other group: nobody
    /// advances past its next event (the `FaultController` contract).
    barrier: bool,
}

/// The discrete-event simulator.
pub struct Sim {
    now: SimTime,
    /// Per-sender send counter for harness-level sends (see
    /// [`HARNESS_SOURCE`]).
    harness_seq: u64,
    queue: BinaryHeap<Reverse<Scheduled>>,
    /// Queued events that are *not* background timers; [`Sim::run`] stops
    /// when this reaches zero even if daemon timers remain queued.
    foreground_queued: usize,
    slots: Vec<Slot>,
    next_actor_id: u32,
    rng: DetRng,
    metrics: Metrics,
    halted: bool,
    events_processed: u64,
    /// Same-instant coalescing switch (see module docs); on by default.
    batching: bool,
    /// Reused delivery buffer for batched dispatch.
    batch_buf: Vec<Msg>,
    /// Root for deriving per-actor RNG streams (never drawn from directly).
    actor_rng_root: DetRng,
    /// Worker count for parallel same-instant waves; 1 = fully serial.
    threads: usize,
    /// Lazily created worker pool (present only while `threads > 1`).
    pool: Option<Pool<WaveJob, WaveOut>>,
    /// Recycled message buffers for wave runs beyond the first.
    wave_bufs: Vec<Vec<Msg>>,
    /// Horizon-mode switch (see the module docs); off by default.
    horizon: bool,
    /// Group table (index = group id); group 0 always exists.
    groups: Vec<GroupMeta>,
    /// The group newly spawned top-level actors join.
    default_group: u32,
    /// Declared lookahead edges `(from, to, nanos)`; min-combined and closed
    /// under min-plus composition at run entry.
    lookahead: Vec<(u32, u32, u64)>,
    /// Lazily created pool for parallel horizon rounds.
    horizon_pool: Option<Pool<GroupJob, GroupOut>>,
}

impl Sim {
    /// Create an engine seeded with `seed` (see DESIGN.md §8).
    pub fn new(seed: u64) -> Self {
        let rng = DetRng::new(seed);
        let actor_rng_root = rng.derive_str("actor-streams");
        Sim {
            now: SimTime::ZERO,
            harness_seq: 0,
            queue: BinaryHeap::new(),
            foreground_queued: 0,
            slots: Vec::new(),
            next_actor_id: 0,
            rng,
            metrics: Metrics::new(),
            halted: false,
            events_processed: 0,
            batching: true,
            batch_buf: Vec::new(),
            actor_rng_root,
            threads: 1,
            pool: None,
            wave_bufs: Vec::new(),
            horizon: false,
            groups: vec![GroupMeta {
                label: "default".to_owned(),
                barrier: false,
            }],
            default_group: 0,
            lookahead: Vec::new(),
            horizon_pool: None,
        }
    }

    /// Enable or disable the horizon scheduler for [`Sim::run`] /
    /// [`Sim::run_until`] (off by default; see the module docs). Both modes
    /// are bit-identical; the legacy loop stays available as the reference
    /// oracle.
    pub fn set_horizon(&mut self, on: bool) {
        self.horizon = on;
    }

    /// Whether the horizon scheduler is enabled.
    pub fn horizon(&self) -> bool {
        self.horizon
    }

    /// Create a new actor group (horizon-mode partitioning; inert in legacy
    /// mode).
    pub fn new_group(&mut self, label: impl Into<String>) -> GroupId {
        let id = self.groups.len() as u32;
        self.groups.push(GroupMeta {
            label: label.into(),
            barrier: false,
        });
        GroupId(id)
    }

    /// Set the group newly spawned top-level actors join; returns the
    /// previous default so callers can scope the change:
    ///
    /// ```ignore
    /// let prev = sim.set_default_group(g);
    /// // ... deploy a subsystem: every spawn lands in `g` ...
    /// sim.set_default_group(prev);
    /// ```
    pub fn set_default_group(&mut self, g: GroupId) -> GroupId {
        assert!((g.0 as usize) < self.groups.len(), "unknown group {g:?}");
        let prev = GroupId(self.default_group);
        self.default_group = g.0;
        prev
    }

    /// The group newly spawned top-level actors currently join.
    pub fn default_group(&self) -> GroupId {
        GroupId(self.default_group)
    }

    /// Move an actor to `g`. Call during world construction, before events
    /// for the actor are queued — queued events are partitioned by the
    /// target's group at run entry.
    pub fn assign_group(&mut self, id: ActorId, g: GroupId) {
        assert!((g.0 as usize) < self.groups.len(), "unknown group {g:?}");
        let idx = id.0 as usize;
        self.ensure_slot(idx);
        self.slots[idx].group = g.0;
    }

    /// The group an actor belongs to.
    pub fn actor_group(&self, id: ActorId) -> GroupId {
        GroupId(self.group_of(id))
    }

    /// A group's registration label.
    pub fn group_label(&self, g: GroupId) -> &str {
        &self.groups[g.0 as usize].label
    }

    /// Number of groups (including the default group).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// All group ids in creation order (index 0 = the default group).
    pub fn group_ids(&self) -> Vec<GroupId> {
        (0..self.groups.len() as u32).map(GroupId).collect()
    }

    /// Declare that every message from an actor in `from` to an actor in
    /// `to` is delayed by at least `min_latency` — the **lookahead** the
    /// horizon scheduler exploits (typically a link's floor latency; the
    /// network layer declares this when connecting faces across groups).
    /// Repeated declarations min-combine; undeclared pairs default to `∞`
    /// (no communication). Declaring *less* than the true minimum is always
    /// safe (it only costs slack); declaring more trips the runtime
    /// causality assert.
    pub fn set_lookahead(&mut self, from: GroupId, to: GroupId, min_latency: SimDuration) {
        assert!((from.0 as usize) < self.groups.len(), "unknown group {from:?}");
        assert!((to.0 as usize) < self.groups.len(), "unknown group {to:?}");
        if from == to {
            return;
        }
        self.lookahead.push((from.0, to.0, min_latency.as_nanos()));
    }

    /// Mark `g` as a **barrier group**: zero lookahead to every other group,
    /// so no group advances past `g`'s next queued event. Actors in `g` may
    /// then send zero-delay messages to any group (the `FaultController`
    /// injection contract).
    pub fn set_barrier_group(&mut self, g: GroupId) {
        assert!((g.0 as usize) < self.groups.len(), "unknown group {g:?}");
        self.groups[g.0 as usize].barrier = true;
    }

    /// The group an actor id maps to (default group for unknown ids).
    fn group_of(&self, id: ActorId) -> u32 {
        self.slots.get(id.0 as usize).map(|s| s.group).unwrap_or(0)
    }

    /// The declared lookahead matrix (row-major `from * n + to`, nanos,
    /// `u64::MAX` = ∞), with barrier rows zeroed and closed under min-plus
    /// composition (Floyd–Warshall) so relaying through an idle group never
    /// weakens a bound — the property that lets an empty group impose no
    /// constraint.
    ///
    /// The diagonal is **not** seeded with zero: `m[g][g]` closes to the
    /// minimum *cycle* weight through other groups (∞ when no cycle
    /// exists). A group's window limit must respect its own head plus that
    /// cycle lookahead — an event the group processes at `t` can round-trip
    /// through a neighbour and land back in its own queue at
    /// `t + cycle`, which the window must not have run past.
    fn closed_lookahead(&self) -> Vec<u64> {
        let n = self.groups.len();
        let mut m = vec![u64::MAX; n * n];
        for &(f, t, lat) in &self.lookahead {
            let cell = &mut m[f as usize * n + t as usize];
            *cell = (*cell).min(lat);
        }
        for (g, meta) in self.groups.iter().enumerate() {
            if meta.barrier {
                for k in 0..n {
                    if k != g {
                        m[g * n + k] = 0;
                    }
                }
            }
        }
        for k in 0..n {
            for i in 0..n {
                let ik = m[i * n + k];
                if ik == u64::MAX {
                    continue;
                }
                for j in 0..n {
                    let kj = m[k * n + j];
                    if kj == u64::MAX {
                        continue;
                    }
                    let via = ik.saturating_add(kj);
                    if via < m[i * n + j] {
                        m[i * n + j] = via;
                    }
                }
            }
        }
        m
    }

    /// Enable or disable same-instant batch coalescing (on by default).
    /// With batching off every message is delivered through
    /// [`Actor::on_message`] individually — the pre-batching behavior,
    /// kept for batch/sequential equivalence testing.
    pub fn set_batching(&mut self, on: bool) {
        self.batching = on;
    }

    /// Set the worker count for parallel same-instant dispatch (see the
    /// module docs for the determinism contract). `n <= 1` restores fully
    /// serial execution and tears down the pool. The schedule, metrics,
    /// and actor end states are bit-identical at every `n`.
    pub fn set_threads(&mut self, n: usize) {
        let n = n.max(1);
        if n != self.threads {
            self.threads = n;
            self.pool = None;
            self.horizon_pool = None;
        }
    }

    /// The configured parallel-dispatch worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The engine RNG (for harness-level draws such as workload generation).
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// The metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Read-only metrics access.
    pub fn metrics_ref(&self) -> &Metrics {
        &self.metrics
    }

    /// Register a top-level actor (into the current default group — see
    /// [`Sim::set_default_group`]) and invoke its `on_start`.
    pub fn spawn<A: Actor>(&mut self, label: impl Into<String>, actor: A) -> ActorId {
        let id = ActorId(self.next_actor_id);
        self.next_actor_id += 1;
        self.install(id, label.into(), Box::new(actor), self.default_group);
        id
    }

    /// Slots are indexed by actor id; ids are allocated eagerly (so handlers
    /// can address children synchronously) but installed lazily, possibly out
    /// of order when spawns nest. Grow the table on demand to keep the
    /// id→index invariant regardless of installation order.
    fn ensure_slot(&mut self, idx: usize) {
        while self.slots.len() <= idx {
            let id = self.slots.len() as u64;
            self.slots.push(Slot {
                actor: None,
                label: String::new(),
                drain: DrainStats::default(),
                rng: self.actor_rng_root.derive(id),
                send_seq: 0,
                group: 0,
            });
        }
    }

    fn install(&mut self, id: ActorId, label: String, actor: Box<dyn AnyActor>, group: u32) {
        let idx = id.0 as usize;
        self.ensure_slot(idx);
        debug_assert!(self.slots[idx].actor.is_none(), "actor id reused");
        self.slots[idx] = Slot {
            actor: Some(actor),
            label,
            drain: DrainStats::default(),
            rng: self.actor_rng_root.derive(u64::from(id.0)),
            send_seq: 0,
            group,
        };
        self.run_start_hook(id);
    }

    fn run_start_hook(&mut self, id: ActorId) {
        let idx = id.0 as usize;
        let Some(mut actor) = self.slots[idx].actor.take() else {
            return;
        };
        let mut rng = self.slots[idx].rng.clone();
        let mut send_seq = self.slots[idx].send_seq;
        let group = self.slots[idx].group;
        let mut effects = Vec::new();
        {
            let mut ctx = Ctx {
                self_id: id,
                now: self.now,
                rng: &mut rng,
                metrics: &mut self.metrics,
                next_actor_id: Some(&mut self.next_actor_id),
                send_seq: &mut send_seq,
                group,
                effects: &mut effects,
            };
            actor.on_start(&mut ctx);
        }
        self.slots[idx].rng = rng;
        self.slots[idx].send_seq = send_seq;
        if self.slots[idx].actor.is_none() {
            self.slots[idx].actor = Some(actor);
        }
        self.apply_effects(effects);
    }

    /// The human label an actor was registered under.
    pub fn label(&self, id: ActorId) -> &str {
        &self.slots[id.0 as usize].label
    }

    /// Whether an actor is still alive.
    pub fn is_alive(&self, id: ActorId) -> bool {
        self.slots
            .get(id.0 as usize)
            .map(|s| s.actor.is_some())
            .unwrap_or(false)
    }

    /// Immutable access to a registered actor's concrete state.
    pub fn actor<T: Actor>(&self, id: ActorId) -> Option<&T> {
        self.slots
            .get(id.0 as usize)?
            .actor
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable access to a registered actor's concrete state (harness use).
    pub fn actor_mut<T: Actor>(&mut self, id: ActorId) -> Option<&mut T> {
        self.slots
            .get_mut(id.0 as usize)?
            .actor
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Remove an actor from outside a handler.
    pub fn kill(&mut self, id: ActorId) {
        if let Some(slot) = self.slots.get_mut(id.0 as usize) {
            slot.actor = None;
        }
    }

    /// Enqueue a message for delivery at the current instant.
    pub fn send<M: Send + 'static>(&mut self, to: ActorId, msg: M) {
        self.schedule(self.now, to, Box::new(msg), false);
    }

    /// Enqueue a message for delivery after `delay`.
    pub fn send_after<M: Send + 'static>(&mut self, delay: SimDuration, to: ActorId, msg: M) {
        self.schedule(self.now + delay, to, Box::new(msg), false);
    }

    /// Enqueue a harness-level event, stamped with [`HARNESS_SOURCE`].
    fn schedule(&mut self, at: SimTime, to: ActorId, msg: Msg, background: bool) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.harness_seq;
        self.harness_seq += 1;
        if !background {
            self.foreground_queued += 1;
        }
        self.queue.push(Reverse(Scheduled {
            time: at,
            sent_at: self.now,
            source: HARNESS_SOURCE,
            seq,
            to,
            msg,
            background,
        }));
    }

    fn apply_effects(&mut self, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send {
                    at,
                    to,
                    msg,
                    background,
                    sent_at,
                    source,
                    seq,
                } => {
                    debug_assert!(at >= self.now, "scheduling into the past");
                    if !background {
                        self.foreground_queued += 1;
                    }
                    self.queue.push(Reverse(Scheduled {
                        time: at,
                        sent_at,
                        source,
                        seq,
                        to,
                        msg,
                        background,
                    }));
                }
                Effect::Spawn {
                    id,
                    label,
                    actor,
                    group,
                } => {
                    self.install(id, label, actor, group);
                }
                Effect::Kill { id, .. } => {
                    if let Some(slot) = self.slots.get_mut(id.0 as usize) {
                        slot.actor = None;
                    }
                }
                Effect::Halt => self.halted = true,
            }
        }
    }

    /// Pop the maximal run of consecutive (seq-order) events for `to` at
    /// `time` into `batch`. Stopping at the first event for another actor
    /// preserves cross-actor delivery order.
    fn coalesce_run(&mut self, time: SimTime, to: ActorId, batch: &mut Vec<Msg>) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.time != time || head.to != to {
                break;
            }
            let Reverse(next) = self.queue.pop().expect("peeked");
            if !next.background {
                self.foreground_queued -= 1;
            }
            batch.push(next.msg);
        }
    }

    /// Whether `to` is alive and has declared [`Concurrency::Concurrent`].
    fn is_concurrent(&self, to: ActorId) -> bool {
        self.slots
            .get(to.0 as usize)
            .and_then(|s| s.actor.as_deref())
            .map(|a| a.concurrency() == Concurrency::Concurrent)
            .unwrap_or(false)
    }

    /// Dispatch the next event — plus, when batching is enabled, every
    /// consecutively-queued event for the same actor at the same instant
    /// (delivered as one [`Actor::on_batch`] call). With
    /// [`Sim::set_threads`] `> 1`, consecutive same-instant batches for
    /// distinct [`Concurrency::Concurrent`] actors execute as one parallel
    /// wave (bit-identical results; see the module docs). Returns `false`
    /// when the queue is empty or the simulation has been halted.
    pub fn step(&mut self) -> bool {
        if self.halted {
            return false;
        }
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event from the past");
        if !ev.background {
            self.foreground_queued -= 1;
        }
        self.now = ev.time;
        let to = ev.to;
        let mut batch = std::mem::take(&mut self.batch_buf);
        batch.clear();
        batch.push(ev.msg);
        if self.batching {
            self.coalesce_run(ev.time, to, &mut batch);
        }
        if self.threads > 1 && self.batching && self.is_concurrent(to) {
            // Collect the wave: consecutive same-instant runs for distinct
            // Concurrent actors. A repeated destination, an Exclusive (or
            // dead) actor, or a time change ends it — exactly the batch
            // boundaries serial dispatch would produce.
            let mut runs: Vec<(ActorId, Vec<Msg>)> = vec![(to, batch)];
            while let Some(Reverse(head)) = self.queue.peek() {
                if head.time != ev.time {
                    break;
                }
                let next_to = head.to;
                if runs.iter().any(|(a, _)| *a == next_to) || !self.is_concurrent(next_to) {
                    break;
                }
                let mut buf = self.wave_bufs.pop().unwrap_or_default();
                buf.clear();
                self.coalesce_run(ev.time, next_to, &mut buf);
                debug_assert!(!buf.is_empty(), "peeked run is non-empty");
                runs.push((next_to, buf));
            }
            if runs.len() > 1 {
                self.dispatch_wave(runs);
                return true;
            }
            batch = runs.pop().expect("first run").1;
        }
        self.deliver_serial(to, batch);
        true
    }

    /// Deliver one coalesced batch on the caller's thread (serial path).
    fn deliver_serial(&mut self, to: ActorId, batch: Vec<Msg>) {
        self.deliver_batch(to, batch, None);
    }

    /// Deliver one coalesced batch on the caller's thread. With `hz` set
    /// (horizon tie-step) effects route through the group queues; without it
    /// (legacy loop) they land in the global queue. One implementation so
    /// the two modes cannot drift apart.
    fn deliver_batch(&mut self, to: ActorId, mut batch: Vec<Msg>, hz: Option<&mut HzState>) {
        self.events_processed += batch.len() as u64;
        let idx = to.0 as usize;
        let taken = self.slots.get_mut(idx).and_then(|s| s.actor.take());
        let Some(mut actor) = taken else {
            self.metrics.incr("sim.dropped_messages", batch.len() as u64);
            batch.clear();
            self.batch_buf = batch;
            return;
        };
        {
            let slot = &mut self.slots[idx];
            slot.drain.messages += batch.len() as u64;
            slot.drain.batches += 1;
            slot.drain.max_batch = slot.drain.max_batch.max(batch.len() as u64);
        }
        if batch.len() > 1 {
            self.metrics.incr("sim.batch.bursts", 1);
            self.metrics
                .incr("sim.batch.coalesced_messages", batch.len() as u64 - 1);
            self.metrics.set_max("sim.batch.max_size", batch.len() as u64);
        }
        let mut rng = self.slots[idx].rng.clone();
        let mut send_seq = self.slots[idx].send_seq;
        let group = self.slots[idx].group;
        let mut effects = Vec::new();
        {
            let mut ctx = Ctx {
                self_id: to,
                now: self.now,
                rng: &mut rng,
                metrics: &mut self.metrics,
                next_actor_id: Some(&mut self.next_actor_id),
                send_seq: &mut send_seq,
                group,
                effects: &mut effects,
            };
            if batch.len() == 1 {
                let msg = batch.pop().expect("one message");
                actor.on_message(msg, &mut ctx);
            } else {
                actor.on_batch(&mut batch, &mut ctx);
                debug_assert!(batch.is_empty(), "on_batch must drain its input");
            }
        }
        batch.clear();
        self.batch_buf = batch;
        self.slots[idx].rng = rng;
        self.slots[idx].send_seq = send_seq;
        // The actor may have killed itself via ctx.kill(self_id); only put it
        // back if nothing reclaimed the slot meanwhile.
        if self.slots[idx].actor.is_none() {
            self.slots[idx].actor = Some(actor);
        }
        // A self-kill effect is applied after reinstatement, so it still wins.
        match hz {
            Some(hz) => self.apply_effects_hz(hz, effects),
            None => self.apply_effects(effects),
        }
    }

    /// Execute a collected wave of ≥ 2 distinct-actor runs concurrently and
    /// merge the buffered results in run order (see the module docs).
    fn dispatch_wave(&mut self, runs: Vec<(ActorId, Vec<Msg>)>) {
        let now = self.now;
        let jobs: Vec<WaveJob> = runs
            .into_iter()
            .map(|(to, msgs)| {
                let slot = &mut self.slots[to.0 as usize];
                let actor = slot.actor.take().expect("wave member is alive");
                let rng = slot.rng.clone();
                WaveJob {
                    to,
                    now,
                    msgs,
                    actor,
                    rng,
                    send_seq: slot.send_seq,
                    group: slot.group,
                }
            })
            .collect();
        let outs = if host_parallelism().min(self.threads) > 1 {
            let pool = self
                .pool
                .get_or_insert_with(|| Pool::new(self.threads, "sim-wave", execute_wave_job));
            pool.run(jobs)
        } else {
            // A single-CPU host can only lose to a pool: execute the wave
            // inline in run order — same buffered contexts, same merge,
            // bit-identical results, no thread overhead.
            jobs.into_iter().map(execute_wave_job).collect()
        };
        // Merge in run order: drain stats, engine batch metrics, per-worker
        // metrics buffers, effects (which assigns the sequence numbers
        // serial execution would have assigned), and buffer recycling.
        for out in outs {
            let idx = out.to.0 as usize;
            self.events_processed += out.delivered as u64;
            {
                let slot = &mut self.slots[idx];
                slot.drain.messages += out.delivered as u64;
                slot.drain.batches += 1;
                slot.drain.max_batch = slot.drain.max_batch.max(out.delivered as u64);
            }
            if out.delivered > 1 {
                self.metrics.incr("sim.batch.bursts", 1);
                self.metrics
                    .incr("sim.batch.coalesced_messages", out.delivered as u64 - 1);
                self.metrics.set_max("sim.batch.max_size", out.delivered as u64);
            }
            self.metrics.incr("sim.parallel.wave_runs", 1);
            self.metrics.merge(out.metrics);
            self.slots[idx].rng = out.rng;
            self.slots[idx].send_seq = out.send_seq;
            debug_assert!(self.slots[idx].actor.is_none());
            self.slots[idx].actor = Some(out.actor);
            self.apply_effects(out.effects);
            let mut buf = out.msgs;
            buf.clear();
            // The first run's buffer came from batch_buf (taken by step);
            // hand one buffer back there so neither pool grows by one per
            // wave and the serial path keeps its warmed capacity.
            if self.batch_buf.capacity() == 0 {
                self.batch_buf = buf;
            } else {
                self.wave_bufs.push(buf);
            }
        }
        self.metrics.incr("sim.parallel.waves", 1);
    }

    /// Run until all *foreground* work drains or the simulation halts.
    /// Background (daemon) timers — see [`Ctx::schedule_self_background`] —
    /// are processed in order while foreground events remain, but pending
    /// background timers alone do not keep the run alive. Returns the number
    /// of events processed by this call. With [`Sim::set_horizon`] enabled,
    /// the horizon scheduler runs instead of the global loop (bit-identical
    /// results; see the module docs).
    pub fn run(&mut self) -> u64 {
        if self.horizon {
            return self.run_horizon(Cap::Foreground);
        }
        let start = self.events_processed;
        while self.foreground_queued > 0 && self.step() {}
        self.events_processed - start
    }

    /// Run until virtual time would exceed `deadline` (events at exactly
    /// `deadline` are processed). Later events stay queued.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        if self.horizon {
            let n = self.run_horizon(Cap::Deadline(deadline));
            if self.now < deadline && !self.halted {
                self.now = deadline;
            }
            return n;
        }
        let start = self.events_processed;
        loop {
            if self.halted {
                break;
            }
            match self.queue.peek() {
                Some(Reverse(ev)) if ev.time <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline && !self.halted {
            self.now = deadline;
        }
        self.events_processed - start
    }

    /// Run for `dur` of virtual time from now.
    pub fn run_for(&mut self, dur: SimDuration) -> u64 {
        let deadline = self.now + dur;
        self.run_until(deadline)
    }

    /// Per-actor drain statistics (messages, handler invocations, largest
    /// batch). Zeroes for ids never delivered to.
    pub fn drain_stats(&self, id: ActorId) -> DrainStats {
        self.slots
            .get(id.0 as usize)
            .map(|s| s.drain)
            .unwrap_or_default()
    }

    /// Aggregate drain statistics over every actor.
    pub fn drain_stats_total(&self) -> DrainStats {
        let mut total = DrainStats::default();
        for slot in &self.slots {
            total.messages += slot.drain.messages;
            total.batches += slot.drain.batches;
            total.max_batch = total.max_batch.max(slot.drain.max_batch);
        }
        total
    }

    /// Per-actor drain stats as a report table (busiest actors first),
    /// for experiment artifacts and diagnostics.
    pub fn dispatch_report(&self) -> crate::report::Table {
        let mut table = crate::report::Table::new(
            "Dispatch drain stats",
            &["actor", "messages", "batches", "mean batch", "max batch"],
        );
        let mut rows: Vec<(usize, &Slot)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.drain.batches > 0)
            .collect();
        rows.sort_by(|a, b| b.1.drain.messages.cmp(&a.1.drain.messages).then(a.0.cmp(&b.0)));
        for (idx, slot) in rows {
            table.push_row(vec![
                format!("{} (#{idx})", slot.label),
                slot.drain.messages.to_string(),
                slot.drain.batches.to_string(),
                format!("{:.2}", slot.drain.mean_batch()),
                slot.drain.max_batch.to_string(),
            ]);
        }
        table
    }

    /// Number of queued (undelivered) events, background timers included.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of queued *foreground* (non-daemon) events.
    pub fn foreground_queue_len(&self) -> usize {
        self.foreground_queued
    }

    // ---- Horizon scheduler (see the module docs) --------------------------

    /// Run the conservative horizon scheduler until `cap` is reached.
    /// Returns the number of events processed by this call.
    fn run_horizon(&mut self, cap: Cap) -> u64 {
        let start = self.events_processed;
        let n = self.groups.len();
        let la = self.closed_lookahead();
        let mut hz = HzState {
            gq: (0..n).map(|_| BinaryHeap::new()).collect(),
            committed: vec![SimTime::ZERO; n],
            members: vec![Vec::new(); n],
            fg_times: BTreeMap::new(),
            track_fg: matches!(cap, Cap::Foreground),
        };
        // Partition the global queue and the actor roster by group.
        for Reverse(ev) in std::mem::take(&mut self.queue) {
            if !ev.background {
                hz.fg_add(ev.time);
            }
            let g = self.group_of(ev.to) as usize;
            hz.gq[g].push(Reverse(ev));
        }
        for (idx, slot) in self.slots.iter().enumerate() {
            hz.members[slot.group as usize].push(idx as u32);
        }
        let mut head_times: Vec<Option<SimTime>> = vec![None; n];
        let mut runnable: Vec<(u32, SimTime)> = Vec::new();
        loop {
            if self.halted {
                break;
            }
            // The hard cap every window shares this round.
            let cap_time = match cap {
                Cap::Foreground => {
                    if self.foreground_queued == 0 {
                        break;
                    }
                    // The foreground frontier F_max: windows stay strictly
                    // below it; events at F_max drain via tie-steps.
                    let (&t, _) = hz.fg_times.last_key_value().expect("fg frontier");
                    SimTime::from_nanos(t)
                }
                // Exclusive bound: events at exactly `deadline` still run.
                Cap::Deadline(d) => d.next_instant(),
            };
            for (g, head) in head_times.iter_mut().enumerate() {
                *head = hz.gq[g].peek().map(|Reverse(e)| e.time);
            }
            if matches!(cap, Cap::Deadline(_))
                && !head_times.iter().any(|h| h.is_some_and(|t| t < cap_time))
            {
                break;
            }
            // limit(h) = min over all g (h included — the self term is
            // head(h) + h's minimum cycle lookahead, guarding round-trips
            // back into h's own queue) of head(g) + L*(g→h), capped at
            // cap_time; group h may process events strictly below it.
            runnable.clear();
            for h in 0..n {
                let Some(nh) = head_times[h] else { continue };
                let mut lim = cap_time;
                for (g, head) in head_times.iter().enumerate() {
                    let l = la[g * n + h];
                    if l == u64::MAX {
                        continue;
                    }
                    if let Some(ng) = *head {
                        lim = lim.min(ng.saturating_add(SimDuration::from_nanos(l)));
                    }
                }
                if nh < lim {
                    runnable.push((h as u32, lim));
                }
            }
            if runnable.is_empty() {
                // Nobody can window-advance: dispatch the globally minimal
                // key exactly as the legacy loop would.
                if !self.horizon_tie_step(&mut hz) {
                    break;
                }
            } else {
                self.horizon_round(&mut hz, &runnable);
            }
        }
        // Hand local queues back: between runs the harness sees one global
        // queue, exactly as in legacy mode.
        for q in &mut hz.gq {
            for ev in std::mem::take(q) {
                self.queue.push(ev);
            }
        }
        self.events_processed - start
    }

    /// Advance every runnable group through its window `[head, limit)`.
    /// Rounds of ≥ 2 groups go to the worker pool when the host has real
    /// parallelism; otherwise jobs run inline in group order with spawn
    /// available (the id counter threaded through).
    fn horizon_round(&mut self, hz: &mut HzState, runnable: &[(u32, SimTime)]) {
        let mut jobs: Vec<GroupJob> = Vec::with_capacity(runnable.len());
        for &(g, limit) in runnable {
            let gi = g as usize;
            let mut slots = Vec::with_capacity(hz.members[gi].len());
            for &id in &hz.members[gi] {
                let slot = std::mem::replace(&mut self.slots[id as usize], Slot::vacant(g));
                slots.push((id, slot));
            }
            jobs.push(GroupJob {
                group: g,
                limit,
                batching: self.batching,
                queue: std::mem::take(&mut hz.gq[gi]),
                slots,
                rng_root: self.actor_rng_root.clone(),
            });
        }
        let pooled = self.threads > 1 && host_parallelism() > 1 && jobs.len() >= 2;
        let outs: Vec<GroupOut> = if pooled {
            let threads = self.threads;
            let pool = self.horizon_pool.get_or_insert_with(|| {
                Pool::new(threads, "sim-horizon", execute_group_job_pooled)
            });
            pool.run(jobs)
        } else {
            jobs.into_iter()
                .map(|job| execute_group_job(job, Some(&mut self.next_actor_id)))
                .collect()
        };
        // Two passes: fold every group's state back first, then route the
        // buffered cross-group effects (a send from group A to group B must
        // not race B's own queue hand-back).
        let mut effects: Vec<Vec<Effect>> = Vec::with_capacity(outs.len());
        for out in outs {
            effects.push(self.merge_group_state(hz, out));
        }
        for eff in effects {
            self.apply_effects_hz(hz, eff);
        }
        self.metrics.incr("sim.horizon.rounds", 1);
    }

    /// Fold one window's buffered result back into the engine; returns the
    /// job's cross-group effects for routing after every state merge.
    fn merge_group_state(&mut self, hz: &mut HzState, out: GroupOut) -> Vec<Effect> {
        let gi = out.group as usize;
        hz.gq[gi] = out.queue;
        for (id, slot) in out.slots {
            let idx = id as usize;
            self.ensure_slot(idx);
            self.slots[idx] = slot;
        }
        for id in out.spawned {
            hz.members[gi].push(id);
        }
        // Enqueued before processed: an event both created and consumed
        // inside the window must not transiently underflow the frontier.
        self.foreground_queued += out.fg_enqueued.len();
        for t in out.fg_enqueued {
            hz.fg_add(t);
        }
        self.foreground_queued -= out.fg_processed.len();
        for t in out.fg_processed {
            hz.fg_remove(t);
        }
        self.events_processed += out.delivered;
        hz.committed[gi] = hz.committed[gi].max(out.committed);
        self.metrics.merge(out.metrics);
        self.metrics.incr("sim.horizon.advances", 1);
        out.effects_out
    }

    /// One tie-step: dispatch the globally minimal-key run exactly as the
    /// legacy loop would, batch boundary included (see the module docs).
    /// Returns `false` when every group queue is empty.
    fn horizon_tie_step(&mut self, hz: &mut HzState) -> bool {
        // The minimal head key picks the group; the runner-up head key is
        // the coalescing boundary (the first event the legacy loop would
        // have seen from elsewhere in the global queue).
        let mut min_group: Option<usize> = None;
        let mut best: Option<EventKey> = None;
        let mut boundary: Option<EventKey> = None;
        for (g, q) in hz.gq.iter().enumerate() {
            let Some(Reverse(head)) = q.peek() else {
                continue;
            };
            let k = head.key();
            match best {
                None => {
                    best = Some(k);
                    min_group = Some(g);
                }
                Some(b) if k < b => {
                    boundary = Some(b);
                    best = Some(k);
                    min_group = Some(g);
                }
                Some(_) => {
                    let closer = match boundary {
                        None => true,
                        Some(x) => k < x,
                    };
                    if closer {
                        boundary = Some(k);
                    }
                }
            }
        }
        let Some(m) = min_group else {
            return false;
        };
        let Some(Reverse(ev)) = hz.gq[m].pop() else {
            unreachable!("peeked head")
        };
        debug_assert!(ev.time >= self.now, "event from the past");
        self.now = ev.time;
        if !ev.background {
            self.foreground_queued -= 1;
            hz.fg_remove(ev.time);
        }
        let (time, to) = (ev.time, ev.to);
        let mut batch = std::mem::take(&mut self.batch_buf);
        batch.clear();
        batch.push(ev.msg);
        if self.batching {
            while let Some(Reverse(head)) = hz.gq[m].peek() {
                if head.time != time || head.to != to {
                    break;
                }
                if boundary.is_some_and(|b| head.key() > b) {
                    break;
                }
                let Reverse(next) = hz.gq[m].pop().expect("peeked");
                if !next.background {
                    self.foreground_queued -= 1;
                    hz.fg_remove(time);
                }
                batch.push(next.msg);
            }
        }
        hz.committed[m] = hz.committed[m].max(time);
        self.metrics.incr("sim.horizon.tie_steps", 1);
        self.deliver_batch(to, batch, Some(hz));
        true
    }

    /// Horizon-aware effect application (tie-steps, `on_start` hooks, and
    /// window-merge routing): sends land in the *target's* group queue
    /// behind a causality check, spawns install into the spawner's group,
    /// kills must stay in-group.
    fn apply_effects_hz(&mut self, hz: &mut HzState, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send {
                    at,
                    to,
                    msg,
                    background,
                    sent_at,
                    source,
                    seq,
                } => {
                    let tg = self.group_of(to) as usize;
                    assert!(
                        at >= hz.committed[tg],
                        "horizon causality violation: event for {to:?} at {at} is behind \
                         group '{}' (committed {}); a declared lookahead exceeds the real \
                         minimum latency on some path",
                        self.groups[tg].label,
                        hz.committed[tg],
                    );
                    if !background {
                        self.foreground_queued += 1;
                        hz.fg_add(at);
                    }
                    hz.gq[tg].push(Reverse(Scheduled {
                        time: at,
                        sent_at,
                        source,
                        seq,
                        to,
                        msg,
                        background,
                    }));
                }
                Effect::Spawn {
                    id,
                    label,
                    actor,
                    group,
                } => {
                    self.install_hz(hz, id, label, actor, group);
                }
                Effect::Kill { id, by_group } => {
                    if let Some(slot) = self.slots.get_mut(id.0 as usize) {
                        assert!(
                            slot.actor.is_none() || slot.group == by_group,
                            "cross-group Ctx::kill is not supported in horizon mode \
                             (target {id:?} is outside the caller's group)"
                        );
                        slot.actor = None;
                    }
                }
                Effect::Halt => self.halted = true,
            }
        }
    }

    /// Install a spawned actor during a horizon run: like [`Sim::install`],
    /// but the `on_start` effects route through the group queues and the
    /// group roster learns the new member.
    fn install_hz(
        &mut self,
        hz: &mut HzState,
        id: ActorId,
        label: String,
        actor: Box<dyn AnyActor>,
        group: u32,
    ) {
        let idx = id.0 as usize;
        self.ensure_slot(idx);
        debug_assert!(self.slots[idx].actor.is_none(), "actor id reused");
        self.slots[idx] = Slot {
            actor: Some(actor),
            label,
            drain: DrainStats::default(),
            rng: self.actor_rng_root.derive(u64::from(id.0)),
            send_seq: 0,
            group,
        };
        hz.members[group as usize].push(id.0);
        // on_start, mirroring run_start_hook but with horizon routing.
        let Some(mut actor) = self.slots[idx].actor.take() else {
            return;
        };
        let mut rng = self.slots[idx].rng.clone();
        let mut send_seq = self.slots[idx].send_seq;
        let mut effects = Vec::new();
        {
            let mut ctx = Ctx {
                self_id: id,
                now: self.now,
                rng: &mut rng,
                metrics: &mut self.metrics,
                next_actor_id: Some(&mut self.next_actor_id),
                send_seq: &mut send_seq,
                group,
                effects: &mut effects,
            };
            actor.on_start(&mut ctx);
        }
        self.slots[idx].rng = rng;
        self.slots[idx].send_seq = send_seq;
        if self.slots[idx].actor.is_none() {
            self.slots[idx].actor = Some(actor);
        }
        self.apply_effects_hz(hz, effects);
    }
}

/// The host's usable core count (cached): waves execute on the pool only
/// when real parallelism exists; otherwise they run inline with identical
/// semantics.
fn host_parallelism() -> usize {
    use std::sync::OnceLock;
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// What bounds a horizon run: foreground drain ([`Sim::run`]) or an
/// inclusive deadline ([`Sim::run_until`]).
enum Cap {
    Foreground,
    Deadline(SimTime),
}

/// Run-scoped horizon scheduler state (see the module docs): per-group
/// local queues and committed horizons, the group rosters, and — for
/// foreground-capped runs — the foreground frontier multiset.
struct HzState {
    /// Per-group local event queues (index = group id).
    gq: Vec<BinaryHeap<Reverse<Scheduled>>>,
    /// Per-group max dispatched instant (floor for the causality check).
    committed: Vec<SimTime>,
    /// Per-group member actor ids, ascending (ids allocate monotonically).
    members: Vec<Vec<u32>>,
    /// Queued-foreground-event count per instant; the largest key is the
    /// frontier `F_max`. Maintained only under [`Cap::Foreground`].
    fg_times: BTreeMap<u64, u32>,
    track_fg: bool,
}

impl HzState {
    fn fg_add(&mut self, t: SimTime) {
        if self.track_fg {
            *self.fg_times.entry(t.as_nanos()).or_insert(0) += 1;
        }
    }

    fn fg_remove(&mut self, t: SimTime) {
        if self.track_fg {
            let nanos = t.as_nanos();
            let count = self
                .fg_times
                .get_mut(&nanos)
                .expect("fg frontier accounting");
            *count -= 1;
            if *count == 0 {
                self.fg_times.remove(&nanos);
            }
        }
    }
}

/// One group's window advance handed to (or run inline by) a worker: the
/// group's local queue, its member slots (moved out of the engine roster),
/// and the exclusive time limit.
struct GroupJob {
    group: u32,
    /// Exclusive bound: the window processes events strictly below it.
    limit: SimTime,
    batching: bool,
    queue: BinaryHeap<Reverse<Scheduled>>,
    /// `(actor id, slot)` pairs, ascending by id.
    slots: Vec<(u32, Slot)>,
    /// Root for deriving RNG streams of actors spawned inside the window.
    rng_root: DetRng,
}

/// A window's buffered result, merged back in group order.
struct GroupOut {
    group: u32,
    queue: BinaryHeap<Reverse<Scheduled>>,
    slots: Vec<(u32, Slot)>,
    /// Ids of actors installed inside the window.
    spawned: Vec<u32>,
    /// Cross-group sends (and halts) for the coordinator to route.
    effects_out: Vec<Effect>,
    metrics: Metrics,
    delivered: u64,
    /// Max instant this window dispatched.
    committed: SimTime,
    /// Instants of foreground events processed / enqueued locally (the
    /// global frontier bookkeeping happens at merge).
    fg_processed: Vec<SimTime>,
    fg_enqueued: Vec<SimTime>,
}

/// Pool entry point: pooled rounds cannot allocate actor ids, so spawn
/// (and kill/halt) panic — see [`Ctx::spawn`].
fn execute_group_job_pooled(job: GroupJob) -> GroupOut {
    execute_group_job(job, None)
}

/// Advance one group through its window `[head, limit)` against private
/// state only (no engine access): pop → coalesce (same instant, same
/// actor) → deliver, with same-group sends fed straight back into the
/// local queue and cross-group sends buffered for the coordinator.
fn execute_group_job(job: GroupJob, next_actor_id: Option<&mut u32>) -> GroupOut {
    let GroupJob {
        group,
        limit,
        batching,
        queue,
        slots,
        rng_root,
    } = job;
    let mut st = JobState {
        group,
        queue,
        slots,
        rng_root,
        spawned: Vec::new(),
        effects_out: Vec::new(),
        metrics: Metrics::new(),
        fg_processed: Vec::new(),
        fg_enqueued: Vec::new(),
        halted: false,
    };
    let mut next_actor_id = next_actor_id;
    let mut delivered = 0u64;
    let mut committed = SimTime::ZERO;
    let mut batch: Vec<Msg> = Vec::new();
    loop {
        if st.halted {
            break;
        }
        match st.queue.peek() {
            Some(Reverse(head)) if head.time < limit => {}
            _ => break,
        }
        let Reverse(ev) = st.queue.pop().expect("peeked");
        let (time, to) = (ev.time, ev.to);
        if !ev.background {
            st.fg_processed.push(time);
        }
        batch.clear();
        batch.push(ev.msg);
        if batching {
            while let Some(Reverse(head)) = st.queue.peek() {
                if head.time != time || head.to != to {
                    break;
                }
                let Reverse(next) = st.queue.pop().expect("peeked");
                if !next.background {
                    st.fg_processed.push(time);
                }
                batch.push(next.msg);
            }
        }
        committed = time;
        delivered += batch.len() as u64;
        st.deliver(to, time, &mut batch, &mut next_actor_id);
    }
    GroupOut {
        group,
        queue: st.queue,
        slots: st.slots,
        spawned: st.spawned,
        effects_out: st.effects_out,
        metrics: st.metrics,
        delivered,
        committed,
        fg_processed: st.fg_processed,
        fg_enqueued: st.fg_enqueued,
    }
}

/// Mutable window state for one [`GroupJob`] execution.
struct JobState {
    group: u32,
    queue: BinaryHeap<Reverse<Scheduled>>,
    slots: Vec<(u32, Slot)>,
    rng_root: DetRng,
    spawned: Vec<u32>,
    effects_out: Vec<Effect>,
    metrics: Metrics,
    fg_processed: Vec<SimTime>,
    fg_enqueued: Vec<SimTime>,
    halted: bool,
}

impl JobState {
    fn slot_pos(&self, id: u32) -> Result<usize, usize> {
        self.slots.binary_search_by_key(&id, |(i, _)| *i)
    }

    /// Deliver one coalesced batch, mirroring [`Sim::deliver_batch`].
    fn deliver(
        &mut self,
        to: ActorId,
        now: SimTime,
        batch: &mut Vec<Msg>,
        next_actor_id: &mut Option<&mut u32>,
    ) {
        let taken = match self.slot_pos(to.0) {
            Ok(si) => self.slots[si].1.actor.take().map(|a| (si, a)),
            Err(_) => None,
        };
        let Some((si, mut actor)) = taken else {
            self.metrics.incr("sim.dropped_messages", batch.len() as u64);
            batch.clear();
            return;
        };
        {
            let slot = &mut self.slots[si].1;
            slot.drain.messages += batch.len() as u64;
            slot.drain.batches += 1;
            slot.drain.max_batch = slot.drain.max_batch.max(batch.len() as u64);
        }
        if batch.len() > 1 {
            self.metrics.incr("sim.batch.bursts", 1);
            self.metrics
                .incr("sim.batch.coalesced_messages", batch.len() as u64 - 1);
            self.metrics.set_max("sim.batch.max_size", batch.len() as u64);
        }
        let mut rng = self.slots[si].1.rng.clone();
        let mut send_seq = self.slots[si].1.send_seq;
        let mut effects = Vec::new();
        {
            let mut ctx = Ctx {
                self_id: to,
                now,
                rng: &mut rng,
                metrics: &mut self.metrics,
                next_actor_id: next_actor_id.as_deref_mut(),
                send_seq: &mut send_seq,
                group: self.group,
                effects: &mut effects,
            };
            if batch.len() == 1 {
                let msg = batch.pop().expect("one message");
                actor.on_message(msg, &mut ctx);
            } else {
                actor.on_batch(batch, &mut ctx);
                debug_assert!(batch.is_empty(), "on_batch must drain its input");
            }
        }
        batch.clear();
        {
            let slot = &mut self.slots[si].1;
            slot.rng = rng;
            slot.send_seq = send_seq;
            // The actor may have killed itself; reinstate only if nothing
            // reclaimed the slot, and apply the kill effect after (it wins).
            if slot.actor.is_none() {
                slot.actor = Some(actor);
            }
        }
        self.apply(effects, now, next_actor_id);
    }

    /// Apply a handler's effects inside the window: same-group sends land
    /// in the local queue, cross-group sends are buffered for the
    /// coordinator, spawns install into this group (serial rounds only),
    /// kills must stay in-group.
    fn apply(&mut self, effects: Vec<Effect>, now: SimTime, next_actor_id: &mut Option<&mut u32>) {
        for effect in effects {
            match effect {
                Effect::Send {
                    at,
                    to,
                    msg,
                    background,
                    sent_at,
                    source,
                    seq,
                } => {
                    if self.slot_pos(to.0).is_ok() {
                        if !background {
                            self.fg_enqueued.push(at);
                        }
                        self.queue.push(Reverse(Scheduled {
                            time: at,
                            sent_at,
                            source,
                            seq,
                            to,
                            msg,
                            background,
                        }));
                    } else {
                        self.effects_out.push(Effect::Send {
                            at,
                            to,
                            msg,
                            background,
                            sent_at,
                            source,
                            seq,
                        });
                    }
                }
                Effect::Spawn {
                    id,
                    label,
                    actor,
                    group,
                } => {
                    debug_assert_eq!(group, self.group, "children join the spawner's group");
                    self.install(id, label, actor, now, next_actor_id);
                }
                Effect::Kill { id, by_group } => {
                    let Ok(si) = self.slot_pos(id.0) else {
                        panic!(
                            "cross-group Ctx::kill is not supported in horizon mode \
                             (target {id:?} is outside group #{by_group})"
                        );
                    };
                    self.slots[si].1.actor = None;
                }
                Effect::Halt => {
                    self.halted = true;
                    self.effects_out.push(Effect::Halt);
                }
            }
        }
    }

    /// Install a spawned actor mid-window, mirroring [`Sim::install`] (the
    /// child joins this group at the spawner's committed instant).
    fn install(
        &mut self,
        id: ActorId,
        label: String,
        actor: Box<dyn AnyActor>,
        now: SimTime,
        next_actor_id: &mut Option<&mut u32>,
    ) {
        let pos = match self.slot_pos(id.0) {
            Ok(_) => unreachable!("actor id reused"),
            Err(p) => p,
        };
        self.slots.insert(
            pos,
            (
                id.0,
                Slot {
                    actor: Some(actor),
                    label,
                    drain: DrainStats::default(),
                    rng: self.rng_root.derive(u64::from(id.0)),
                    send_seq: 0,
                    group: self.group,
                },
            ),
        );
        self.spawned.push(id.0);
        // on_start, mirroring Sim::run_start_hook.
        let Some(mut actor) = self.slots[pos].1.actor.take() else {
            return;
        };
        let mut rng = self.slots[pos].1.rng.clone();
        let mut send_seq = self.slots[pos].1.send_seq;
        let mut effects = Vec::new();
        {
            let mut ctx = Ctx {
                self_id: id,
                now,
                rng: &mut rng,
                metrics: &mut self.metrics,
                next_actor_id: next_actor_id.as_deref_mut(),
                send_seq: &mut send_seq,
                group: self.group,
                effects: &mut effects,
            };
            actor.on_start(&mut ctx);
        }
        {
            let slot = &mut self.slots[pos].1;
            slot.rng = rng;
            slot.send_seq = send_seq;
            if slot.actor.is_none() {
                slot.actor = Some(actor);
            }
        }
        self.apply(effects, now, next_actor_id);
    }
}

/// One wave run handed to a worker: the actor (taken from its slot), its
/// RNG stream, and its coalesced batch.
struct WaveJob {
    to: ActorId,
    now: SimTime,
    msgs: Vec<Msg>,
    actor: Box<dyn AnyActor>,
    rng: DetRng,
    send_seq: u64,
    group: u32,
}

/// A worker's buffered result: everything the merge step folds back into
/// the engine in run order.
struct WaveOut {
    to: ActorId,
    msgs: Vec<Msg>,
    actor: Box<dyn AnyActor>,
    rng: DetRng,
    send_seq: u64,
    effects: Vec<Effect>,
    metrics: Metrics,
    delivered: usize,
}

/// Execute one wave run against a private context (no engine access).
fn execute_wave_job(job: WaveJob) -> WaveOut {
    let WaveJob {
        to,
        now,
        mut msgs,
        mut actor,
        mut rng,
        mut send_seq,
        group,
    } = job;
    let delivered = msgs.len();
    let mut effects = Vec::new();
    let mut metrics = Metrics::new();
    {
        let mut ctx = Ctx {
            self_id: to,
            now,
            rng: &mut rng,
            metrics: &mut metrics,
            next_actor_id: None,
            send_seq: &mut send_seq,
            group,
            effects: &mut effects,
        };
        if delivered == 1 {
            let msg = msgs.pop().expect("one message");
            actor.on_message(msg, &mut ctx);
        } else {
            actor.on_batch(&mut msgs, &mut ctx);
            debug_assert!(msgs.is_empty(), "on_batch must drain its input");
        }
    }
    msgs.clear();
    WaveOut {
        to,
        msgs,
        actor,
        rng,
        send_seq,
        effects,
        metrics,
        delivered,
    }
}

/// A persistent pool of workers executing a fixed `fn(J) -> O`. Jobs fan
/// out over one shared queue; results come back tagged with their
/// submission index so the coordinator can merge in submission order
/// regardless of completion order. Worker panics are caught, shipped back,
/// and re-raised on the coordinator thread so a failing actor behaves like
/// it does under serial dispatch. Shared by the same-instant wave path
/// (`WaveJob`) and the horizon round path (`GroupJob`).
struct Pool<J: Send + 'static, O: Send + 'static> {
    job_tx: Option<mpsc::Sender<(usize, J)>>,
    out_rx: mpsc::Receiver<std::thread::Result<(usize, O)>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl<J: Send + 'static, O: Send + 'static> Pool<J, O> {
    fn new(threads: usize, name: &str, f: fn(J) -> O) -> Pool<J, O> {
        let (job_tx, job_rx) = mpsc::channel::<(usize, J)>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (out_tx, out_rx) = mpsc::channel();
        let handles = (0..threads)
            .map(|w| {
                let rx = Arc::clone(&job_rx);
                let tx = out_tx.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{w}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        let Ok((index, job)) = job else {
                            break; // pool dropped
                        };
                        let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(job)))
                            .map(|o| (index, o));
                        if tx.send(out).is_err() {
                            break;
                        }
                    })
                    .expect("spawn sim worker")
            })
            .collect();
        Pool {
            job_tx: Some(job_tx),
            out_rx,
            handles,
        }
    }

    /// Run all jobs to completion; results ordered by submission index.
    fn run(&mut self, jobs: Vec<J>) -> Vec<O> {
        let n = jobs.len();
        let tx = self.job_tx.as_ref().expect("pool alive");
        for job in jobs.into_iter().enumerate() {
            tx.send(job).expect("sim worker alive");
        }
        let mut outs: Vec<Option<O>> = (0..n).map(|_| None).collect();
        let mut panic: Option<Box<dyn Any + Send>> = None;
        for _ in 0..n {
            match self.out_rx.recv().expect("sim worker alive") {
                Ok((i, out)) => {
                    outs[i] = Some(out);
                }
                Err(p) => {
                    if panic.is_none() {
                        panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
        outs.into_iter()
            .map(|o| o.expect("every job reported"))
            .collect()
    }
}

impl<J: Send + 'static, O: Send + 'static> Drop for Pool<J, O> {
    fn drop(&mut self) {
        // Closing the job channel unblocks every worker's recv.
        self.job_tx.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        count: u64,
        echo_to: Option<ActorId>,
    }
    struct Bump(u64);

    impl Actor for Counter {
        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            if let Ok(b) = msg.downcast::<Bump>() {
                self.count += b.0;
                if let Some(to) = self.echo_to {
                    ctx.send(to, Bump(b.0));
                }
            }
        }
    }

    #[test]
    fn delivers_in_time_order() {
        struct Recorder {
            seen: Vec<u64>,
        }
        struct Tag(u64);
        impl Actor for Recorder {
            fn on_message(&mut self, msg: Msg, _ctx: &mut Ctx<'_>) {
                self.seen.push(msg.downcast::<Tag>().unwrap().0);
            }
        }
        let mut sim = Sim::new(0);
        let r = sim.spawn("rec", Recorder { seen: vec![] });
        sim.send_after(SimDuration::from_secs(3), r, Tag(3));
        sim.send_after(SimDuration::from_secs(1), r, Tag(1));
        sim.send_after(SimDuration::from_secs(2), r, Tag(2));
        sim.run();
        assert_eq!(sim.actor::<Recorder>(r).unwrap().seen, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(3));
    }

    #[test]
    fn same_instant_is_fifo() {
        struct Recorder {
            seen: Vec<u64>,
        }
        struct Tag(u64);
        impl Actor for Recorder {
            fn on_message(&mut self, msg: Msg, _ctx: &mut Ctx<'_>) {
                self.seen.push(msg.downcast::<Tag>().unwrap().0);
            }
        }
        let mut sim = Sim::new(0);
        let r = sim.spawn("rec", Recorder { seen: vec![] });
        for i in 0..10 {
            sim.send(r, Tag(i));
        }
        sim.run();
        assert_eq!(
            sim.actor::<Recorder>(r).unwrap().seen,
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut sim = Sim::new(0);
        let a = sim.spawn(
            "a",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        let b = sim.spawn(
            "b",
            Counter {
                count: 0,
                echo_to: Some(a),
            },
        );
        sim.send(b, Bump(5));
        sim.run();
        assert_eq!(sim.actor::<Counter>(a).unwrap().count, 5);
        assert_eq!(sim.actor::<Counter>(b).unwrap().count, 5);
    }

    #[test]
    fn messages_to_dead_actors_are_counted() {
        let mut sim = Sim::new(0);
        let a = sim.spawn(
            "a",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        sim.send_after(SimDuration::from_secs(1), a, Bump(1));
        sim.kill(a);
        assert!(!sim.is_alive(a));
        sim.run();
        assert_eq!(sim.metrics_ref().counter("sim.dropped_messages"), 1);
    }

    #[test]
    fn spawn_from_handler_and_message_new_actor() {
        struct Spawner {
            child: Option<ActorId>,
        }
        struct Go;
        impl Actor for Spawner {
            fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
                if msg.downcast::<Go>().is_ok() {
                    let child = ctx.spawn(
                        "child",
                        Counter {
                            count: 0,
                            echo_to: None,
                        },
                    );
                    self.child = Some(child);
                    ctx.send(child, Bump(7));
                }
            }
        }
        let mut sim = Sim::new(0);
        let s = sim.spawn("spawner", Spawner { child: None });
        sim.send(s, Go);
        sim.run();
        let child = sim.actor::<Spawner>(s).unwrap().child.unwrap();
        assert_eq!(sim.actor::<Counter>(child).unwrap().count, 7);
    }

    #[test]
    fn on_start_runs_and_can_schedule() {
        struct Starter {
            started: bool,
            fired: bool,
        }
        struct Timer;
        impl Actor for Starter {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                self.started = true;
                ctx.schedule_self(SimDuration::from_millis(10), Timer);
            }
            fn on_message(&mut self, msg: Msg, _ctx: &mut Ctx<'_>) {
                if msg.downcast::<Timer>().is_ok() {
                    self.fired = true;
                }
            }
        }
        let mut sim = Sim::new(0);
        let s = sim.spawn(
            "starter",
            Starter {
                started: false,
                fired: false,
            },
        );
        assert!(sim.actor::<Starter>(s).unwrap().started);
        sim.run();
        assert!(sim.actor::<Starter>(s).unwrap().fired);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(10));
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Sim::new(0);
        let a = sim.spawn(
            "a",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        sim.send_after(SimDuration::from_secs(1), a, Bump(1));
        sim.send_after(SimDuration::from_secs(10), a, Bump(1));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(sim.actor::<Counter>(a).unwrap().count, 1);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(sim.queue_len(), 1);
        sim.run();
        assert_eq!(sim.actor::<Counter>(a).unwrap().count, 2);
    }

    #[test]
    fn self_kill_takes_effect() {
        struct Quitter {
            handled: u32,
        }
        struct Die;
        impl Actor for Quitter {
            fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
                if msg.downcast::<Die>().is_ok() {
                    self.handled += 1;
                    ctx.kill(ctx.self_id());
                }
            }
        }
        let mut sim = Sim::new(0);
        let q = sim.spawn("quitter", Quitter { handled: 0 });
        sim.send(q, Die);
        sim.send_after(SimDuration::from_secs(1), q, Die);
        sim.run();
        assert!(!sim.is_alive(q));
        assert_eq!(sim.metrics_ref().counter("sim.dropped_messages"), 1);
    }

    #[test]
    fn halt_stops_the_world() {
        struct Halter;
        struct Now;
        impl Actor for Halter {
            fn on_message(&mut self, _msg: Msg, ctx: &mut Ctx<'_>) {
                ctx.halt();
            }
        }
        let mut sim = Sim::new(0);
        let h = sim.spawn("halter", Halter);
        let c = sim.spawn(
            "c",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        sim.send(h, Now);
        sim.send_after(SimDuration::from_secs(1), c, Bump(1));
        sim.run();
        assert_eq!(sim.actor::<Counter>(c).unwrap().count, 0, "halt preempted");
    }

    #[test]
    fn background_timers_do_not_keep_run_alive() {
        struct Beacon {
            ticks: u64,
        }
        struct Tick;
        impl Actor for Beacon {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule_self_background(SimDuration::from_secs(5), Tick);
            }
            fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
                if msg.downcast::<Tick>().is_ok() {
                    self.ticks += 1;
                    ctx.schedule_self_background(SimDuration::from_secs(5), Tick);
                }
            }
        }
        let mut sim = Sim::new(0);
        let b = sim.spawn("beacon", Beacon { ticks: 0 });
        let c = sim.spawn(
            "c",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        // Foreground work 12s out: the beacon's 5s and 10s ticks fire while
        // the foreground event is pending, then run() stops.
        sim.send_after(SimDuration::from_secs(12), c, Bump(1));
        sim.run();
        assert_eq!(sim.actor::<Counter>(c).unwrap().count, 1);
        assert_eq!(sim.actor::<Beacon>(b).unwrap().ticks, 2);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(12));
        assert_eq!(sim.foreground_queue_len(), 0);
        assert_eq!(sim.queue_len(), 1, "daemon tick still queued");
        // run_until *does* drive background time forward.
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(31));
        assert_eq!(sim.actor::<Beacon>(b).unwrap().ticks, 6);
    }

    #[test]
    fn same_instant_burst_coalesces_into_one_batch() {
        struct Batcher {
            batches: Vec<usize>,
        }
        struct Tag(#[allow(dead_code)] u64);
        impl Actor for Batcher {
            fn on_message(&mut self, _msg: Msg, _ctx: &mut Ctx<'_>) {
                self.batches.push(1);
            }
            fn on_batch(&mut self, msgs: &mut Vec<Msg>, _ctx: &mut Ctx<'_>) {
                self.batches.push(msgs.len());
                msgs.clear();
            }
        }
        let mut sim = Sim::new(0);
        let b = sim.spawn("batcher", Batcher { batches: vec![] });
        for i in 0..10 {
            sim.send(b, Tag(i));
        }
        sim.send_after(SimDuration::from_secs(1), b, Tag(99));
        sim.run();
        // 10 same-instant messages → one batch; the later singleton goes
        // through on_message.
        assert_eq!(sim.actor::<Batcher>(b).unwrap().batches, vec![10, 1]);
        assert_eq!(sim.events_processed(), 11);
        assert_eq!(sim.metrics_ref().counter("sim.batch.bursts"), 1);
        assert_eq!(sim.metrics_ref().counter("sim.batch.coalesced_messages"), 9);
        assert_eq!(sim.metrics_ref().counter("sim.batch.max_size"), 10);
        let stats = sim.drain_stats(b);
        assert_eq!(stats.messages, 11);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.max_batch, 10);
    }

    #[test]
    fn interleaved_destinations_split_batches() {
        struct Recorder {
            seen: Vec<u64>,
        }
        struct Tag(u64);
        impl Actor for Recorder {
            fn on_message(&mut self, msg: Msg, _ctx: &mut Ctx<'_>) {
                self.seen.push(msg.downcast::<Tag>().unwrap().0);
            }
            fn on_batch(&mut self, msgs: &mut Vec<Msg>, _ctx: &mut Ctx<'_>) {
                for msg in msgs.drain(..) {
                    self.seen.push(msg.downcast::<Tag>().unwrap().0);
                }
            }
        }
        let mut sim = Sim::new(0);
        let a = sim.spawn("a", Recorder { seen: vec![] });
        let b = sim.spawn("b", Recorder { seen: vec![] });
        // a a b a: only the leading `a a` run coalesces.
        sim.send(a, Tag(0));
        sim.send(a, Tag(1));
        sim.send(b, Tag(2));
        sim.send(a, Tag(3));
        sim.run();
        assert_eq!(sim.actor::<Recorder>(a).unwrap().seen, vec![0, 1, 3]);
        assert_eq!(sim.actor::<Recorder>(b).unwrap().seen, vec![2]);
        assert_eq!(sim.drain_stats(a).batches, 2, "run split by b's event");
        assert_eq!(sim.drain_stats(a).max_batch, 2);
    }

    #[test]
    fn batching_off_restores_per_message_delivery() {
        struct Batcher {
            calls: Vec<usize>,
        }
        struct Tag;
        impl Actor for Batcher {
            fn on_message(&mut self, _msg: Msg, _ctx: &mut Ctx<'_>) {
                self.calls.push(1);
            }
            fn on_batch(&mut self, msgs: &mut Vec<Msg>, _ctx: &mut Ctx<'_>) {
                self.calls.push(msgs.len());
                msgs.clear();
            }
        }
        let mut sim = Sim::new(0);
        sim.set_batching(false);
        let b = sim.spawn("b", Batcher { calls: vec![] });
        for _ in 0..5 {
            sim.send(b, Tag);
        }
        sim.run();
        assert_eq!(sim.actor::<Batcher>(b).unwrap().calls, vec![1; 5]);
        assert_eq!(sim.metrics_ref().counter("sim.batch.bursts"), 0);
    }

    #[test]
    fn batched_messages_to_dead_actor_all_counted_dropped() {
        let mut sim = Sim::new(0);
        let a = sim.spawn(
            "a",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        for _ in 0..4 {
            sim.send_after(SimDuration::from_secs(1), a, Bump(1));
        }
        sim.kill(a);
        sim.run();
        assert_eq!(sim.metrics_ref().counter("sim.dropped_messages"), 4);
    }

    #[test]
    fn dispatch_report_lists_busy_actors() {
        let mut sim = Sim::new(0);
        let a = sim.spawn(
            "busy",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        for _ in 0..3 {
            sim.send(a, Bump(1));
        }
        sim.run();
        let table = sim.dispatch_report();
        assert_eq!(table.rows.len(), 1);
        assert!(table.rows[0][0].starts_with("busy"));
        assert_eq!(table.rows[0][1], "3");
    }

    /// A Concurrent actor exercising everything a wave worker buffers:
    /// RNG draws, counter/histogram metrics, and same-instant sends.
    struct Worker {
        sum: u64,
        peer: Option<ActorId>,
    }
    /// `(payload, remaining echo hops)` — hops bound the ring ping-pong.
    struct Work(u64, u32);
    impl Actor for Worker {
        fn concurrency(&self) -> Concurrency {
            Concurrency::Concurrent
        }
        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            let w = msg.downcast::<Work>().unwrap();
            let draw = ctx.rng().next_below(1000);
            self.sum = self.sum.wrapping_add(w.0).wrapping_add(draw);
            ctx.metrics().incr("worker.msgs", 1);
            ctx.metrics().record("worker.draw", draw as f64);
            if let (Some(p), 1..) = (self.peer, w.1) {
                ctx.send_after(SimDuration::from_millis(1), p, Work(draw, w.1 - 1));
            }
        }
    }

    /// Run a two-round workload over `k` Concurrent actors (each echoing a
    /// same-delay follow-up to a ring peer) and fingerprint everything the
    /// determinism contract covers.
    fn wave_fingerprint(threads: usize, k: usize) -> (Vec<u64>, Vec<(String, u64)>, u64, SimTime) {
        let mut sim = Sim::new(7);
        sim.set_threads(threads);
        let ids: Vec<ActorId> = (0..k)
            .map(|i| sim.spawn(format!("w{i}"), Worker { sum: 0, peer: None }))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            let peer = ids[(i + 1) % k];
            sim.actor_mut::<Worker>(*id).unwrap().peer = Some(peer);
        }
        // Contiguous same-instant runs per actor: one wave of k runs.
        for id in &ids {
            for m in 0..8u64 {
                sim.send(*id, Work(m, 3));
            }
        }
        sim.run();
        let sums = ids
            .iter()
            .map(|id| sim.actor::<Worker>(*id).unwrap().sum)
            .collect();
        let counters = sim
            .metrics_ref()
            .counters()
            .filter(|(name, _)| !name.contains("parallel"))
            .map(|(n, v)| (n.to_owned(), v))
            .collect();
        (sums, counters, sim.events_processed(), sim.now())
    }

    #[test]
    fn parallel_wave_bit_identical_to_serial() {
        let serial = wave_fingerprint(1, 6);
        for threads in [2, 4] {
            let parallel = wave_fingerprint(threads, 6);
            assert_eq!(serial, parallel, "threads={threads} diverged from serial");
        }
    }

    #[test]
    fn parallel_wave_actually_ran_in_wave_mode() {
        let mut sim = Sim::new(3);
        sim.set_threads(4);
        let a = sim.spawn("a", Worker { sum: 0, peer: None });
        let b = sim.spawn("b", Worker { sum: 0, peer: None });
        sim.send(a, Work(1, 0));
        sim.send(b, Work(2, 0));
        sim.run();
        assert_eq!(sim.metrics_ref().counter("sim.parallel.waves"), 1);
        assert_eq!(sim.metrics_ref().counter("sim.parallel.wave_runs"), 2);
    }

    #[test]
    fn exclusive_actor_breaks_a_wave() {
        let mut sim = Sim::new(3);
        sim.set_threads(4);
        let a = sim.spawn("a", Worker { sum: 0, peer: None });
        let x = sim.spawn(
            "x",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        let b = sim.spawn("b", Worker { sum: 0, peer: None });
        // a, then the Exclusive x, then b: no two Concurrent runs are
        // adjacent, so nothing parallelizes — and ordering is serial.
        sim.send(a, Work(1, 0));
        sim.send(x, Bump(1));
        sim.send(b, Work(2, 0));
        sim.run();
        assert_eq!(sim.metrics_ref().counter("sim.parallel.waves"), 0);
        assert_eq!(sim.actor::<Counter>(x).unwrap().count, 1);
    }

    #[test]
    fn repeated_destination_ends_the_wave() {
        let mut sim = Sim::new(3);
        sim.set_threads(2);
        let a = sim.spawn("a", Worker { sum: 0, peer: None });
        let b = sim.spawn("b", Worker { sum: 0, peer: None });
        // a a b a: the trailing a-run must not join the wave (its state
        // depends on the first a-run having completed).
        sim.send(a, Work(1, 0));
        sim.send(a, Work(2, 0));
        sim.send(b, Work(3, 0));
        sim.send(a, Work(4, 0));
        sim.run();
        assert_eq!(sim.metrics_ref().counter("sim.parallel.wave_runs"), 2);
        assert_eq!(sim.drain_stats(a).batches, 2);
    }

    #[test]
    fn spawn_from_wave_worker_panics() {
        struct Spawner;
        struct Go;
        impl Actor for Spawner {
            fn concurrency(&self) -> Concurrency {
                Concurrency::Concurrent
            }
            fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
                if msg.downcast::<Go>().is_ok() {
                    ctx.spawn(
                        "child",
                        Counter {
                            count: 0,
                            echo_to: None,
                        },
                    );
                }
            }
        }
        let mut sim = Sim::new(1);
        sim.set_threads(2);
        let a = sim.spawn("a", Spawner);
        let b = sim.spawn("b", Spawner);
        sim.send(a, Go);
        sim.send(b, Go);
        let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
            sim.run();
        }));
        assert!(panicked.is_err(), "spawn inside a wave must panic");
    }

    #[test]
    fn per_actor_rng_streams_are_insensitive_to_neighbors() {
        // Actor a's draws must not depend on whether actor b ran first at
        // the same instant — the property parallel dispatch relies on.
        fn sum_of(extra_first: bool) -> u64 {
            let mut sim = Sim::new(11);
            let b = sim.spawn("b", Worker { sum: 0, peer: None });
            let a = sim.spawn("a", Worker { sum: 0, peer: None });
            if extra_first {
                sim.send(b, Work(0, 0));
            }
            sim.send(a, Work(0, 0));
            sim.run();
            sim.actor::<Worker>(a).unwrap().sum
        }
        assert_eq!(sum_of(false), sum_of(true));
    }

    /// A relay with a configurable echo delay (local hops are denser than
    /// cross-group hops, whose delay must honor the declared lookahead).
    struct Relay {
        delay: SimDuration,
        peer: Option<ActorId>,
        sum: u64,
    }
    /// `(payload, remaining hops)`.
    struct Hop(u64, u32);
    impl Actor for Relay {
        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            let h = msg.downcast::<Hop>().unwrap();
            let draw = ctx.rng().next_below(1_000);
            self.sum = self.sum.wrapping_add(h.0).wrapping_add(draw);
            ctx.metrics().incr("relay.msgs", 1);
            if let (Some(p), 1..) = (self.peer, h.1) {
                ctx.send_after(self.delay, p, Hop(draw, h.1 - 1));
            }
        }
    }

    /// A barrier-group actor broadcasting *zero-delay* cross-group messages
    /// on a timer — the FaultController pattern (legal only because barrier
    /// groups declare zero lookahead to everyone).
    struct Broadcaster {
        targets: Vec<ActorId>,
        rounds: u32,
    }
    struct Pulse;
    impl Actor for Broadcaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule_self(SimDuration::from_millis(4), Pulse);
        }
        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            if msg.downcast::<Pulse>().is_ok() && self.rounds > 0 {
                self.rounds -= 1;
                for t in &self.targets {
                    ctx.send(*t, Hop(5, 0));
                }
                if self.rounds > 0 {
                    ctx.schedule_self(SimDuration::from_millis(4), Pulse);
                }
            }
        }
    }

    /// Two 2-actor cluster groups (dense 1 ms local echo, sparse 2 ms
    /// cross-group hops, lookahead declared accordingly) plus a barrier
    /// group whose broadcaster injects zero-delay cross-group pulses.
    /// Fingerprints everything the determinism contract covers.
    #[allow(clippy::type_complexity)]
    fn horizon_fingerprint(
        horizon: bool,
        threads: usize,
        until: Option<SimDuration>,
    ) -> (Vec<u64>, Vec<(String, u64)>, u64, SimTime) {
        let mut sim = Sim::new(9);
        sim.set_threads(threads);
        sim.set_horizon(horizon);
        let ga = sim.new_group("cluster-a");
        let gb = sim.new_group("cluster-b");
        let ctl = sim.new_group("ctl");
        sim.set_lookahead(ga, gb, SimDuration::from_millis(2));
        sim.set_lookahead(gb, ga, SimDuration::from_millis(2));
        sim.set_barrier_group(ctl);
        let prev = sim.set_default_group(ga);
        let a0 = sim.spawn(
            "a0",
            Relay {
                delay: SimDuration::from_millis(1),
                peer: None,
                sum: 0,
            },
        );
        let a1 = sim.spawn(
            "a1",
            Relay {
                delay: SimDuration::from_millis(2),
                peer: None,
                sum: 0,
            },
        );
        sim.set_default_group(gb);
        let b0 = sim.spawn(
            "b0",
            Relay {
                delay: SimDuration::from_millis(1),
                peer: None,
                sum: 0,
            },
        );
        let b1 = sim.spawn(
            "b1",
            Relay {
                delay: SimDuration::from_millis(2),
                peer: None,
                sum: 0,
            },
        );
        sim.set_default_group(ctl);
        sim.spawn(
            "bcast",
            Broadcaster {
                targets: vec![a0, b0],
                rounds: 6,
            },
        );
        sim.set_default_group(prev);
        // Ring a0 →1ms a1 →2ms(cross) b0 →1ms b1 →2ms(cross) a0.
        sim.actor_mut::<Relay>(a0).unwrap().peer = Some(a1);
        sim.actor_mut::<Relay>(a1).unwrap().peer = Some(b0);
        sim.actor_mut::<Relay>(b0).unwrap().peer = Some(b1);
        sim.actor_mut::<Relay>(b1).unwrap().peer = Some(a0);
        // Same-instant bursts at t=0 exercise coalescing in both modes.
        for m in 0..4u64 {
            sim.send(a0, Hop(m, 24));
            sim.send(b0, Hop(m + 10, 24));
        }
        match until {
            Some(d) => sim.run_until(SimTime::ZERO + d),
            None => sim.run(),
        };
        if horizon {
            assert!(
                sim.metrics_ref().counter("sim.horizon.advances") > 0,
                "horizon mode silently fell back to tie-steps only"
            );
        }
        let sums = [a0, a1, b0, b1]
            .iter()
            .map(|id| sim.actor::<Relay>(*id).unwrap().sum)
            .collect();
        let counters = sim
            .metrics_ref()
            .counters()
            .filter(|(name, _)| {
                !name.contains("parallel") && !name.contains("horizon") && !name.contains("batch")
            })
            .map(|(n, v)| (n.to_owned(), v))
            .collect();
        (sums, counters, sim.events_processed(), sim.now())
    }

    #[test]
    fn horizon_bit_identical_to_legacy() {
        let legacy = horizon_fingerprint(false, 1, None);
        for threads in [1, 2, 4] {
            let hz = horizon_fingerprint(true, threads, None);
            assert_eq!(legacy, hz, "horizon t={threads} diverged from legacy");
        }
    }

    #[test]
    fn horizon_run_until_bit_identical_to_legacy() {
        let cut = SimDuration::from_millis(7);
        let legacy = horizon_fingerprint(false, 1, Some(cut));
        for threads in [1, 4] {
            let hz = horizon_fingerprint(true, threads, Some(cut));
            assert_eq!(legacy, hz, "horizon t={threads} diverged under run_until");
        }
    }

    #[test]
    fn horizon_single_group_matches_legacy() {
        // No groups declared: everything in group 0; the scheduler must
        // degrade to windows + tie-steps with identical results.
        fn run(horizon: bool) -> (Vec<u64>, u64, SimTime) {
            let serial = wave_fingerprint(1, 6);
            let mut sim = Sim::new(7);
            sim.set_horizon(horizon);
            let ids: Vec<ActorId> = (0..6)
                .map(|i| sim.spawn(format!("w{i}"), Worker { sum: 0, peer: None }))
                .collect();
            for (i, id) in ids.iter().enumerate() {
                let peer = ids[(i + 1) % 6];
                sim.actor_mut::<Worker>(*id).unwrap().peer = Some(peer);
            }
            for id in &ids {
                for m in 0..8u64 {
                    sim.send(*id, Work(m, 3));
                }
            }
            sim.run();
            let sums: Vec<u64> = ids
                .iter()
                .map(|id| sim.actor::<Worker>(*id).unwrap().sum)
                .collect();
            assert_eq!(sums, serial.0, "must match the wave fixture too");
            (sums, sim.events_processed(), sim.now())
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn spawn_mid_advance_joins_spawners_group() {
        struct WindowSpawner {
            child: Option<ActorId>,
        }
        struct Go;
        impl Actor for WindowSpawner {
            fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
                if msg.downcast::<Go>().is_ok() {
                    let child = ctx.spawn(
                        "child",
                        Counter {
                            count: 0,
                            echo_to: None,
                        },
                    );
                    self.child = Some(child);
                    // Same-group zero-delay send: handled inside the window.
                    ctx.send(child, Bump(7));
                    ctx.send_after(SimDuration::from_millis(1), child, Bump(2));
                }
            }
        }
        let mut sim = Sim::new(0);
        sim.set_horizon(true);
        let ga = sim.new_group("a");
        let gb = sim.new_group("b");
        sim.set_lookahead(ga, gb, SimDuration::from_millis(5));
        sim.set_lookahead(gb, ga, SimDuration::from_millis(5));
        let prev = sim.set_default_group(ga);
        let s = sim.spawn("spawner", WindowSpawner { child: None });
        sim.set_default_group(gb);
        let other = sim.spawn(
            "other",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        sim.set_default_group(prev);
        // The spawner's 1 ms event sits strictly below both the far
        // foreground frontier and group b's head + lookahead, so it is
        // processed inside a window advance, not a tie-step.
        sim.send_after(SimDuration::from_millis(1), s, Go);
        sim.send_after(SimDuration::from_millis(20), other, Bump(1));
        sim.run();
        assert!(sim.metrics_ref().counter("sim.horizon.advances") > 0);
        let child = sim.actor::<WindowSpawner>(s).unwrap().child.unwrap();
        assert_eq!(sim.actor_group(child), ga, "child joins the spawner's group");
        assert_eq!(sim.actor::<Counter>(child).unwrap().count, 9);
        assert_eq!(sim.actor::<Counter>(other).unwrap().count, 1);
    }

    #[test]
    fn cross_group_kill_panics_in_horizon_mode() {
        struct Killer {
            victim: ActorId,
        }
        struct Go;
        impl Actor for Killer {
            fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
                if msg.downcast::<Go>().is_ok() {
                    ctx.kill(self.victim);
                }
            }
        }
        let mut sim = Sim::new(0);
        sim.set_horizon(true);
        let ga = sim.new_group("a");
        let gb = sim.new_group("b");
        let prev = sim.set_default_group(gb);
        let victim = sim.spawn(
            "victim",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        sim.set_default_group(ga);
        let k = sim.spawn("killer", Killer { victim });
        sim.set_default_group(prev);
        sim.send(k, Go);
        let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
            sim.run();
        }));
        assert!(panicked.is_err(), "cross-group kill must panic loudly");
    }

    #[test]
    fn horizon_halt_stops_and_preserves_queue_handback() {
        struct Halter;
        struct Now;
        impl Actor for Halter {
            fn on_message(&mut self, _msg: Msg, ctx: &mut Ctx<'_>) {
                ctx.halt();
            }
        }
        let mut sim = Sim::new(0);
        sim.set_horizon(true);
        let h = sim.spawn("halter", Halter);
        let c = sim.spawn(
            "c",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        sim.send(h, Now);
        sim.send_after(SimDuration::from_secs(1), c, Bump(1));
        sim.run();
        assert_eq!(sim.actor::<Counter>(c).unwrap().count, 0, "halt preempted");
        assert_eq!(sim.queue_len(), 1, "undelivered event handed back");
    }

    #[test]
    fn identical_seeds_identical_traces() {
        fn trace(seed: u64) -> (u64, SimTime) {
            struct Jitter {
                hops: u32,
            }
            struct Hop;
            impl Actor for Jitter {
                fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
                    if msg.downcast::<Hop>().is_ok() && self.hops < 100 {
                        self.hops += 1;
                        let d = SimDuration::from_nanos(ctx.rng().next_below(1000) + 1);
                        ctx.schedule_self(d, Hop);
                    }
                }
            }
            let mut sim = Sim::new(seed);
            let j = sim.spawn("jitter", Jitter { hops: 0 });
            sim.send(j, Hop);
            sim.run();
            (sim.events_processed(), sim.now())
        }
        assert_eq!(trace(1234), trace(1234));
        assert_ne!(trace(1234).1, trace(4321).1);
    }
}
