//! The discrete-event engine: actors, messages, and the scheduler.
//!
//! Design notes:
//!
//! * **Determinism.** Events are dispatched in `(time, sequence)` order; the
//!   sequence number is a monotone counter, so two events scheduled for the
//!   same instant fire in scheduling order (FIFO). The engine is
//!   single-threaded; all randomness comes from the engine's [`DetRng`].
//! * **Messages are `Box<dyn Any + Send>`.** Each subsystem (NDN, K8s, LIDC)
//!   defines its own message structs and downcasts on receipt. This keeps
//!   `lidc-simcore` free of domain types and lets independently developed
//!   crates share one event loop.
//! * **Effects, not re-entrancy.** While an actor handles a message it
//!   records *effects* (sends, spawns, kills) in its [`Ctx`]; the engine
//!   applies them after the handler returns. This sidesteps aliasing issues
//!   without `RefCell` gymnastics and keeps handler execution atomic in
//!   virtual time.
//! * **Batched dispatch.** A maximal run of *consecutive* (in `(time, seq)`
//!   order) events addressed to the same actor at the same instant is
//!   delivered as one [`Actor::on_batch`] call instead of one handler
//!   invocation per message. The default `on_batch` loops [`Actor::on_message`],
//!   so untouched actors behave exactly as before; actors on burst-heavy
//!   paths (the LIDC gateway, the NDN forwarder) override it to amortize
//!   per-delivery work. The contract:
//!
//!   * messages within a batch are in their original FIFO (`seq`) order;
//!   * only *consecutive* same-destination events coalesce — an interleaved
//!     event for another actor ends the batch, so cross-actor delivery
//!     order is exactly what sequential dispatch would produce;
//!   * effects recorded while handling a batch are applied after the whole
//!     batch, which yields the same queue contents as per-message dispatch
//!     (same-instant effects always sort after already-queued events);
//!   * batching can be disabled with [`Sim::set_batching`] (equivalence
//!     tests run both modes and compare end states).
//!
//! # Parallel same-instant dispatch and the determinism contract
//!
//! [`Sim::set_threads`] (default 1 = fully serial) lets the engine execute a
//! **wave** — consecutive same-instant batches addressed to *distinct*
//! actors — concurrently on a persistent worker pool. Parallel mode is
//! **bit-identical** to serial mode: the same seed produces the same event
//! schedule, the same replies, the same metrics readouts (excepting the
//! `sim.batch.*`/`sim.parallel.*` dispatch-observability counters, whose
//! batch granularity the corner below can shift), and the same actor end
//! states at any thread count. That guarantee rests on four mechanisms,
//! which together define what parallel mode may and may not reorder:
//!
//! * **Opt-in concurrency.** Only actors that declare
//!   [`Concurrency::Concurrent`] via [`Actor::concurrency`] join a wave; an
//!   [`Concurrency::Exclusive`] actor's batch (the default) always runs
//!   alone, exactly as in serial mode. A wave is the maximal prefix of
//!   consecutive same-instant runs for distinct Concurrent actors; a
//!   repeated destination, an Exclusive actor, or a time change ends it.
//!   Batch boundaries match serial mode with one exception: when a wave
//!   member sends a zero-delay message to a *later* member of the same
//!   wave, serial dispatch would coalesce that message into the later
//!   actor's batch, while a wave delivers it as a separate follow-up batch
//!   (the run was already popped). Message *order* and every delivery are
//!   unchanged — only batch granularity (and thus the `sim.batch.*`
//!   observability counters and drain stats, which are outside the
//!   equivalence contract) can differ in that corner.
//! * **Per-actor RNG streams.** [`Ctx::rng`] draws from a stream derived
//!   once per actor from the master seed (not from a shared engine stream),
//!   so the values an actor draws depend only on its own draw history —
//!   never on which other actors ran before it at the same instant.
//!   Harness-level draws through [`Sim::rng`] use the master stream and are
//!   unaffected.
//! * **Buffered effects, merged in run order.** A wave handler records
//!   sends/kills into a private buffer; buffers are applied in the wave's
//!   run order (the `(time, seq)` order of each run's first event), so
//!   scheduled events receive exactly the sequence numbers serial execution
//!   would assign.
//! * **Buffered metrics, merged in run order.** Each wave handler writes a
//!   private [`Metrics`] buffer; buffers fold into the engine registry via
//!   [`Metrics::merge`] (counters add, `set_max` keys max, histogram
//!   samples append in run order), reproducing the serial registry exactly.
//!
//! What parallel mode may reorder: the *wall-clock* interleaving of
//! Concurrent handlers within one wave (invisible by construction, given
//! the rules below). What it may **not** reorder: anything observable —
//! cross-actor delivery order, effect sequencing, RNG streams, metrics.
//!
//! The rules Concurrent actors must obey (violations panic or race):
//! handlers must not call [`Ctx::spawn`], [`Ctx::kill`], or [`Ctx::halt`]
//! (these require the serial effect interlock; all three panic from a wave
//! worker), and must not write state shared with other Concurrent actors
//! (reading state that only Exclusive actors write is safe — an Exclusive
//! writer never overlaps a wave).

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use crate::metrics::Metrics;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// A type-erased message. Use [`Msg::downcast`] (inherited from `Box<dyn
/// Any>`) to recover the concrete type.
pub type Msg = Box<dyn Any + Send>;

/// Identifies an actor registered with a [`Sim`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(u32);

impl ActorId {
    /// Raw index (useful for diagnostics and per-actor RNG derivation).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// Whether an actor's handlers may execute concurrently with *other*
/// actors' handlers at the same virtual instant (see the module docs for
/// the full determinism contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Concurrency {
    /// The default: this actor's batches always run alone, exactly as under
    /// serial dispatch. Safe for every actor.
    #[default]
    Exclusive,
    /// This actor's same-instant batch may run on a worker thread
    /// concurrently with other Concurrent actors' batches. The actor's
    /// handlers must not spawn/kill/halt (panics) and must not write state
    /// shared with other Concurrent actors.
    Concurrent,
}

/// A simulated component: it receives messages and reacts by recording
/// effects on the [`Ctx`].
pub trait Actor: Send + 'static {
    /// Handle one message delivered at the current virtual time.
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>);

    /// Declare whether this actor may join a parallel same-instant wave
    /// (default: [`Concurrency::Exclusive`] — never). See the module docs
    /// for the obligations [`Concurrency::Concurrent`] takes on.
    fn concurrency(&self) -> Concurrency {
        Concurrency::Exclusive
    }

    /// Handle a coalesced burst of messages, all addressed to this actor at
    /// the same virtual instant, in FIFO order (see the module docs for the
    /// full contract). Implementations must consume every message in
    /// `msgs`. The default drains the buffer through [`Actor::on_message`],
    /// preserving per-message behavior for actors that don't opt in.
    fn on_batch(&mut self, msgs: &mut Vec<Msg>, ctx: &mut Ctx<'_>) {
        for msg in msgs.drain(..) {
            self.on_message(msg, ctx);
        }
    }

    /// Called once when the actor is registered, before any message.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
}

/// Object-safe shim adding downcasting on top of [`Actor`]; blanket-implemented.
trait AnyActor: Actor {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Actor> AnyActor for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

enum Effect {
    Send {
        at: SimTime,
        to: ActorId,
        msg: Msg,
        background: bool,
    },
    Spawn {
        id: ActorId,
        label: String,
        actor: Box<dyn AnyActor>,
    },
    Kill(ActorId),
    Halt,
}

/// The handler-side view of the engine: scheduling, randomness, metrics.
pub struct Ctx<'a> {
    self_id: ActorId,
    now: SimTime,
    rng: &'a mut DetRng,
    metrics: &'a mut Metrics,
    /// `None` when this context belongs to a parallel wave worker: spawn
    /// (which must allocate from the engine's id counter synchronously) is
    /// unavailable there, as are kill/halt (see the module docs).
    next_actor_id: Option<&'a mut u32>,
    effects: &'a mut Vec<Effect>,
}

impl Ctx<'_> {
    /// The id of the actor currently handling a message.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's deterministic RNG stream, derived once from the master
    /// seed. Draws depend only on the actor's own history, never on what
    /// other actors ran first — the property parallel dispatch relies on.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Deliver `msg` to `to` at the current instant (after the current
    /// handler completes).
    pub fn send<M: Send + 'static>(&mut self, to: ActorId, msg: M) {
        self.send_after(SimDuration::ZERO, to, msg);
    }

    /// Deliver `msg` to `to` after `delay`.
    pub fn send_after<M: Send + 'static>(&mut self, delay: SimDuration, to: ActorId, msg: M) {
        self.effects.push(Effect::Send {
            at: self.now + delay,
            to,
            msg: Box::new(msg),
            background: false,
        });
    }

    /// Deliver an already-boxed message after `delay` (used when relaying).
    pub fn send_boxed_after(&mut self, delay: SimDuration, to: ActorId, msg: Msg) {
        self.effects.push(Effect::Send {
            at: self.now + delay,
            to,
            msg,
            background: false,
        });
    }

    /// Schedule a message to self after `delay` (a timer).
    pub fn schedule_self<M: Send + 'static>(&mut self, delay: SimDuration, msg: M) {
        self.send_after(delay, self.self_id, msg);
    }

    /// Schedule a *background* (daemon) timer to self: the event fires in
    /// order like any other, but pending background events alone do not keep
    /// [`Sim::run`] alive. Use for unbounded periodic work (load
    /// advertisement, cache refresh) so simulations terminate when all
    /// *foreground* work — requests, jobs, replies — has drained.
    pub fn schedule_self_background<M: Send + 'static>(&mut self, delay: SimDuration, msg: M) {
        self.effects.push(Effect::Send {
            at: self.now + delay,
            to: self.self_id,
            msg: Box::new(msg),
            background: true,
        });
    }

    /// Register a new actor; it starts receiving messages immediately.
    /// Returns its id synchronously so the spawner can address it.
    ///
    /// # Panics
    ///
    /// Panics when called from a [`Concurrency::Concurrent`] actor's
    /// handler inside a parallel wave: id allocation is inherently serial.
    pub fn spawn<A: Actor>(&mut self, label: impl Into<String>, actor: A) -> ActorId {
        let Some(counter) = self.next_actor_id.as_deref_mut() else {
            panic!("Ctx::spawn is not available to Concurrent actors in a parallel wave");
        };
        let id = ActorId(*counter);
        *counter += 1;
        self.effects.push(Effect::Spawn {
            id,
            label: label.into(),
            actor: Box::new(actor),
        });
        id
    }

    /// Remove an actor. Pending messages to it are silently dropped (the
    /// `sim.dropped_messages` counter records how many).
    ///
    /// # Panics
    ///
    /// Panics from a parallel-wave worker (a kill applied mid-wave could
    /// not reproduce serial drop accounting).
    pub fn kill(&mut self, id: ActorId) {
        assert!(
            self.next_actor_id.is_some(),
            "Ctx::kill is not available to Concurrent actors in a parallel wave"
        );
        self.effects.push(Effect::Kill(id));
    }

    /// Stop the simulation after the current handler completes.
    ///
    /// # Panics
    ///
    /// Panics from a parallel-wave worker (a halt mid-wave could not stop
    /// runs that already executed concurrently, diverging from serial).
    pub fn halt(&mut self) {
        assert!(
            self.next_actor_id.is_some(),
            "Ctx::halt is not available to Concurrent actors in a parallel wave"
        );
        self.effects.push(Effect::Halt);
    }
}

struct Scheduled {
    time: SimTime,
    seq: u64,
    to: ActorId,
    msg: Msg,
    background: bool,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Per-actor message-drain statistics (batched-dispatch observability).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Messages delivered to this actor.
    pub messages: u64,
    /// Handler invocations (each serving one batch of ≥ 1 messages).
    pub batches: u64,
    /// Largest single batch delivered.
    pub max_batch: u64,
}

impl DrainStats {
    /// Mean messages per handler invocation (0 when never delivered).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.messages as f64 / self.batches as f64
        }
    }
}

struct Slot {
    actor: Option<Box<dyn AnyActor>>,
    label: String,
    drain: DrainStats,
    /// This actor's private RNG stream (see [`Ctx::rng`]).
    rng: DetRng,
}

/// The discrete-event simulator.
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled>>,
    /// Queued events that are *not* background timers; [`Sim::run`] stops
    /// when this reaches zero even if daemon timers remain queued.
    foreground_queued: usize,
    slots: Vec<Slot>,
    next_actor_id: u32,
    rng: DetRng,
    metrics: Metrics,
    halted: bool,
    events_processed: u64,
    /// Same-instant coalescing switch (see module docs); on by default.
    batching: bool,
    /// Reused delivery buffer for batched dispatch.
    batch_buf: Vec<Msg>,
    /// Root for deriving per-actor RNG streams (never drawn from directly).
    actor_rng_root: DetRng,
    /// Worker count for parallel same-instant waves; 1 = fully serial.
    threads: usize,
    /// Lazily created worker pool (present only while `threads > 1`).
    pool: Option<WavePool>,
    /// Recycled message buffers for wave runs beyond the first.
    wave_bufs: Vec<Vec<Msg>>,
}

impl Sim {
    /// Create an engine seeded with `seed` (see DESIGN.md §8).
    pub fn new(seed: u64) -> Self {
        let rng = DetRng::new(seed);
        let actor_rng_root = rng.derive_str("actor-streams");
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            foreground_queued: 0,
            slots: Vec::new(),
            next_actor_id: 0,
            rng,
            metrics: Metrics::new(),
            halted: false,
            events_processed: 0,
            batching: true,
            batch_buf: Vec::new(),
            actor_rng_root,
            threads: 1,
            pool: None,
            wave_bufs: Vec::new(),
        }
    }

    /// Enable or disable same-instant batch coalescing (on by default).
    /// With batching off every message is delivered through
    /// [`Actor::on_message`] individually — the pre-batching behavior,
    /// kept for batch/sequential equivalence testing.
    pub fn set_batching(&mut self, on: bool) {
        self.batching = on;
    }

    /// Set the worker count for parallel same-instant dispatch (see the
    /// module docs for the determinism contract). `n <= 1` restores fully
    /// serial execution and tears down the pool. The schedule, metrics,
    /// and actor end states are bit-identical at every `n`.
    pub fn set_threads(&mut self, n: usize) {
        let n = n.max(1);
        if n != self.threads {
            self.threads = n;
            self.pool = None;
        }
    }

    /// The configured parallel-dispatch worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The engine RNG (for harness-level draws such as workload generation).
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// The metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Read-only metrics access.
    pub fn metrics_ref(&self) -> &Metrics {
        &self.metrics
    }

    /// Register a top-level actor and invoke its `on_start`.
    pub fn spawn<A: Actor>(&mut self, label: impl Into<String>, actor: A) -> ActorId {
        let id = ActorId(self.next_actor_id);
        self.next_actor_id += 1;
        self.install(id, label.into(), Box::new(actor));
        id
    }

    /// Slots are indexed by actor id; ids are allocated eagerly (so handlers
    /// can address children synchronously) but installed lazily, possibly out
    /// of order when spawns nest. Grow the table on demand to keep the
    /// id→index invariant regardless of installation order.
    fn ensure_slot(&mut self, idx: usize) {
        while self.slots.len() <= idx {
            let id = self.slots.len() as u64;
            self.slots.push(Slot {
                actor: None,
                label: String::new(),
                drain: DrainStats::default(),
                rng: self.actor_rng_root.derive(id),
            });
        }
    }

    fn install(&mut self, id: ActorId, label: String, actor: Box<dyn AnyActor>) {
        let idx = id.0 as usize;
        self.ensure_slot(idx);
        debug_assert!(self.slots[idx].actor.is_none(), "actor id reused");
        self.slots[idx] = Slot {
            actor: Some(actor),
            label,
            drain: DrainStats::default(),
            rng: self.actor_rng_root.derive(u64::from(id.0)),
        };
        self.run_start_hook(id);
    }

    fn run_start_hook(&mut self, id: ActorId) {
        let idx = id.0 as usize;
        let Some(mut actor) = self.slots[idx].actor.take() else {
            return;
        };
        let mut rng = self.slots[idx].rng.clone();
        let mut effects = Vec::new();
        {
            let mut ctx = Ctx {
                self_id: id,
                now: self.now,
                rng: &mut rng,
                metrics: &mut self.metrics,
                next_actor_id: Some(&mut self.next_actor_id),
                effects: &mut effects,
            };
            actor.on_start(&mut ctx);
        }
        self.slots[idx].rng = rng;
        if self.slots[idx].actor.is_none() {
            self.slots[idx].actor = Some(actor);
        }
        self.apply_effects(effects);
    }

    /// The human label an actor was registered under.
    pub fn label(&self, id: ActorId) -> &str {
        &self.slots[id.0 as usize].label
    }

    /// Whether an actor is still alive.
    pub fn is_alive(&self, id: ActorId) -> bool {
        self.slots
            .get(id.0 as usize)
            .map(|s| s.actor.is_some())
            .unwrap_or(false)
    }

    /// Immutable access to a registered actor's concrete state.
    pub fn actor<T: Actor>(&self, id: ActorId) -> Option<&T> {
        self.slots
            .get(id.0 as usize)?
            .actor
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable access to a registered actor's concrete state (harness use).
    pub fn actor_mut<T: Actor>(&mut self, id: ActorId) -> Option<&mut T> {
        self.slots
            .get_mut(id.0 as usize)?
            .actor
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Remove an actor from outside a handler.
    pub fn kill(&mut self, id: ActorId) {
        if let Some(slot) = self.slots.get_mut(id.0 as usize) {
            slot.actor = None;
        }
    }

    /// Enqueue a message for delivery at the current instant.
    pub fn send<M: Send + 'static>(&mut self, to: ActorId, msg: M) {
        self.schedule(self.now, to, Box::new(msg), false);
    }

    /// Enqueue a message for delivery after `delay`.
    pub fn send_after<M: Send + 'static>(&mut self, delay: SimDuration, to: ActorId, msg: M) {
        self.schedule(self.now + delay, to, Box::new(msg), false);
    }

    fn schedule(&mut self, at: SimTime, to: ActorId, msg: Msg, background: bool) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        if !background {
            self.foreground_queued += 1;
        }
        self.queue.push(Reverse(Scheduled {
            time: at,
            seq,
            to,
            msg,
            background,
        }));
    }

    fn apply_effects(&mut self, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::Send {
                    at,
                    to,
                    msg,
                    background,
                } => self.schedule(at, to, msg, background),
                Effect::Spawn { id, label, actor } => {
                    self.install(id, label, actor);
                }
                Effect::Kill(id) => {
                    if let Some(slot) = self.slots.get_mut(id.0 as usize) {
                        slot.actor = None;
                    }
                }
                Effect::Halt => self.halted = true,
            }
        }
    }

    /// Pop the maximal run of consecutive (seq-order) events for `to` at
    /// `time` into `batch`. Stopping at the first event for another actor
    /// preserves cross-actor delivery order.
    fn coalesce_run(&mut self, time: SimTime, to: ActorId, batch: &mut Vec<Msg>) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.time != time || head.to != to {
                break;
            }
            let Reverse(next) = self.queue.pop().expect("peeked");
            if !next.background {
                self.foreground_queued -= 1;
            }
            batch.push(next.msg);
        }
    }

    /// Whether `to` is alive and has declared [`Concurrency::Concurrent`].
    fn is_concurrent(&self, to: ActorId) -> bool {
        self.slots
            .get(to.0 as usize)
            .and_then(|s| s.actor.as_deref())
            .map(|a| a.concurrency() == Concurrency::Concurrent)
            .unwrap_or(false)
    }

    /// Dispatch the next event — plus, when batching is enabled, every
    /// consecutively-queued event for the same actor at the same instant
    /// (delivered as one [`Actor::on_batch`] call). With
    /// [`Sim::set_threads`] `> 1`, consecutive same-instant batches for
    /// distinct [`Concurrency::Concurrent`] actors execute as one parallel
    /// wave (bit-identical results; see the module docs). Returns `false`
    /// when the queue is empty or the simulation has been halted.
    pub fn step(&mut self) -> bool {
        if self.halted {
            return false;
        }
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event from the past");
        if !ev.background {
            self.foreground_queued -= 1;
        }
        self.now = ev.time;
        let to = ev.to;
        let mut batch = std::mem::take(&mut self.batch_buf);
        batch.clear();
        batch.push(ev.msg);
        if self.batching {
            self.coalesce_run(ev.time, to, &mut batch);
        }
        if self.threads > 1 && self.batching && self.is_concurrent(to) {
            // Collect the wave: consecutive same-instant runs for distinct
            // Concurrent actors. A repeated destination, an Exclusive (or
            // dead) actor, or a time change ends it — exactly the batch
            // boundaries serial dispatch would produce.
            let mut runs: Vec<(ActorId, Vec<Msg>)> = vec![(to, batch)];
            while let Some(Reverse(head)) = self.queue.peek() {
                if head.time != ev.time {
                    break;
                }
                let next_to = head.to;
                if runs.iter().any(|(a, _)| *a == next_to) || !self.is_concurrent(next_to) {
                    break;
                }
                let mut buf = self.wave_bufs.pop().unwrap_or_default();
                buf.clear();
                self.coalesce_run(ev.time, next_to, &mut buf);
                debug_assert!(!buf.is_empty(), "peeked run is non-empty");
                runs.push((next_to, buf));
            }
            if runs.len() > 1 {
                self.dispatch_wave(runs);
                return true;
            }
            batch = runs.pop().expect("first run").1;
        }
        self.deliver_serial(to, batch);
        true
    }

    /// Deliver one coalesced batch on the caller's thread (serial path).
    fn deliver_serial(&mut self, to: ActorId, mut batch: Vec<Msg>) {
        self.events_processed += batch.len() as u64;
        let idx = to.0 as usize;
        let taken = self.slots.get_mut(idx).and_then(|s| s.actor.take());
        let Some(mut actor) = taken else {
            self.metrics.incr("sim.dropped_messages", batch.len() as u64);
            batch.clear();
            self.batch_buf = batch;
            return;
        };
        {
            let slot = &mut self.slots[idx];
            slot.drain.messages += batch.len() as u64;
            slot.drain.batches += 1;
            slot.drain.max_batch = slot.drain.max_batch.max(batch.len() as u64);
        }
        if batch.len() > 1 {
            self.metrics.incr("sim.batch.bursts", 1);
            self.metrics
                .incr("sim.batch.coalesced_messages", batch.len() as u64 - 1);
            self.metrics.set_max("sim.batch.max_size", batch.len() as u64);
        }
        let mut rng = self.slots[idx].rng.clone();
        let mut effects = Vec::new();
        {
            let mut ctx = Ctx {
                self_id: to,
                now: self.now,
                rng: &mut rng,
                metrics: &mut self.metrics,
                next_actor_id: Some(&mut self.next_actor_id),
                effects: &mut effects,
            };
            if batch.len() == 1 {
                let msg = batch.pop().expect("one message");
                actor.on_message(msg, &mut ctx);
            } else {
                actor.on_batch(&mut batch, &mut ctx);
                debug_assert!(batch.is_empty(), "on_batch must drain its input");
            }
        }
        batch.clear();
        self.batch_buf = batch;
        self.slots[idx].rng = rng;
        // The actor may have killed itself via ctx.kill(self_id); only put it
        // back if nothing reclaimed the slot meanwhile.
        if self.slots[idx].actor.is_none() {
            self.slots[idx].actor = Some(actor);
        }
        // A self-kill effect is applied after reinstatement, so it still wins.
        self.apply_effects(effects);
    }

    /// Execute a collected wave of ≥ 2 distinct-actor runs concurrently and
    /// merge the buffered results in run order (see the module docs).
    fn dispatch_wave(&mut self, runs: Vec<(ActorId, Vec<Msg>)>) {
        let now = self.now;
        let jobs: Vec<WaveJob> = runs
            .into_iter()
            .enumerate()
            .map(|(index, (to, msgs))| {
                let slot = &mut self.slots[to.0 as usize];
                let actor = slot.actor.take().expect("wave member is alive");
                let rng = slot.rng.clone();
                WaveJob {
                    index,
                    to,
                    now,
                    msgs,
                    actor,
                    rng,
                }
            })
            .collect();
        let outs = if host_parallelism().min(self.threads) > 1 {
            let pool = self
                .pool
                .get_or_insert_with(|| WavePool::new(self.threads));
            pool.run(jobs)
        } else {
            // A single-CPU host can only lose to a pool: execute the wave
            // inline in run order — same buffered contexts, same merge,
            // bit-identical results, no thread overhead.
            jobs.into_iter().map(execute_wave_job).collect()
        };
        // Merge in run order: drain stats, engine batch metrics, per-worker
        // metrics buffers, effects (which assigns the sequence numbers
        // serial execution would have assigned), and buffer recycling.
        for out in outs {
            let idx = out.to.0 as usize;
            self.events_processed += out.delivered as u64;
            {
                let slot = &mut self.slots[idx];
                slot.drain.messages += out.delivered as u64;
                slot.drain.batches += 1;
                slot.drain.max_batch = slot.drain.max_batch.max(out.delivered as u64);
            }
            if out.delivered > 1 {
                self.metrics.incr("sim.batch.bursts", 1);
                self.metrics
                    .incr("sim.batch.coalesced_messages", out.delivered as u64 - 1);
                self.metrics.set_max("sim.batch.max_size", out.delivered as u64);
            }
            self.metrics.incr("sim.parallel.wave_runs", 1);
            self.metrics.merge(out.metrics);
            self.slots[idx].rng = out.rng;
            debug_assert!(self.slots[idx].actor.is_none());
            self.slots[idx].actor = Some(out.actor);
            self.apply_effects(out.effects);
            let mut buf = out.msgs;
            buf.clear();
            // The first run's buffer came from batch_buf (taken by step);
            // hand one buffer back there so neither pool grows by one per
            // wave and the serial path keeps its warmed capacity.
            if self.batch_buf.capacity() == 0 {
                self.batch_buf = buf;
            } else {
                self.wave_bufs.push(buf);
            }
        }
        self.metrics.incr("sim.parallel.waves", 1);
    }

    /// Run until all *foreground* work drains or the simulation halts.
    /// Background (daemon) timers — see [`Ctx::schedule_self_background`] —
    /// are processed in order while foreground events remain, but pending
    /// background timers alone do not keep the run alive. Returns the number
    /// of events processed by this call.
    pub fn run(&mut self) -> u64 {
        let start = self.events_processed;
        while self.foreground_queued > 0 && self.step() {}
        self.events_processed - start
    }

    /// Run until virtual time would exceed `deadline` (events at exactly
    /// `deadline` are processed). Later events stay queued.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let start = self.events_processed;
        loop {
            if self.halted {
                break;
            }
            match self.queue.peek() {
                Some(Reverse(ev)) if ev.time <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline && !self.halted {
            self.now = deadline;
        }
        self.events_processed - start
    }

    /// Run for `dur` of virtual time from now.
    pub fn run_for(&mut self, dur: SimDuration) -> u64 {
        let deadline = self.now + dur;
        self.run_until(deadline)
    }

    /// Per-actor drain statistics (messages, handler invocations, largest
    /// batch). Zeroes for ids never delivered to.
    pub fn drain_stats(&self, id: ActorId) -> DrainStats {
        self.slots
            .get(id.0 as usize)
            .map(|s| s.drain)
            .unwrap_or_default()
    }

    /// Aggregate drain statistics over every actor.
    pub fn drain_stats_total(&self) -> DrainStats {
        let mut total = DrainStats::default();
        for slot in &self.slots {
            total.messages += slot.drain.messages;
            total.batches += slot.drain.batches;
            total.max_batch = total.max_batch.max(slot.drain.max_batch);
        }
        total
    }

    /// Per-actor drain stats as a report table (busiest actors first),
    /// for experiment artifacts and diagnostics.
    pub fn dispatch_report(&self) -> crate::report::Table {
        let mut table = crate::report::Table::new(
            "Dispatch drain stats",
            &["actor", "messages", "batches", "mean batch", "max batch"],
        );
        let mut rows: Vec<(usize, &Slot)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.drain.batches > 0)
            .collect();
        rows.sort_by(|a, b| b.1.drain.messages.cmp(&a.1.drain.messages).then(a.0.cmp(&b.0)));
        for (idx, slot) in rows {
            table.push_row(vec![
                format!("{} (#{idx})", slot.label),
                slot.drain.messages.to_string(),
                slot.drain.batches.to_string(),
                format!("{:.2}", slot.drain.mean_batch()),
                slot.drain.max_batch.to_string(),
            ]);
        }
        table
    }

    /// Number of queued (undelivered) events, background timers included.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of queued *foreground* (non-daemon) events.
    pub fn foreground_queue_len(&self) -> usize {
        self.foreground_queued
    }
}

/// The host's usable core count (cached): waves execute on the pool only
/// when real parallelism exists; otherwise they run inline with identical
/// semantics.
fn host_parallelism() -> usize {
    use std::sync::OnceLock;
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// One wave run handed to a worker: the actor (taken from its slot), its
/// RNG stream, and its coalesced batch.
struct WaveJob {
    index: usize,
    to: ActorId,
    now: SimTime,
    msgs: Vec<Msg>,
    actor: Box<dyn AnyActor>,
    rng: DetRng,
}

/// A worker's buffered result: everything the merge step folds back into
/// the engine in run order.
struct WaveOut {
    index: usize,
    to: ActorId,
    msgs: Vec<Msg>,
    actor: Box<dyn AnyActor>,
    rng: DetRng,
    effects: Vec<Effect>,
    metrics: Metrics,
    delivered: usize,
}

/// Execute one wave run against a private context (no engine access).
fn execute_wave_job(job: WaveJob) -> WaveOut {
    let WaveJob {
        index,
        to,
        now,
        mut msgs,
        mut actor,
        mut rng,
    } = job;
    let delivered = msgs.len();
    let mut effects = Vec::new();
    let mut metrics = Metrics::new();
    {
        let mut ctx = Ctx {
            self_id: to,
            now,
            rng: &mut rng,
            metrics: &mut metrics,
            next_actor_id: None,
            effects: &mut effects,
        };
        if delivered == 1 {
            let msg = msgs.pop().expect("one message");
            actor.on_message(msg, &mut ctx);
        } else {
            actor.on_batch(&mut msgs, &mut ctx);
            debug_assert!(msgs.is_empty(), "on_batch must drain its input");
        }
    }
    msgs.clear();
    WaveOut {
        index,
        to,
        msgs,
        actor,
        rng,
        effects,
        metrics,
        delivered,
    }
}

/// A persistent pool of wave workers. Jobs fan out over one shared queue;
/// results come back tagged with their run index so the coordinator can
/// merge in run order regardless of completion order. Worker panics are
/// caught, shipped back, and re-raised on the coordinator thread so a
/// failing actor behaves like it does under serial dispatch.
struct WavePool {
    job_tx: Option<mpsc::Sender<WaveJob>>,
    out_rx: mpsc::Receiver<std::thread::Result<WaveOut>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WavePool {
    fn new(threads: usize) -> WavePool {
        let (job_tx, job_rx) = mpsc::channel::<WaveJob>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (out_tx, out_rx) = mpsc::channel();
        let handles = (0..threads)
            .map(|w| {
                let rx = Arc::clone(&job_rx);
                let tx = out_tx.clone();
                std::thread::Builder::new()
                    .name(format!("sim-wave-{w}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        let Ok(job) = job else {
                            break; // pool dropped
                        };
                        let out =
                            std::panic::catch_unwind(AssertUnwindSafe(|| execute_wave_job(job)));
                        if tx.send(out).is_err() {
                            break;
                        }
                    })
                    .expect("spawn wave worker")
            })
            .collect();
        WavePool {
            job_tx: Some(job_tx),
            out_rx,
            handles,
        }
    }

    /// Run all jobs to completion; results ordered by run index.
    fn run(&mut self, jobs: Vec<WaveJob>) -> Vec<WaveOut> {
        let n = jobs.len();
        let tx = self.job_tx.as_ref().expect("pool alive");
        for job in jobs {
            tx.send(job).expect("wave worker alive");
        }
        let mut outs: Vec<Option<WaveOut>> = (0..n).map(|_| None).collect();
        let mut panic: Option<Box<dyn Any + Send>> = None;
        for _ in 0..n {
            match self.out_rx.recv().expect("wave worker alive") {
                Ok(out) => {
                    let i = out.index;
                    outs[i] = Some(out);
                }
                Err(p) => {
                    if panic.is_none() {
                        panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
        outs.into_iter()
            .map(|o| o.expect("every run reported"))
            .collect()
    }
}

impl Drop for WavePool {
    fn drop(&mut self) {
        // Closing the job channel unblocks every worker's recv.
        self.job_tx.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        count: u64,
        echo_to: Option<ActorId>,
    }
    struct Bump(u64);

    impl Actor for Counter {
        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            if let Ok(b) = msg.downcast::<Bump>() {
                self.count += b.0;
                if let Some(to) = self.echo_to {
                    ctx.send(to, Bump(b.0));
                }
            }
        }
    }

    #[test]
    fn delivers_in_time_order() {
        struct Recorder {
            seen: Vec<u64>,
        }
        struct Tag(u64);
        impl Actor for Recorder {
            fn on_message(&mut self, msg: Msg, _ctx: &mut Ctx<'_>) {
                self.seen.push(msg.downcast::<Tag>().unwrap().0);
            }
        }
        let mut sim = Sim::new(0);
        let r = sim.spawn("rec", Recorder { seen: vec![] });
        sim.send_after(SimDuration::from_secs(3), r, Tag(3));
        sim.send_after(SimDuration::from_secs(1), r, Tag(1));
        sim.send_after(SimDuration::from_secs(2), r, Tag(2));
        sim.run();
        assert_eq!(sim.actor::<Recorder>(r).unwrap().seen, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(3));
    }

    #[test]
    fn same_instant_is_fifo() {
        struct Recorder {
            seen: Vec<u64>,
        }
        struct Tag(u64);
        impl Actor for Recorder {
            fn on_message(&mut self, msg: Msg, _ctx: &mut Ctx<'_>) {
                self.seen.push(msg.downcast::<Tag>().unwrap().0);
            }
        }
        let mut sim = Sim::new(0);
        let r = sim.spawn("rec", Recorder { seen: vec![] });
        for i in 0..10 {
            sim.send(r, Tag(i));
        }
        sim.run();
        assert_eq!(
            sim.actor::<Recorder>(r).unwrap().seen,
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut sim = Sim::new(0);
        let a = sim.spawn(
            "a",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        let b = sim.spawn(
            "b",
            Counter {
                count: 0,
                echo_to: Some(a),
            },
        );
        sim.send(b, Bump(5));
        sim.run();
        assert_eq!(sim.actor::<Counter>(a).unwrap().count, 5);
        assert_eq!(sim.actor::<Counter>(b).unwrap().count, 5);
    }

    #[test]
    fn messages_to_dead_actors_are_counted() {
        let mut sim = Sim::new(0);
        let a = sim.spawn(
            "a",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        sim.send_after(SimDuration::from_secs(1), a, Bump(1));
        sim.kill(a);
        assert!(!sim.is_alive(a));
        sim.run();
        assert_eq!(sim.metrics_ref().counter("sim.dropped_messages"), 1);
    }

    #[test]
    fn spawn_from_handler_and_message_new_actor() {
        struct Spawner {
            child: Option<ActorId>,
        }
        struct Go;
        impl Actor for Spawner {
            fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
                if msg.downcast::<Go>().is_ok() {
                    let child = ctx.spawn(
                        "child",
                        Counter {
                            count: 0,
                            echo_to: None,
                        },
                    );
                    self.child = Some(child);
                    ctx.send(child, Bump(7));
                }
            }
        }
        let mut sim = Sim::new(0);
        let s = sim.spawn("spawner", Spawner { child: None });
        sim.send(s, Go);
        sim.run();
        let child = sim.actor::<Spawner>(s).unwrap().child.unwrap();
        assert_eq!(sim.actor::<Counter>(child).unwrap().count, 7);
    }

    #[test]
    fn on_start_runs_and_can_schedule() {
        struct Starter {
            started: bool,
            fired: bool,
        }
        struct Timer;
        impl Actor for Starter {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                self.started = true;
                ctx.schedule_self(SimDuration::from_millis(10), Timer);
            }
            fn on_message(&mut self, msg: Msg, _ctx: &mut Ctx<'_>) {
                if msg.downcast::<Timer>().is_ok() {
                    self.fired = true;
                }
            }
        }
        let mut sim = Sim::new(0);
        let s = sim.spawn(
            "starter",
            Starter {
                started: false,
                fired: false,
            },
        );
        assert!(sim.actor::<Starter>(s).unwrap().started);
        sim.run();
        assert!(sim.actor::<Starter>(s).unwrap().fired);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(10));
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Sim::new(0);
        let a = sim.spawn(
            "a",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        sim.send_after(SimDuration::from_secs(1), a, Bump(1));
        sim.send_after(SimDuration::from_secs(10), a, Bump(1));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(sim.actor::<Counter>(a).unwrap().count, 1);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(sim.queue_len(), 1);
        sim.run();
        assert_eq!(sim.actor::<Counter>(a).unwrap().count, 2);
    }

    #[test]
    fn self_kill_takes_effect() {
        struct Quitter {
            handled: u32,
        }
        struct Die;
        impl Actor for Quitter {
            fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
                if msg.downcast::<Die>().is_ok() {
                    self.handled += 1;
                    ctx.kill(ctx.self_id());
                }
            }
        }
        let mut sim = Sim::new(0);
        let q = sim.spawn("quitter", Quitter { handled: 0 });
        sim.send(q, Die);
        sim.send_after(SimDuration::from_secs(1), q, Die);
        sim.run();
        assert!(!sim.is_alive(q));
        assert_eq!(sim.metrics_ref().counter("sim.dropped_messages"), 1);
    }

    #[test]
    fn halt_stops_the_world() {
        struct Halter;
        struct Now;
        impl Actor for Halter {
            fn on_message(&mut self, _msg: Msg, ctx: &mut Ctx<'_>) {
                ctx.halt();
            }
        }
        let mut sim = Sim::new(0);
        let h = sim.spawn("halter", Halter);
        let c = sim.spawn(
            "c",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        sim.send(h, Now);
        sim.send_after(SimDuration::from_secs(1), c, Bump(1));
        sim.run();
        assert_eq!(sim.actor::<Counter>(c).unwrap().count, 0, "halt preempted");
    }

    #[test]
    fn background_timers_do_not_keep_run_alive() {
        struct Beacon {
            ticks: u64,
        }
        struct Tick;
        impl Actor for Beacon {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule_self_background(SimDuration::from_secs(5), Tick);
            }
            fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
                if msg.downcast::<Tick>().is_ok() {
                    self.ticks += 1;
                    ctx.schedule_self_background(SimDuration::from_secs(5), Tick);
                }
            }
        }
        let mut sim = Sim::new(0);
        let b = sim.spawn("beacon", Beacon { ticks: 0 });
        let c = sim.spawn(
            "c",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        // Foreground work 12s out: the beacon's 5s and 10s ticks fire while
        // the foreground event is pending, then run() stops.
        sim.send_after(SimDuration::from_secs(12), c, Bump(1));
        sim.run();
        assert_eq!(sim.actor::<Counter>(c).unwrap().count, 1);
        assert_eq!(sim.actor::<Beacon>(b).unwrap().ticks, 2);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(12));
        assert_eq!(sim.foreground_queue_len(), 0);
        assert_eq!(sim.queue_len(), 1, "daemon tick still queued");
        // run_until *does* drive background time forward.
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(31));
        assert_eq!(sim.actor::<Beacon>(b).unwrap().ticks, 6);
    }

    #[test]
    fn same_instant_burst_coalesces_into_one_batch() {
        struct Batcher {
            batches: Vec<usize>,
        }
        struct Tag(#[allow(dead_code)] u64);
        impl Actor for Batcher {
            fn on_message(&mut self, _msg: Msg, _ctx: &mut Ctx<'_>) {
                self.batches.push(1);
            }
            fn on_batch(&mut self, msgs: &mut Vec<Msg>, _ctx: &mut Ctx<'_>) {
                self.batches.push(msgs.len());
                msgs.clear();
            }
        }
        let mut sim = Sim::new(0);
        let b = sim.spawn("batcher", Batcher { batches: vec![] });
        for i in 0..10 {
            sim.send(b, Tag(i));
        }
        sim.send_after(SimDuration::from_secs(1), b, Tag(99));
        sim.run();
        // 10 same-instant messages → one batch; the later singleton goes
        // through on_message.
        assert_eq!(sim.actor::<Batcher>(b).unwrap().batches, vec![10, 1]);
        assert_eq!(sim.events_processed(), 11);
        assert_eq!(sim.metrics_ref().counter("sim.batch.bursts"), 1);
        assert_eq!(sim.metrics_ref().counter("sim.batch.coalesced_messages"), 9);
        assert_eq!(sim.metrics_ref().counter("sim.batch.max_size"), 10);
        let stats = sim.drain_stats(b);
        assert_eq!(stats.messages, 11);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.max_batch, 10);
    }

    #[test]
    fn interleaved_destinations_split_batches() {
        struct Recorder {
            seen: Vec<u64>,
        }
        struct Tag(u64);
        impl Actor for Recorder {
            fn on_message(&mut self, msg: Msg, _ctx: &mut Ctx<'_>) {
                self.seen.push(msg.downcast::<Tag>().unwrap().0);
            }
            fn on_batch(&mut self, msgs: &mut Vec<Msg>, _ctx: &mut Ctx<'_>) {
                for msg in msgs.drain(..) {
                    self.seen.push(msg.downcast::<Tag>().unwrap().0);
                }
            }
        }
        let mut sim = Sim::new(0);
        let a = sim.spawn("a", Recorder { seen: vec![] });
        let b = sim.spawn("b", Recorder { seen: vec![] });
        // a a b a: only the leading `a a` run coalesces.
        sim.send(a, Tag(0));
        sim.send(a, Tag(1));
        sim.send(b, Tag(2));
        sim.send(a, Tag(3));
        sim.run();
        assert_eq!(sim.actor::<Recorder>(a).unwrap().seen, vec![0, 1, 3]);
        assert_eq!(sim.actor::<Recorder>(b).unwrap().seen, vec![2]);
        assert_eq!(sim.drain_stats(a).batches, 2, "run split by b's event");
        assert_eq!(sim.drain_stats(a).max_batch, 2);
    }

    #[test]
    fn batching_off_restores_per_message_delivery() {
        struct Batcher {
            calls: Vec<usize>,
        }
        struct Tag;
        impl Actor for Batcher {
            fn on_message(&mut self, _msg: Msg, _ctx: &mut Ctx<'_>) {
                self.calls.push(1);
            }
            fn on_batch(&mut self, msgs: &mut Vec<Msg>, _ctx: &mut Ctx<'_>) {
                self.calls.push(msgs.len());
                msgs.clear();
            }
        }
        let mut sim = Sim::new(0);
        sim.set_batching(false);
        let b = sim.spawn("b", Batcher { calls: vec![] });
        for _ in 0..5 {
            sim.send(b, Tag);
        }
        sim.run();
        assert_eq!(sim.actor::<Batcher>(b).unwrap().calls, vec![1; 5]);
        assert_eq!(sim.metrics_ref().counter("sim.batch.bursts"), 0);
    }

    #[test]
    fn batched_messages_to_dead_actor_all_counted_dropped() {
        let mut sim = Sim::new(0);
        let a = sim.spawn(
            "a",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        for _ in 0..4 {
            sim.send_after(SimDuration::from_secs(1), a, Bump(1));
        }
        sim.kill(a);
        sim.run();
        assert_eq!(sim.metrics_ref().counter("sim.dropped_messages"), 4);
    }

    #[test]
    fn dispatch_report_lists_busy_actors() {
        let mut sim = Sim::new(0);
        let a = sim.spawn(
            "busy",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        for _ in 0..3 {
            sim.send(a, Bump(1));
        }
        sim.run();
        let table = sim.dispatch_report();
        assert_eq!(table.rows.len(), 1);
        assert!(table.rows[0][0].starts_with("busy"));
        assert_eq!(table.rows[0][1], "3");
    }

    /// A Concurrent actor exercising everything a wave worker buffers:
    /// RNG draws, counter/histogram metrics, and same-instant sends.
    struct Worker {
        sum: u64,
        peer: Option<ActorId>,
    }
    /// `(payload, remaining echo hops)` — hops bound the ring ping-pong.
    struct Work(u64, u32);
    impl Actor for Worker {
        fn concurrency(&self) -> Concurrency {
            Concurrency::Concurrent
        }
        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
            let w = msg.downcast::<Work>().unwrap();
            let draw = ctx.rng().next_below(1000);
            self.sum = self.sum.wrapping_add(w.0).wrapping_add(draw);
            ctx.metrics().incr("worker.msgs", 1);
            ctx.metrics().record("worker.draw", draw as f64);
            if let (Some(p), 1..) = (self.peer, w.1) {
                ctx.send_after(SimDuration::from_millis(1), p, Work(draw, w.1 - 1));
            }
        }
    }

    /// Run a two-round workload over `k` Concurrent actors (each echoing a
    /// same-delay follow-up to a ring peer) and fingerprint everything the
    /// determinism contract covers.
    fn wave_fingerprint(threads: usize, k: usize) -> (Vec<u64>, Vec<(String, u64)>, u64, SimTime) {
        let mut sim = Sim::new(7);
        sim.set_threads(threads);
        let ids: Vec<ActorId> = (0..k)
            .map(|i| sim.spawn(format!("w{i}"), Worker { sum: 0, peer: None }))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            let peer = ids[(i + 1) % k];
            sim.actor_mut::<Worker>(*id).unwrap().peer = Some(peer);
        }
        // Contiguous same-instant runs per actor: one wave of k runs.
        for id in &ids {
            for m in 0..8u64 {
                sim.send(*id, Work(m, 3));
            }
        }
        sim.run();
        let sums = ids
            .iter()
            .map(|id| sim.actor::<Worker>(*id).unwrap().sum)
            .collect();
        let counters = sim
            .metrics_ref()
            .counters()
            .filter(|(name, _)| !name.contains("parallel"))
            .map(|(n, v)| (n.to_owned(), v))
            .collect();
        (sums, counters, sim.events_processed(), sim.now())
    }

    #[test]
    fn parallel_wave_bit_identical_to_serial() {
        let serial = wave_fingerprint(1, 6);
        for threads in [2, 4] {
            let parallel = wave_fingerprint(threads, 6);
            assert_eq!(serial, parallel, "threads={threads} diverged from serial");
        }
    }

    #[test]
    fn parallel_wave_actually_ran_in_wave_mode() {
        let mut sim = Sim::new(3);
        sim.set_threads(4);
        let a = sim.spawn("a", Worker { sum: 0, peer: None });
        let b = sim.spawn("b", Worker { sum: 0, peer: None });
        sim.send(a, Work(1, 0));
        sim.send(b, Work(2, 0));
        sim.run();
        assert_eq!(sim.metrics_ref().counter("sim.parallel.waves"), 1);
        assert_eq!(sim.metrics_ref().counter("sim.parallel.wave_runs"), 2);
    }

    #[test]
    fn exclusive_actor_breaks_a_wave() {
        let mut sim = Sim::new(3);
        sim.set_threads(4);
        let a = sim.spawn("a", Worker { sum: 0, peer: None });
        let x = sim.spawn(
            "x",
            Counter {
                count: 0,
                echo_to: None,
            },
        );
        let b = sim.spawn("b", Worker { sum: 0, peer: None });
        // a, then the Exclusive x, then b: no two Concurrent runs are
        // adjacent, so nothing parallelizes — and ordering is serial.
        sim.send(a, Work(1, 0));
        sim.send(x, Bump(1));
        sim.send(b, Work(2, 0));
        sim.run();
        assert_eq!(sim.metrics_ref().counter("sim.parallel.waves"), 0);
        assert_eq!(sim.actor::<Counter>(x).unwrap().count, 1);
    }

    #[test]
    fn repeated_destination_ends_the_wave() {
        let mut sim = Sim::new(3);
        sim.set_threads(2);
        let a = sim.spawn("a", Worker { sum: 0, peer: None });
        let b = sim.spawn("b", Worker { sum: 0, peer: None });
        // a a b a: the trailing a-run must not join the wave (its state
        // depends on the first a-run having completed).
        sim.send(a, Work(1, 0));
        sim.send(a, Work(2, 0));
        sim.send(b, Work(3, 0));
        sim.send(a, Work(4, 0));
        sim.run();
        assert_eq!(sim.metrics_ref().counter("sim.parallel.wave_runs"), 2);
        assert_eq!(sim.drain_stats(a).batches, 2);
    }

    #[test]
    fn spawn_from_wave_worker_panics() {
        struct Spawner;
        struct Go;
        impl Actor for Spawner {
            fn concurrency(&self) -> Concurrency {
                Concurrency::Concurrent
            }
            fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
                if msg.downcast::<Go>().is_ok() {
                    ctx.spawn(
                        "child",
                        Counter {
                            count: 0,
                            echo_to: None,
                        },
                    );
                }
            }
        }
        let mut sim = Sim::new(1);
        sim.set_threads(2);
        let a = sim.spawn("a", Spawner);
        let b = sim.spawn("b", Spawner);
        sim.send(a, Go);
        sim.send(b, Go);
        let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
            sim.run();
        }));
        assert!(panicked.is_err(), "spawn inside a wave must panic");
    }

    #[test]
    fn per_actor_rng_streams_are_insensitive_to_neighbors() {
        // Actor a's draws must not depend on whether actor b ran first at
        // the same instant — the property parallel dispatch relies on.
        fn sum_of(extra_first: bool) -> u64 {
            let mut sim = Sim::new(11);
            let b = sim.spawn("b", Worker { sum: 0, peer: None });
            let a = sim.spawn("a", Worker { sum: 0, peer: None });
            if extra_first {
                sim.send(b, Work(0, 0));
            }
            sim.send(a, Work(0, 0));
            sim.run();
            sim.actor::<Worker>(a).unwrap().sum
        }
        assert_eq!(sum_of(false), sum_of(true));
    }

    #[test]
    fn identical_seeds_identical_traces() {
        fn trace(seed: u64) -> (u64, SimTime) {
            struct Jitter {
                hops: u32,
            }
            struct Hop;
            impl Actor for Jitter {
                fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
                    if msg.downcast::<Hop>().is_ok() && self.hops < 100 {
                        self.hops += 1;
                        let d = SimDuration::from_nanos(ctx.rng().next_below(1000) + 1);
                        ctx.schedule_self(d, Hop);
                    }
                }
            }
            let mut sim = Sim::new(seed);
            let j = sim.spawn("jitter", Jitter { hops: 0 });
            sim.send(j, Hop);
            sim.run();
            (sim.events_processed(), sim.now())
        }
        assert_eq!(trace(1234), trace(1234));
        assert_ne!(trace(1234).1, trace(4321).1);
    }
}
