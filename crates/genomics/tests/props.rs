//! Property-based tests for the genomics workload: cost-model shape
//! invariants, accession parsing, and aligner equivalence/accuracy.

use lidc_genomics::aligner::{
    align_parallel, align_sequential, extend_diagonal, extend_diagonal_scalar, stats, Reference,
};
use lidc_genomics::costmodel::CostModel;
use lidc_genomics::pack::PackedSeq;
use lidc_genomics::sequence::{from_fastq, random_sequence, sample_reads, to_fastq, Read};
use lidc_genomics::sra::SraAccession;
use proptest::prelude::*;

proptest! {
    // --- cost model -----------------------------------------------------------

    /// The Table-I shape: more CPU or memory never makes a job *slower*
    /// (the measured effect is small but monotone), and the output size is
    /// purely a function of the dataset.
    #[test]
    fn cost_model_monotone_and_output_config_invariant(
        cpu_a in 1u64..64, cpu_b in 1u64..64,
        mem_a in 1u64..128, mem_b in 1u64..128,
    ) {
        let model = CostModel::paper_calibrated();
        let lo = model.estimate("BLAST", Some("SRR2931415"), 0, cpu_a.min(cpu_b), mem_a.min(mem_b));
        let hi = model.estimate("BLAST", Some("SRR2931415"), 0, cpu_a.max(cpu_b), mem_a.max(mem_b));
        prop_assert!(hi.duration <= lo.duration, "{} > {}", hi.duration, lo.duration);
        prop_assert_eq!(lo.output_bytes, hi.output_bytes);
    }

    /// The configuration insensitivity the paper reports: within the
    /// tested 1-8 cpu / 2-16 GB window, runtime varies by only a few
    /// percent.
    #[test]
    fn cost_model_config_insensitive_in_paper_window(
        cpu in 1u64..=8, mem in 2u64..=16,
    ) {
        let model = CostModel::paper_calibrated();
        let baseline = model.estimate("BLAST", Some("SRR2931415"), 0, 2, 4);
        let probe = model.estimate("BLAST", Some("SRR2931415"), 0, cpu, mem);
        let ratio = probe.duration.as_secs_f64() / baseline.duration.as_secs_f64();
        prop_assert!((0.9..=1.1).contains(&ratio), "ratio {ratio}");
    }

    /// Uncalibrated inputs scale linearly with input size.
    #[test]
    fn cost_model_linear_in_input_bytes(bytes in 1u64..1 << 34) {
        let model = CostModel::paper_calibrated();
        let one = model.estimate("COMPRESS", None, bytes, 2, 4);
        let two = model.estimate("COMPRESS", None, bytes * 2, 2, 4);
        let ratio = two.duration.as_secs_f64() / one.duration.as_secs_f64();
        prop_assert!((1.99..=2.01).contains(&ratio), "ratio {ratio}");
        prop_assert!(one.output_bytes <= bytes, "compression must not grow output");
    }

    // --- accession parsing -------------------------------------------------------

    #[test]
    fn valid_srr_accessions_parse(n in 1u64..99_999_999) {
        let s = format!("SRR{n}");
        let acc = SraAccession::parse(&s).expect("valid");
        prop_assert_eq!(acc.as_str(), s.as_str());
    }

    #[test]
    fn junk_accessions_rejected(s in "[a-z!@# ]{1,12}") {
        prop_assert!(SraAccession::parse(&s).is_err());
    }

    // --- sequences & aligner -------------------------------------------------------

    #[test]
    fn random_sequence_deterministic_acgt(len in 0usize..4096, seed in any::<u64>()) {
        let a = random_sequence(len, seed);
        let b = random_sequence(len, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), len);
        prop_assert!(a.iter().all(|c| matches!(c, b'A' | b'C' | b'G' | b'T')));
    }

    /// The rayon-parallel aligner returns exactly the sequential results.
    #[test]
    fn parallel_aligner_equals_sequential(seed in any::<u64>()) {
        let reference = Reference::synthesize(20_000, 12, seed);
        let reads = sample_reads(&reference.seq, 200, 80, 0.02, seed ^ 0xABCD);
        let seq = align_sequential(&reference, &reads);
        let par = align_parallel(&reference, &reads);
        prop_assert_eq!(seq, par);
    }

    /// Error-free reads sampled from the reference map back to their true
    /// positions.
    #[test]
    fn perfect_reads_map_to_origin(seed in any::<u64>()) {
        let reference = Reference::synthesize(20_000, 12, seed);
        let reads = sample_reads(&reference.seq, 100, 64, 0.0, seed ^ 0x1234);
        let alignments = align_sequential(&reference, &reads);
        let s = stats(&alignments);
        prop_assert_eq!(s.mapped, 100, "all error-free reads map");
        prop_assert!((s.mean_identity - 1.0).abs() < 1e-12, "identity {}", s.mean_identity);
        for (read, alignment) in reads.iter().zip(&alignments) {
            prop_assert_eq!(alignment.ref_pos, Some(read.true_pos));
        }
    }

    /// Differential test of the vectorized extension kernel: for any
    /// reference, read, and diagonal (including diagonals hanging off
    /// either boundary and fully disjoint ones), the packed XOR+popcount
    /// kernel returns exactly the scalar zip-filter's clip, matches, and
    /// score.
    #[test]
    fn simd_extend_matches_scalar(
        ref_len in 1usize..1024,
        read_len in 1usize..300,
        diagonal in -400i64..1200,
        seed in any::<u64>(),
        from_reference in any::<bool>(),
    ) {
        let mut reference = random_sequence(ref_len, seed);
        // Half the cases read from the reference itself (high-identity
        // extensions), half from an unrelated sequence (~25% identity).
        let mut read = if from_reference && ref_len >= read_len {
            let start = (seed as usize) % (ref_len - read_len + 1);
            reference[start..start + read_len].to_vec()
        } else {
            random_sequence(read_len, seed ^ 0x5EED)
        };
        // Sprinkle non-ACGT bytes (ambiguity codes, lowercase) into both
        // sequences: the kernels must agree on arbitrary input, with
        // every non-ACGT byte collapsing to T's 2-bit code.
        read[read_len / 2] = b'N';
        reference[ref_len / 2] = b"NnxT"[(seed % 4) as usize];
        let packed = extend_diagonal(
            &PackedSeq::from_ascii(&read),
            &PackedSeq::from_ascii(&reference),
            diagonal,
        );
        let scalar = extend_diagonal_scalar(&read, &reference, diagonal);
        prop_assert_eq!(packed, scalar);
    }

    /// sample_reads → to_fastq → from_fastq round trip over variable read
    /// lengths, boundary sampling positions, and filtering gaps: ids and
    /// sequences survive.
    #[test]
    fn fastq_round_trip_variable_reads(
        seed in any::<u64>(),
        ref_len in 40usize..400,
        len_a in 1usize..40,
        len_b in 1usize..40,
        drop_mask in any::<u64>(),
    ) {
        let reference = random_sequence(ref_len, seed);
        // Two batches with different read lengths; small references make
        // position-0 and tail sampling common. Pin one read at each
        // boundary so every case covers them.
        let mut reads = sample_reads(&reference, 20, len_a, 0.05, seed ^ 1);
        let batch_b = sample_reads(&reference, 20, len_b, 0.05, seed ^ 2);
        reads.extend(batch_b.into_iter().map(|mut r| {
            r.id += 20;
            r
        }));
        reads[0] = Read { id: 0, seq: reference[..len_a].to_vec(), true_pos: 0 };
        let tail_start = ref_len - len_b;
        reads[20] = Read {
            id: 20,
            seq: reference[tail_start..].to_vec(),
            true_pos: tail_start as u32,
        };
        // Simulate upstream filtering: drop an arbitrary subset, leaving
        // gaps in the id sequence.
        let kept: Vec<Read> = reads
            .into_iter()
            .filter(|r| drop_mask & (1u64 << (r.id % 64)) == 0)
            .collect();
        let parsed = from_fastq(&to_fastq(&kept, "SRR2931415"));
        prop_assert_eq!(parsed.len(), kept.len());
        for (orig, round) in kept.iter().zip(&parsed) {
            prop_assert_eq!(orig.id, round.id, "ids survive filtering gaps");
            prop_assert_eq!(&orig.seq, &round.seq);
        }
    }
}
