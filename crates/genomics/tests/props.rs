//! Property-based tests for the genomics workload: cost-model shape
//! invariants, accession parsing, and aligner equivalence/accuracy.

use lidc_genomics::aligner::{align_parallel, align_sequential, stats, Reference};
use lidc_genomics::costmodel::CostModel;
use lidc_genomics::sequence::{random_sequence, sample_reads};
use lidc_genomics::sra::SraAccession;
use proptest::prelude::*;

proptest! {
    // --- cost model -----------------------------------------------------------

    /// The Table-I shape: more CPU or memory never makes a job *slower*
    /// (the measured effect is small but monotone), and the output size is
    /// purely a function of the dataset.
    #[test]
    fn cost_model_monotone_and_output_config_invariant(
        cpu_a in 1u64..64, cpu_b in 1u64..64,
        mem_a in 1u64..128, mem_b in 1u64..128,
    ) {
        let model = CostModel::paper_calibrated();
        let lo = model.estimate("BLAST", Some("SRR2931415"), 0, cpu_a.min(cpu_b), mem_a.min(mem_b));
        let hi = model.estimate("BLAST", Some("SRR2931415"), 0, cpu_a.max(cpu_b), mem_a.max(mem_b));
        prop_assert!(hi.duration <= lo.duration, "{} > {}", hi.duration, lo.duration);
        prop_assert_eq!(lo.output_bytes, hi.output_bytes);
    }

    /// The configuration insensitivity the paper reports: within the
    /// tested 1-8 cpu / 2-16 GB window, runtime varies by only a few
    /// percent.
    #[test]
    fn cost_model_config_insensitive_in_paper_window(
        cpu in 1u64..=8, mem in 2u64..=16,
    ) {
        let model = CostModel::paper_calibrated();
        let baseline = model.estimate("BLAST", Some("SRR2931415"), 0, 2, 4);
        let probe = model.estimate("BLAST", Some("SRR2931415"), 0, cpu, mem);
        let ratio = probe.duration.as_secs_f64() / baseline.duration.as_secs_f64();
        prop_assert!((0.9..=1.1).contains(&ratio), "ratio {ratio}");
    }

    /// Uncalibrated inputs scale linearly with input size.
    #[test]
    fn cost_model_linear_in_input_bytes(bytes in 1u64..1 << 34) {
        let model = CostModel::paper_calibrated();
        let one = model.estimate("COMPRESS", None, bytes, 2, 4);
        let two = model.estimate("COMPRESS", None, bytes * 2, 2, 4);
        let ratio = two.duration.as_secs_f64() / one.duration.as_secs_f64();
        prop_assert!((1.99..=2.01).contains(&ratio), "ratio {ratio}");
        prop_assert!(one.output_bytes <= bytes, "compression must not grow output");
    }

    // --- accession parsing -------------------------------------------------------

    #[test]
    fn valid_srr_accessions_parse(n in 1u64..99_999_999) {
        let s = format!("SRR{n}");
        let acc = SraAccession::parse(&s).expect("valid");
        prop_assert_eq!(acc.as_str(), s.as_str());
    }

    #[test]
    fn junk_accessions_rejected(s in "[a-z!@# ]{1,12}") {
        prop_assert!(SraAccession::parse(&s).is_err());
    }

    // --- sequences & aligner -------------------------------------------------------

    #[test]
    fn random_sequence_deterministic_acgt(len in 0usize..4096, seed in any::<u64>()) {
        let a = random_sequence(len, seed);
        let b = random_sequence(len, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), len);
        prop_assert!(a.iter().all(|c| matches!(c, b'A' | b'C' | b'G' | b'T')));
    }

    /// The rayon-parallel aligner returns exactly the sequential results.
    #[test]
    fn parallel_aligner_equals_sequential(seed in any::<u64>()) {
        let reference = Reference::synthesize(20_000, 12, seed);
        let reads = sample_reads(&reference.seq, 200, 80, 0.02, seed ^ 0xABCD);
        let seq = align_sequential(&reference, &reads);
        let par = align_parallel(&reference, &reads);
        prop_assert_eq!(seq, par);
    }

    /// Error-free reads sampled from the reference map back to their true
    /// positions.
    #[test]
    fn perfect_reads_map_to_origin(seed in any::<u64>()) {
        let reference = Reference::synthesize(20_000, 12, seed);
        let reads = sample_reads(&reference.seq, 100, 64, 0.0, seed ^ 0x1234);
        let alignments = align_sequential(&reference, &reads);
        let s = stats(&alignments, 64);
        prop_assert_eq!(s.mapped, 100, "all error-free reads map");
        for (read, alignment) in reads.iter().zip(&alignments) {
            prop_assert_eq!(alignment.ref_pos, Some(read.true_pos));
        }
    }
}
