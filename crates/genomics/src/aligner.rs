//! A real (miniature) seed-and-extend aligner — the Magic-BLAST stand-in.
//!
//! This is genuine computation, not a sleep: k-mer indexing of the
//! reference, seed lookup per read, diagonal voting, and ungapped extension
//! scoring, parallelised over reads with rayon. It serves two purposes:
//! the criterion benches measure a *real* HPC kernel (and the sequential vs
//! parallel speed-up), and its measured per-base throughput grounds the
//! virtual-time cost model's scale (see [`crate::costmodel`]).
//!
//! The hot path runs on the 2-bit packed representation from
//! [`crate::pack`]: the reference is indexed through O(1) packed k-mer
//! windows, reads are seeded the same way, and the ungapped extension XORs
//! packed read vs reference words and popcounts base mismatches 32 bases
//! at a time. [`extend_diagonal_scalar`] keeps the byte-wise kernel alive
//! for differential testing.
//!
//! Reads whose best diagonal hangs off either end of the reference are
//! *clipped* to the read/reference overlap and scored over it — the seed
//! implementation silently unmapped them, which biased both the mapping
//! rate and the calibrated throughput at the reference boundaries.

use std::cell::RefCell;
use std::collections::HashMap;

use rayon::prelude::*;

use crate::pack::{count_matches, count_matches_scalar, PackedSeq};
use crate::sequence::{random_sequence, sample_reads, Read};

/// Match reward in the ungapped extension score.
pub const MATCH_SCORE: i32 = 2;
/// Mismatch penalty.
pub const MISMATCH_PENALTY: i32 = -3;

/// An indexed reference sequence.
#[derive(Debug, Clone)]
pub struct Reference {
    /// The reference bases.
    pub seq: Vec<u8>,
    packed: PackedSeq,
    k: usize,
    index: HashMap<u64, Vec<u32>>,
}

impl Reference {
    /// Index `seq` with k-mers of length `k` (k ≤ 31).
    pub fn index(seq: Vec<u8>, k: usize) -> Reference {
        assert!((1..=31).contains(&k), "k must be in 1..=31");
        assert!(seq.len() >= k, "reference shorter than k");
        let packed = PackedSeq::from_ascii(&seq);
        let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
        for pos in 0..=(seq.len() - k) {
            index.entry(packed.kmer(pos, k)).or_default().push(pos as u32);
        }
        Reference {
            seq,
            packed,
            k,
            index,
        }
    }

    /// Generate and index a synthetic reference of `len` bases.
    pub fn synthesize(len: usize, k: usize, seed: u64) -> Reference {
        Reference::index(random_sequence(len, seed), k)
    }

    /// The k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct k-mers indexed.
    pub fn distinct_kmers(&self) -> usize {
        self.index.len()
    }

    /// The 2-bit packed reference (the extension kernel's operand).
    pub fn packed(&self) -> &PackedSeq {
        &self.packed
    }
}

/// The outcome of aligning one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alignment {
    /// The read's id.
    pub read_id: u32,
    /// Best mapping position, if the score cleared the threshold.
    pub ref_pos: Option<u32>,
    /// Ungapped extension score at the best diagonal.
    pub score: i32,
    /// Matching bases at the best diagonal.
    pub matches: u32,
    /// Bases scored at the best diagonal — the read/reference overlap,
    /// shorter than the read when the diagonal hangs off a reference
    /// boundary; 0 when no diagonal was found. Identity is
    /// `matches / aligned_len`.
    pub aligned_len: u32,
}

/// Minimum fraction of matching bases for a mapping to be reported.
const MIN_IDENTITY: f64 = 0.8;

/// Minimum fraction of the read that must overlap the reference for a
/// clipped boundary mapping to be reported. Without this floor, a junk
/// read whose only index hit is a single seed k-mer at the very edge of
/// the reference would "map" with identity 1.0 over nothing but the seed
/// itself.
const MIN_OVERLAP_FRACTION: f64 = 0.5;

/// One ungapped extension along a diagonal, clipped to the read/reference
/// overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extension {
    /// First read base scored (> 0 when the diagonal hangs off the
    /// reference's left edge).
    pub read_start: u32,
    /// First reference base scored.
    pub ref_start: u32,
    /// Bases scored (0 when the diagonal has no overlap).
    pub len: u32,
    /// Matching bases in the overlap.
    pub matches: u32,
    /// `matches · MATCH_SCORE + mismatches · MISMATCH_PENALTY`.
    pub score: i32,
}

/// Clip a diagonal to the read/reference overlap. Returns
/// `(read_start, ref_start, len)`; `len` is 0 when they do not overlap.
#[inline]
fn clip_diagonal(read_len: usize, ref_len: usize, diagonal: i64) -> (usize, usize, usize) {
    let read_start = if diagonal >= 0 {
        0
    } else {
        diagonal.unsigned_abs().min(read_len as u64) as usize
    };
    let ref_start = if diagonal >= 0 {
        (diagonal as u64).min(ref_len as u64) as usize
    } else {
        0
    };
    let len = (read_len - read_start).min(ref_len - ref_start);
    (read_start, ref_start, len)
}

#[inline]
fn extension(read_start: usize, ref_start: usize, len: usize, matches: u32) -> Extension {
    let mismatches = len as u32 - matches;
    Extension {
        read_start: read_start as u32,
        ref_start: ref_start as u32,
        len: len as u32,
        matches,
        score: matches as i32 * MATCH_SCORE + mismatches as i32 * MISMATCH_PENALTY,
    }
}

/// Ungapped extension of `read` against `reference` along `diagonal`
/// (`ref_pos − read_offset`), clipped to the overlap: the vectorized
/// kernel behind [`align_sequential`] / [`align_parallel`] — packed XOR +
/// popcount, 32 bases per iteration.
pub fn extend_diagonal(read: &PackedSeq, reference: &PackedSeq, diagonal: i64) -> Extension {
    let (read_start, ref_start, len) = clip_diagonal(read.len(), reference.len(), diagonal);
    let matches = count_matches(read, read_start, reference, ref_start, len);
    extension(read_start, ref_start, len, matches)
}

/// The scalar (zip-filter over 2-bit base codes) twin of
/// [`extend_diagonal`], kept as the differential-testing and benchmark
/// baseline; agrees with the packed kernel on arbitrary byte input
/// (non-`ACGT` bytes collapse to `T`'s code in both).
pub fn extend_diagonal_scalar(read: &[u8], reference: &[u8], diagonal: i64) -> Extension {
    let (read_start, ref_start, len) = clip_diagonal(read.len(), reference.len(), diagonal);
    let matches = count_matches_scalar(
        &read[read_start..read_start + len],
        &reference[ref_start..ref_start + len],
    );
    extension(read_start, ref_start, len, matches)
}

/// Per-thread scratch reused across reads: the packed read buffer and the
/// diagonal-vote map. Rayon workers each get their own copy, so
/// [`align_parallel`] stays allocation-light without threading state
/// through the vendored `par_iter`.
struct AlignScratch {
    packed_read: PackedSeq,
    votes: HashMap<i64, u32>,
}

thread_local! {
    static SCRATCH: RefCell<AlignScratch> = RefCell::new(AlignScratch {
        packed_read: PackedSeq::default(),
        votes: HashMap::new(),
    });
}

fn align_one(reference: &Reference, read: &Read) -> Alignment {
    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        align_one_with(reference, read, scratch)
    })
}

fn align_one_with(reference: &Reference, read: &Read, scratch: &mut AlignScratch) -> Alignment {
    let k = reference.k;
    let unmapped = Alignment {
        read_id: read.id,
        ref_pos: None,
        score: 0,
        matches: 0,
        aligned_len: 0,
    };
    if read.seq.len() < k {
        return unmapped;
    }
    let packed_read = &mut scratch.packed_read;
    packed_read.pack(&read.seq);
    // Seed: vote for diagonals (ref_pos - read_offset).
    let votes = &mut scratch.votes;
    votes.clear();
    let stride = (k / 2).max(1);
    let mut offset = 0;
    while offset + k <= read.seq.len() {
        let kmer = packed_read.kmer(offset, k);
        if let Some(positions) = reference.index.get(&kmer) {
            // Highly repetitive seeds contribute noise; cap their votes.
            for &pos in positions.iter().take(16) {
                *votes.entry(pos as i64 - offset as i64).or_insert(0) += 1;
            }
        }
        offset += stride;
    }
    // Deterministic best diagonal: most votes, smallest diagonal tie-break.
    let Some((&diagonal, _)) = votes
        .iter() // lidc-lint: allow(unordered-iter) reason="max_by comparator is a total order (votes, then diagonal) — the winner is independent of visit order"
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
    else {
        return unmapped;
    };
    // Extend: ungapped comparison along the diagonal, clipped to the
    // read/reference overlap so boundary reads are scored, not dropped.
    let ext = extend_diagonal(packed_read, &reference.packed, diagonal);
    if ext.len == 0 {
        return unmapped;
    }
    let mapped = ext.matches as f64 >= MIN_IDENTITY * ext.len as f64
        && ext.len as f64 >= MIN_OVERLAP_FRACTION * read.seq.len() as f64;
    Alignment {
        read_id: read.id,
        ref_pos: if mapped { Some(ext.ref_start) } else { None },
        score: ext.score,
        matches: ext.matches,
        aligned_len: ext.len,
    }
}

/// Align every read sequentially.
pub fn align_sequential(reference: &Reference, reads: &[Read]) -> Vec<Alignment> {
    reads.iter().map(|r| align_one(reference, r)).collect()
}

/// Align every read in parallel (rayon).
pub fn align_parallel(reference: &Reference, reads: &[Read]) -> Vec<Alignment> {
    reads.par_iter().map(|r| align_one(reference, r)).collect()
}

/// Summary statistics over a batch of alignments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentStats {
    /// Total reads processed.
    pub total: usize,
    /// Reads mapped above the identity threshold.
    pub mapped: usize,
    /// Mean identity of mapped reads (matches / aligned bases).
    pub mean_identity: f64,
}

/// Compute summary statistics. Identity comes from each alignment's own
/// `matches / aligned_len`, so variable-length read sets (and clipped
/// boundary alignments) are summarised correctly.
pub fn stats(alignments: &[Alignment]) -> AlignmentStats {
    let mut mapped = 0usize;
    let mut identity_sum = 0.0;
    for a in alignments.iter().filter(|a| a.ref_pos.is_some()) {
        mapped += 1;
        identity_sum += a.matches as f64 / a.aligned_len as f64;
    }
    AlignmentStats {
        total: alignments.len(),
        mapped,
        mean_identity: if mapped == 0 { 0.0 } else { identity_sum / mapped as f64 },
    }
}

/// Measure the packed extension kernel's single-thread throughput in
/// bases/second: repeated [`extend_diagonal`] calls over a synthetic
/// reference until `total_bases` have been scored, timed wall-clock. This
/// is the measurement [`crate::costmodel::KernelCalibration`] grounds the
/// cost model's scale constants in.
pub fn extension_throughput(total_bases: u64, seed: u64) -> f64 {
    const READ_LEN: usize = 4096;
    let reference = random_sequence(1 << 16, seed);
    let packed_ref = PackedSeq::from_ascii(&reference);
    let reads = sample_reads(&reference, 64, READ_LEN, 0.01, seed ^ 0x51D);
    let packed: Vec<(PackedSeq, i64)> = reads
        .iter()
        .map(|r| (PackedSeq::from_ascii(&r.seq), r.true_pos as i64))
        .collect();
    let mut scored = 0u64;
    let mut sink = 0u32;
    // lidc-lint: allow(wall-clock) reason="deliberately measures the real host: KernelCalibration grounds the cost model in this machine's throughput; the result feeds simulation *inputs*, never simulated time"
    let start = std::time::Instant::now();
    while scored < total_bases {
        for (read, diagonal) in &packed {
            sink = sink.wrapping_add(extend_diagonal(read, &packed_ref, *diagonal).matches);
            scored += READ_LEN as u64;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    scored as f64 / secs.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::sample_reads;

    fn fixture() -> (Reference, Vec<Read>) {
        let reference = Reference::synthesize(20_000, 15, 42);
        let reads = sample_reads(&reference.seq, 200, 100, 0.02, 43);
        (reference, reads)
    }

    #[test]
    fn clean_reads_map_to_true_positions() {
        let reference = Reference::synthesize(20_000, 15, 1);
        let reads = sample_reads(&reference.seq, 100, 100, 0.0, 2);
        let alignments = align_sequential(&reference, &reads);
        let exact = alignments
            .iter()
            .zip(&reads)
            .filter(|(a, r)| a.ref_pos == Some(r.true_pos))
            .count();
        assert!(exact >= 97, "{exact}/100 exact mappings (repeats may differ)");
    }

    #[test]
    fn noisy_reads_mostly_map() {
        let (reference, reads) = fixture();
        let alignments = align_sequential(&reference, &reads);
        let s = stats(&alignments);
        assert!(s.mapped as f64 >= 0.95 * s.total as f64, "{s:?}");
        assert!(s.mean_identity > 0.95, "{s:?}");
    }

    #[test]
    fn random_reads_do_not_map() {
        let reference = Reference::synthesize(20_000, 15, 1);
        // Reads from an unrelated sequence.
        let noise = crate::sequence::random_sequence(50_000, 999);
        let reads = sample_reads(&noise, 100, 100, 0.0, 3);
        let alignments = align_sequential(&reference, &reads);
        let mapped = alignments.iter().filter(|a| a.ref_pos.is_some()).count();
        assert!(mapped <= 2, "{mapped} spurious mappings");
    }

    #[test]
    fn parallel_equals_sequential() {
        let (reference, reads) = fixture();
        let seq = align_sequential(&reference, &reads);
        let par = align_parallel(&reference, &reads);
        assert_eq!(seq, par);
    }

    #[test]
    fn deterministic_across_runs() {
        let (reference, reads) = fixture();
        assert_eq!(
            align_sequential(&reference, &reads),
            align_sequential(&reference, &reads)
        );
    }

    #[test]
    fn short_read_unmapped() {
        let reference = Reference::synthesize(1000, 15, 1);
        let read = Read {
            id: 0,
            seq: b"ACGT".to_vec(),
            true_pos: 0,
        };
        let a = align_sequential(&reference, &[read]);
        assert_eq!(a[0].ref_pos, None);
    }

    /// The edge-drop regression: reads whose best diagonal hangs off
    /// either reference boundary must clip to the overlap and map, not
    /// silently unmap. The seed implementation returned `unmapped` for
    /// any `diagonal < 0` or window past the reference end.
    #[test]
    fn boundary_overhanging_reads_map_clipped() {
        let reference = Reference::synthesize(20_000, 15, 7);
        let n = reference.seq.len();
        // Left overhang: 4 junk bases, then the first 96 reference bases
        // (junk differs from the reference so the best diagonal is -4).
        let mut left = Vec::with_capacity(100);
        for i in 0..4 {
            let b = reference.seq[i];
            left.push(if b == b'A' { b'C' } else { b'A' });
        }
        left.extend_from_slice(&reference.seq[..96]);
        // Right overhang: the last 96 reference bases, then 4 junk bases.
        let mut right = reference.seq[n - 96..].to_vec();
        for i in 0..4 {
            let b = reference.seq[n - 4 + i];
            right.push(if b == b'G' { b'T' } else { b'G' });
        }
        let reads = vec![
            Read { id: 0, seq: left, true_pos: 0 },
            Read { id: 1, seq: right, true_pos: (n - 96) as u32 },
        ];
        let alignments = align_sequential(&reference, &reads);
        assert_eq!(alignments[0].ref_pos, Some(0), "{:?}", alignments[0]);
        assert_eq!(alignments[0].aligned_len, 96, "clipped to the overlap");
        assert_eq!(alignments[0].matches, 96, "overlap is error-free");
        assert_eq!(
            alignments[1].ref_pos,
            Some((n - 96) as u32),
            "{:?}",
            alignments[1]
        );
        assert_eq!(alignments[1].aligned_len, 96);
        assert_eq!(alignments[1].matches, 96);
    }

    /// Reads sampled exactly at position 0 and at the reference tail map
    /// to their true positions even with boundary-adjacent errors.
    #[test]
    fn boundary_pinned_reads_map() {
        let reference = Reference::synthesize(20_000, 15, 11);
        let n = reference.seq.len();
        let mut head = reference.seq[..100].to_vec();
        head[0] = if head[0] == b'A' { b'C' } else { b'A' };
        let mut tail = reference.seq[n - 100..].to_vec();
        tail[99] = if tail[99] == b'A' { b'C' } else { b'A' };
        let reads = vec![
            Read { id: 0, seq: head, true_pos: 0 },
            Read { id: 1, seq: tail, true_pos: (n - 100) as u32 },
        ];
        let alignments = align_sequential(&reference, &reads);
        assert_eq!(alignments[0].ref_pos, Some(0));
        assert_eq!(alignments[1].ref_pos, Some((n - 100) as u32));
        let s = stats(&alignments);
        assert_eq!(s.mapped, 2);
        assert!(s.mean_identity > 0.98, "{s:?}");
    }

    /// A junk read sharing only a single seed k-mer with the reference
    /// tail must NOT map: its clipped overlap (just the seed, identity
    /// 1.0) is below the minimum-overlap floor.
    #[test]
    fn seed_only_boundary_overlap_does_not_map() {
        let reference = Reference::synthesize(20_000, 15, 3);
        let n = reference.seq.len();
        // The reference's last 15 bases, then 85 unrelated bases: the
        // seed at read offset 0 votes for diagonal n-15, which clips to a
        // 15-base overlap (the seed itself) at the tail.
        let mut seq = reference.seq[n - 15..].to_vec();
        seq.extend_from_slice(&crate::sequence::random_sequence(85, 0xBAD));
        let read = Read { id: 0, seq, true_pos: 0 };
        let a = align_sequential(&reference, &[read]);
        assert_eq!(a[0].ref_pos, None, "{:?}", a[0]);
        assert_eq!(a[0].aligned_len, 15, "overlap was the seed alone");
        assert_eq!(a[0].matches, 15);
    }

    #[test]
    fn extend_diagonal_clips_and_scores() {
        let reference = PackedSeq::from_ascii(b"ACGTACGTACGT");
        let read = PackedSeq::from_ascii(b"GTACGT");
        // diagonal 2: read aligns fully inside the reference.
        let full = extend_diagonal(&read, &reference, 2);
        assert_eq!((full.read_start, full.ref_start, full.len), (0, 2, 6));
        assert_eq!(full.matches, 6);
        assert_eq!(full.score, 6 * MATCH_SCORE);
        // diagonal -2: first two read bases hang off the left edge.
        let left = extend_diagonal(&read, &reference, -2);
        assert_eq!((left.read_start, left.ref_start, left.len), (2, 0, 4));
        // diagonal 10: read overruns the right edge, 2 bases scored.
        let right = extend_diagonal(&read, &reference, 10);
        assert_eq!((right.read_start, right.ref_start, right.len), (0, 10, 2));
        // No overlap at all.
        assert_eq!(extend_diagonal(&read, &reference, 100).len, 0);
        assert_eq!(extend_diagonal(&read, &reference, -100).len, 0);
        assert_eq!(extend_diagonal(&read, &reference, i64::MIN).len, 0);
    }

    #[test]
    fn extension_throughput_positive() {
        let bases_per_sec = extension_throughput(1 << 20, 0xCA11);
        assert!(bases_per_sec > 0.0, "{bases_per_sec}");
    }

    #[test]
    fn index_invariants() {
        let reference = Reference::synthesize(5_000, 15, 9);
        assert!(reference.distinct_kmers() > 4000, "15-mers nearly unique");
        assert_eq!(reference.k(), 15);
        assert_eq!(reference.packed().len(), reference.seq.len());
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn k_bounds_enforced() {
        let _ = Reference::index(b"ACGT".to_vec(), 32);
    }
}
