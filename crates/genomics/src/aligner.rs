//! A real (miniature) seed-and-extend aligner — the Magic-BLAST stand-in.
//!
//! This is genuine computation, not a sleep: k-mer indexing of the
//! reference, seed lookup per read, diagonal voting, and ungapped extension
//! scoring, parallelised over reads with rayon. It serves two purposes:
//! the criterion benches measure a *real* HPC kernel (and the sequential vs
//! parallel speed-up), and its measured per-base throughput grounds the
//! virtual-time cost model's scale.

use std::collections::HashMap;

use rayon::prelude::*;

use crate::sequence::{random_sequence, Read};

/// Match reward in the ungapped extension score.
pub const MATCH_SCORE: i32 = 2;
/// Mismatch penalty.
pub const MISMATCH_PENALTY: i32 = -3;

/// An indexed reference sequence.
#[derive(Debug, Clone)]
pub struct Reference {
    /// The reference bases.
    pub seq: Vec<u8>,
    k: usize,
    index: HashMap<u64, Vec<u32>>,
}

fn encode_base(b: u8) -> u64 {
    match b {
        b'A' => 0,
        b'C' => 1,
        b'G' => 2,
        _ => 3,
    }
}

fn kmer_at(seq: &[u8], pos: usize, k: usize) -> u64 {
    let mut v = 0u64;
    for &b in &seq[pos..pos + k] {
        v = (v << 2) | encode_base(b);
    }
    v
}

impl Reference {
    /// Index `seq` with k-mers of length `k` (k ≤ 31).
    pub fn index(seq: Vec<u8>, k: usize) -> Reference {
        assert!((1..=31).contains(&k), "k must be in 1..=31");
        assert!(seq.len() >= k, "reference shorter than k");
        let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
        for pos in 0..=(seq.len() - k) {
            index.entry(kmer_at(&seq, pos, k)).or_default().push(pos as u32);
        }
        Reference { seq, k, index }
    }

    /// Generate and index a synthetic reference of `len` bases.
    pub fn synthesize(len: usize, k: usize, seed: u64) -> Reference {
        Reference::index(random_sequence(len, seed), k)
    }

    /// The k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct k-mers indexed.
    pub fn distinct_kmers(&self) -> usize {
        self.index.len()
    }
}

/// The outcome of aligning one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alignment {
    /// The read's id.
    pub read_id: u32,
    /// Best mapping position, if the score cleared the threshold.
    pub ref_pos: Option<u32>,
    /// Ungapped extension score at the best diagonal.
    pub score: i32,
    /// Matching bases at the best diagonal.
    pub matches: u32,
}

/// Minimum fraction of matching bases for a mapping to be reported.
const MIN_IDENTITY: f64 = 0.8;

fn align_one(reference: &Reference, read: &Read) -> Alignment {
    let k = reference.k;
    let unmapped = Alignment {
        read_id: read.id,
        ref_pos: None,
        score: 0,
        matches: 0,
    };
    if read.seq.len() < k {
        return unmapped;
    }
    // Seed: vote for diagonals (ref_pos - read_offset).
    let mut votes: HashMap<i64, u32> = HashMap::new();
    let stride = (k / 2).max(1);
    let mut offset = 0;
    while offset + k <= read.seq.len() {
        let kmer = kmer_at(&read.seq, offset, k);
        if let Some(positions) = reference.index.get(&kmer) {
            // Highly repetitive seeds contribute noise; cap their votes.
            for &pos in positions.iter().take(16) {
                *votes.entry(pos as i64 - offset as i64).or_insert(0) += 1;
            }
        }
        offset += stride;
    }
    // Deterministic best diagonal: most votes, smallest diagonal tie-break.
    let Some((&diagonal, _)) = votes
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
    else {
        return unmapped;
    };
    if diagonal < 0 || diagonal as usize + read.seq.len() > reference.seq.len() {
        return unmapped;
    }
    // Extend: ungapped comparison along the diagonal.
    let start = diagonal as usize;
    let window = &reference.seq[start..start + read.seq.len()];
    let matches = read
        .seq
        .iter()
        .zip(window)
        .filter(|(a, b)| a == b)
        .count() as u32;
    let mismatches = read.seq.len() as u32 - matches;
    let score = matches as i32 * MATCH_SCORE + mismatches as i32 * MISMATCH_PENALTY;
    if (matches as f64) < MIN_IDENTITY * read.seq.len() as f64 {
        return Alignment {
            read_id: read.id,
            ref_pos: None,
            score,
            matches,
        };
    }
    Alignment {
        read_id: read.id,
        ref_pos: Some(start as u32),
        score,
        matches,
    }
}

/// Align every read sequentially.
pub fn align_sequential(reference: &Reference, reads: &[Read]) -> Vec<Alignment> {
    reads.iter().map(|r| align_one(reference, r)).collect()
}

/// Align every read in parallel (rayon).
pub fn align_parallel(reference: &Reference, reads: &[Read]) -> Vec<Alignment> {
    reads.par_iter().map(|r| align_one(reference, r)).collect()
}

/// Summary statistics over a batch of alignments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentStats {
    /// Total reads processed.
    pub total: usize,
    /// Reads mapped above the identity threshold.
    pub mapped: usize,
    /// Mean identity of mapped reads (matches / read length).
    pub mean_identity: f64,
}

/// Compute summary statistics.
pub fn stats(alignments: &[Alignment], read_len: usize) -> AlignmentStats {
    let mapped: Vec<&Alignment> = alignments.iter().filter(|a| a.ref_pos.is_some()).collect();
    let mean_identity = if mapped.is_empty() {
        0.0
    } else {
        mapped.iter().map(|a| a.matches as f64 / read_len as f64).sum::<f64>() / mapped.len() as f64
    };
    AlignmentStats {
        total: alignments.len(),
        mapped: mapped.len(),
        mean_identity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::sample_reads;

    fn fixture() -> (Reference, Vec<Read>) {
        let reference = Reference::synthesize(20_000, 15, 42);
        let reads = sample_reads(&reference.seq, 200, 100, 0.02, 43);
        (reference, reads)
    }

    #[test]
    fn clean_reads_map_to_true_positions() {
        let reference = Reference::synthesize(20_000, 15, 1);
        let reads = sample_reads(&reference.seq, 100, 100, 0.0, 2);
        let alignments = align_sequential(&reference, &reads);
        let exact = alignments
            .iter()
            .zip(&reads)
            .filter(|(a, r)| a.ref_pos == Some(r.true_pos))
            .count();
        assert!(exact >= 97, "{exact}/100 exact mappings (repeats may differ)");
    }

    #[test]
    fn noisy_reads_mostly_map() {
        let (reference, reads) = fixture();
        let alignments = align_sequential(&reference, &reads);
        let s = stats(&alignments, 100);
        assert!(s.mapped as f64 >= 0.95 * s.total as f64, "{s:?}");
        assert!(s.mean_identity > 0.95, "{s:?}");
    }

    #[test]
    fn random_reads_do_not_map() {
        let reference = Reference::synthesize(20_000, 15, 1);
        // Reads from an unrelated sequence.
        let noise = crate::sequence::random_sequence(50_000, 999);
        let reads = sample_reads(&noise, 100, 100, 0.0, 3);
        let alignments = align_sequential(&reference, &reads);
        let mapped = alignments.iter().filter(|a| a.ref_pos.is_some()).count();
        assert!(mapped <= 2, "{mapped} spurious mappings");
    }

    #[test]
    fn parallel_equals_sequential() {
        let (reference, reads) = fixture();
        let seq = align_sequential(&reference, &reads);
        let par = align_parallel(&reference, &reads);
        assert_eq!(seq, par);
    }

    #[test]
    fn deterministic_across_runs() {
        let (reference, reads) = fixture();
        assert_eq!(
            align_sequential(&reference, &reads),
            align_sequential(&reference, &reads)
        );
    }

    #[test]
    fn short_read_unmapped() {
        let reference = Reference::synthesize(1000, 15, 1);
        let read = Read {
            id: 0,
            seq: b"ACGT".to_vec(),
            true_pos: 0,
        };
        let a = align_sequential(&reference, &[read]);
        assert_eq!(a[0].ref_pos, None);
    }

    #[test]
    fn index_invariants() {
        let reference = Reference::synthesize(5_000, 15, 9);
        assert!(reference.distinct_kmers() > 4000, "15-mers nearly unique");
        assert_eq!(reference.k(), 15);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn k_bounds_enforced() {
        let _ = Reference::index(b"ACGT".to_vec(), 32);
    }
}
