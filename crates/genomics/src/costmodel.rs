//! The Table-I-calibrated cost model.
//!
//! Runs paper-scale computations in virtual time. Calibration points come
//! straight from the paper's Table I (run times and output sizes for the
//! rice and kidney samples); resource sensitivity is fitted to the table's
//! central observation — "a variance of CPU and memory sizes is not showing
//! any significant changes in the run time":
//!
//! * CPU 2→4 changed the rice run by −0.54% (8h9m50s → 8h7m10s);
//! * memory 4→6 GB changed the kidney run by −0.92% (24h16m12s → 24h2m47s).
//!
//! The model is `base × f_cpu × f_mem` where `base` is per-accession (exact
//! for the two paper samples, size-proportional otherwise), `f_cpu` decays
//! logarithmically per CPU doubling and `f_mem` logarithmically in the
//! memory ratio. With those fits the regenerated Table I reproduces the
//! paper's strings exactly after second-rounding.
//!
//! The uncalibrated-app scale constants are grounded in the *measured*
//! per-base throughput of the packed extension kernel
//! ([`crate::aligner::extension_throughput`]): [`KERNEL_STACK_GAP`] is the
//! dimensionless gap between the full Magic-BLAST stack per Table I and
//! the mini-kernel measured on the reference host
//! ([`REF_KERNEL_BASES_PER_SEC`]), and the BLAST fallback's seconds/byte
//! is `gap / throughput` — exactly the rice row's seconds/byte on the
//! reference host by construction (pinned by a test), and host-relative
//! through [`CostModel::kernel_calibrated`] anywhere else.

use std::collections::HashMap;

use lidc_simcore::time::SimDuration;

/// Runtime and output prediction for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobEstimate {
    /// Virtual execution time.
    pub duration: SimDuration,
    /// Output artifact size in bytes.
    pub output_bytes: u64,
}

#[derive(Debug, Clone, Copy)]
struct CalibrationPoint {
    base_secs: f64,
    output_bytes: u64,
}

/// Per-application cost parameters for apps without exact calibration.
#[derive(Debug, Clone, Copy)]
pub struct AppCost {
    /// Seconds of runtime per input byte at the reference configuration
    /// (cpu=2 cores, mem=4 GiB).
    pub secs_per_byte: f64,
    /// Output bytes per input byte.
    pub output_ratio: f64,
}

/// The cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Exact calibration by accession (reference config).
    calibration: HashMap<String, CalibrationPoint>,
    /// Per-app fallbacks.
    apps: HashMap<String, AppCost>,
    /// Fallback when the app is unknown.
    default_app: AppCost,
    cpu_sensitivity: f64,
    mem_sensitivity: f64,
}

/// Reference CPU count for calibration (Table I's smallest config).
pub const REF_CPU: f64 = 2.0;
/// Reference memory (GiB).
pub const REF_MEM_GIB: f64 = 4.0;

/// Table I, row 1: rice at (4 GB, 2 CPU) ran 8h9m50s.
pub const RICE_BASE_SECS: f64 = 29_390.0;
/// Table I rice output: 941 MB.
pub const RICE_OUTPUT_BYTES: u64 = 941_000_000;
/// Table I, row 3: kidney at (4 GB, 2 CPU) ran 24h16m12s.
pub const KIDNEY_BASE_SECS: f64 = 87_372.0;
/// Table I kidney output: 2.71 GB.
pub const KIDNEY_OUTPUT_BYTES: u64 = 2_710_000_000;

/// Single-thread throughput of the packed extension kernel measured on the
/// reference host at calibration time (bases/second; median of four
/// [`crate::aligner::extension_throughput`] runs at 2²⁶ bases: 8.68, 8.98,
/// 8.76, 8.26 Gbases/s). Re-measure with [`KernelCalibration::measure`]
/// to re-calibrate on another host.
pub const REF_KERNEL_BASES_PER_SEC: f64 = 8.7e9;

/// Dimensionless gap between the full Magic-BLAST stack (Table I's rice
/// row: [`RICE_BASE_SECS`] over [`crate::sra::PAPER_RICE_BYTES`]) and the
/// mini-kernel on the reference host: stack-seconds/byte × kernel
/// bases/second. Dividing by a measured throughput recovers the stack's
/// seconds/byte scaled to that host.
pub const KERNEL_STACK_GAP: f64 =
    RICE_BASE_SECS / crate::sra::PAPER_RICE_BYTES as f64 * REF_KERNEL_BASES_PER_SEC;

/// A wall-clock measurement of the packed extension kernel, used to ground
/// (and re-ground, per host) the cost model's scale constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCalibration {
    /// Measured single-thread extension throughput (bases/second).
    pub bases_per_sec: f64,
}

impl KernelCalibration {
    /// Measure the kernel over `total_bases` scored bases (wall-clock;
    /// `1 << 24` gives a stable reading in a few milliseconds).
    pub fn measure(total_bases: u64) -> KernelCalibration {
        KernelCalibration {
            bases_per_sec: crate::aligner::extension_throughput(total_bases, 0xCA11),
        }
    }

    /// The reference-host calibration baked into this build.
    pub fn reference_host() -> KernelCalibration {
        KernelCalibration {
            bases_per_sec: REF_KERNEL_BASES_PER_SEC,
        }
    }

    /// The Magic-BLAST stack's seconds per input byte implied by this
    /// measurement ([`KERNEL_STACK_GAP`] over the measured throughput).
    pub fn secs_per_byte(&self) -> f64 {
        KERNEL_STACK_GAP / self.bases_per_sec
    }
}

impl CostModel {
    /// The model calibrated to the paper's Table I.
    pub fn paper_calibrated() -> CostModel {
        let mut calibration = HashMap::new();
        calibration.insert(
            crate::sra::PAPER_RICE_SRR.to_owned(),
            CalibrationPoint {
                base_secs: RICE_BASE_SECS,
                output_bytes: RICE_OUTPUT_BYTES,
            },
        );
        calibration.insert(
            crate::sra::PAPER_KIDNEY_SRR.to_owned(),
            CalibrationPoint {
                base_secs: KIDNEY_BASE_SECS,
                output_bytes: KIDNEY_OUTPUT_BYTES,
            },
        );
        let mut apps = HashMap::new();
        // BLAST fallback: seconds/byte via the kernel calibration, which
        // reproduces the rice point's seconds/byte on the reference host
        // by construction of KERNEL_STACK_GAP; output ratio is the mean
        // of the two paper rows (941MB/2.1GB and 2.71GB/6.3GB).
        apps.insert("BLAST".to_owned(), AppCost {
            secs_per_byte: KernelCalibration::reference_host().secs_per_byte(),
            output_ratio: 0.44,
        });
        // A lightweight comparison app (the paper mentions a file
        // compression tool as a second application class).
        apps.insert("COMPRESS".to_owned(), AppCost {
            secs_per_byte: 2.0e-9,
            output_ratio: 0.3,
        });
        CostModel {
            calibration,
            apps,
            default_app: AppCost {
                secs_per_byte: 5.0e-9,
                output_ratio: 0.5,
            },
            // −0.54% per CPU doubling; −0.92% per ln(mem ratio)·ln(1.5)⁻¹.
            cpu_sensitivity: 0.005_44,
            mem_sensitivity: 0.022_715,
        }
    }

    /// The paper calibration with the uncalibrated-app scale re-derived
    /// from a *measured* kernel throughput. The two exact Table-I points
    /// are untouched (they are measurements, not predictions); every
    /// fallback `secs_per_byte` scales by the measured host's speed
    /// relative to the reference host, so predictions for unknown
    /// accessions track the hardware actually running the kernel.
    pub fn kernel_calibrated(cal: &KernelCalibration) -> CostModel {
        let mut m = CostModel::paper_calibrated();
        let scale = cal.secs_per_byte() / KernelCalibration::reference_host().secs_per_byte();
        // lidc-lint: allow(unordered-iter) reason="independent per-entry scaling; no cross-entry state, so visit order is unobservable"
        for app in m.apps.values_mut() {
            app.secs_per_byte *= scale;
        }
        m.default_app.secs_per_byte *= scale;
        m
    }

    /// CPU scaling factor (1.0 at the reference config).
    pub fn cpu_factor(&self, cpu_cores: f64) -> f64 {
        let cpu = cpu_cores.max(0.25);
        (1.0 - self.cpu_sensitivity * (cpu / REF_CPU).log2()).clamp(0.9, 1.2)
    }

    /// Memory scaling factor (1.0 at the reference config).
    pub fn mem_factor(&self, mem_gib: f64) -> f64 {
        let mem = mem_gib.max(0.5);
        (1.0 - self.mem_sensitivity * (mem / REF_MEM_GIB).ln()).clamp(0.9, 1.2)
    }

    /// Estimate a job: `app` (e.g. `BLAST`), the accession (exact
    /// calibration when known), input size, and the requested resources.
    pub fn estimate(
        &self,
        app: &str,
        accession: Option<&str>,
        input_bytes: u64,
        cpu_cores: u64,
        mem_gib: u64,
    ) -> JobEstimate {
        let (base_secs, output_bytes) = match accession.and_then(|a| self.calibration.get(a)) {
            Some(point) => (point.base_secs, point.output_bytes),
            None => {
                let cost = self.apps.get(app).unwrap_or(&self.default_app);
                (
                    cost.secs_per_byte * input_bytes as f64,
                    (cost.output_ratio * input_bytes as f64) as u64,
                )
            }
        };
        let secs =
            base_secs * self.cpu_factor(cpu_cores as f64) * self.mem_factor(mem_gib as f64);
        JobEstimate {
            duration: SimDuration::from_secs_f64(secs),
            output_bytes,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sra::{PAPER_KIDNEY_BYTES, PAPER_KIDNEY_SRR, PAPER_RICE_BYTES, PAPER_RICE_SRR};

    fn model() -> CostModel {
        CostModel::paper_calibrated()
    }

    /// The four rows of Table I must reproduce exactly (after the
    /// to-the-second rounding the paper uses).
    #[test]
    fn table1_rows_exact() {
        let m = model();
        let rows = [
            (PAPER_RICE_SRR, PAPER_RICE_BYTES, 4, 2, "8h9m50s", 941_000_000u64),
            (PAPER_RICE_SRR, PAPER_RICE_BYTES, 4, 4, "8h7m10s", 941_000_000),
            (PAPER_KIDNEY_SRR, PAPER_KIDNEY_BYTES, 4, 2, "24h16m12s", 2_710_000_000),
            (PAPER_KIDNEY_SRR, PAPER_KIDNEY_BYTES, 6, 2, "24h2m47s", 2_710_000_000),
        ];
        for (srr, bytes, mem, cpu, expect_time, expect_out) in rows {
            let est = m.estimate("BLAST", Some(srr), bytes, cpu, mem);
            assert_eq!(est.duration.to_string(), expect_time, "{srr} cpu={cpu} mem={mem}");
            assert_eq!(est.output_bytes, expect_out);
        }
    }

    #[test]
    fn config_insensitivity_shape() {
        // The paper's takeaway: resource variation changes runtime by < 2%.
        let m = model();
        let base = m.estimate("BLAST", Some(PAPER_RICE_SRR), PAPER_RICE_BYTES, 2, 4);
        for (cpu, mem) in [(4, 4), (2, 6), (4, 6), (8, 8)] {
            let est = m.estimate("BLAST", Some(PAPER_RICE_SRR), PAPER_RICE_BYTES, cpu, mem);
            let ratio = est.duration.as_secs_f64() / base.duration.as_secs_f64();
            assert!(
                (0.95..=1.0).contains(&ratio),
                "cpu={cpu} mem={mem} ratio={ratio}"
            );
        }
    }

    #[test]
    fn kidney_is_roughly_three_times_rice() {
        let m = model();
        let rice = m.estimate("BLAST", Some(PAPER_RICE_SRR), PAPER_RICE_BYTES, 2, 4);
        let kidney = m.estimate("BLAST", Some(PAPER_KIDNEY_SRR), PAPER_KIDNEY_BYTES, 2, 4);
        let ratio = kidney.duration.as_secs_f64() / rice.duration.as_secs_f64();
        assert!((2.8..=3.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn unknown_accession_scales_with_input_size() {
        let m = model();
        let small = m.estimate("BLAST", Some("SRR999"), 1_000_000_000, 2, 4);
        let large = m.estimate("BLAST", Some("SRR999"), 2_000_000_000, 2, 4);
        let ratio = large.duration.as_secs_f64() / small.duration.as_secs_f64();
        assert!((1.99..=2.01).contains(&ratio));
        assert_eq!(large.output_bytes, 2 * small.output_bytes);
    }

    #[test]
    fn monotonicity_more_resources_never_slower() {
        let m = model();
        let mut prev = f64::INFINITY;
        for cpu in [1u64, 2, 4, 8, 16] {
            let est = m.estimate("BLAST", Some(PAPER_RICE_SRR), PAPER_RICE_BYTES, cpu, 4);
            let secs = est.duration.as_secs_f64();
            assert!(secs <= prev, "cpu={cpu} got slower");
            prev = secs;
        }
        let mut prev = f64::INFINITY;
        for mem in [2u64, 4, 8, 16, 64] {
            let est = m.estimate("BLAST", Some(PAPER_KIDNEY_SRR), PAPER_KIDNEY_BYTES, 2, mem);
            let secs = est.duration.as_secs_f64();
            assert!(secs <= prev, "mem={mem} got slower");
            prev = secs;
        }
    }

    #[test]
    fn factors_clamped() {
        let m = model();
        assert!(m.cpu_factor(1024.0) >= 0.9);
        assert!(m.cpu_factor(0.0) <= 1.2);
        assert!(m.mem_factor(10_000.0) >= 0.9);
        assert!(m.mem_factor(0.0) <= 1.2);
    }

    /// The re-calibration identity: on the reference host, the kernel-
    /// derived seconds/byte is exactly the rice row's seconds/byte (that's
    /// how KERNEL_STACK_GAP is constructed).
    #[test]
    fn kernel_constants_reproduce_rice_scale() {
        let derived = KernelCalibration::reference_host().secs_per_byte();
        let rice = RICE_BASE_SECS / crate::sra::PAPER_RICE_BYTES as f64;
        assert!(
            (derived - rice).abs() / rice < 1e-12,
            "derived {derived} vs rice {rice}"
        );
    }

    /// Re-calibrating to a different host leaves the exact Table-I rows
    /// untouched — they are measurements, not predictions.
    #[test]
    fn kernel_calibrated_keeps_table1_exact() {
        let faster_host = KernelCalibration {
            bases_per_sec: REF_KERNEL_BASES_PER_SEC * 3.7,
        };
        let m = CostModel::kernel_calibrated(&faster_host);
        let est = m.estimate("BLAST", Some(PAPER_RICE_SRR), PAPER_RICE_BYTES, 2, 4);
        assert_eq!(est.duration.to_string(), "8h9m50s");
        let est = m.estimate("BLAST", Some(PAPER_KIDNEY_SRR), PAPER_KIDNEY_BYTES, 2, 6);
        assert_eq!(est.duration.to_string(), "24h2m47s");
    }

    /// Fallback predictions scale with the measured host speed: a 2×
    /// faster kernel halves the predicted runtime for unknown accessions.
    #[test]
    fn kernel_calibrated_scales_fallbacks() {
        let reference = CostModel::kernel_calibrated(&KernelCalibration::reference_host());
        let fast = CostModel::kernel_calibrated(&KernelCalibration {
            bases_per_sec: REF_KERNEL_BASES_PER_SEC * 2.0,
        });
        for app in ["BLAST", "COMPRESS", "FOLD"] {
            let ref_est = reference.estimate(app, None, 1_000_000_000, 2, 4);
            let fast_est = fast.estimate(app, None, 1_000_000_000, 2, 4);
            let ratio = ref_est.duration.as_secs_f64() / fast_est.duration.as_secs_f64();
            assert!((1.99..=2.01).contains(&ratio), "{app} ratio {ratio}");
            assert_eq!(ref_est.output_bytes, fast_est.output_bytes);
        }
        // And the reference-host calibration is the paper model itself.
        let paper = CostModel::paper_calibrated();
        let a = reference.estimate("BLAST", None, 1_000_000_000, 2, 4);
        let b = paper.estimate("BLAST", None, 1_000_000_000, 2, 4);
        assert_eq!(a, b);
    }

    /// A live measurement produces a usable calibration end-to-end.
    #[test]
    fn live_measurement_builds_a_model() {
        let cal = KernelCalibration::measure(1 << 20);
        assert!(cal.bases_per_sec > 0.0);
        let m = CostModel::kernel_calibrated(&cal);
        let est = m.estimate("BLAST", None, 1_000_000_000, 2, 4);
        assert!(est.duration.as_secs_f64() > 0.0);
    }

    #[test]
    fn different_apps_have_different_costs() {
        let m = model();
        let blast = m.estimate("BLAST", None, 1_000_000_000, 2, 4);
        let compress = m.estimate("COMPRESS", None, 1_000_000_000, 2, 4);
        let unknown = m.estimate("FOLD", None, 1_000_000_000, 2, 4);
        assert!(blast.duration > compress.duration);
        assert_ne!(unknown.duration, compress.duration);
    }
}
