//! Synthetic nucleotide sequences and reads.
//!
//! Everything is generated deterministically from seeds (DESIGN.md §2: we
//! cannot ship NCBI data, so the workload is synthetic but algorithmically
//! real — the aligner does genuine seed-and-extend work on these sequences).

use lidc_simcore::rng::DetRng;

/// The nucleotide alphabet.
pub const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Generate a random nucleotide sequence of `len` bases.
pub fn random_sequence(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    (0..len)
        .map(|_| BASES[rng.next_below(4) as usize])
        .collect()
}

/// A sequencing read sampled from a reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Read {
    /// Read id within its batch.
    pub id: u32,
    /// Base sequence.
    pub seq: Vec<u8>,
    /// True origin on the reference (for accuracy evaluation).
    pub true_pos: u32,
}

/// Sample `n` reads of `read_len` bases from `reference`, flipping each base
/// to a random other base with probability `error_rate` (sequencing error).
pub fn sample_reads(
    reference: &[u8],
    n: usize,
    read_len: usize,
    error_rate: f64,
    seed: u64,
) -> Vec<Read> {
    assert!(
        reference.len() >= read_len,
        "reference shorter than read length"
    );
    let mut rng = DetRng::new(seed);
    let max_start = (reference.len() - read_len) as u64 + 1;
    (0..n as u32)
        .map(|id| {
            let start = rng.next_below(max_start) as usize;
            let mut seq = reference[start..start + read_len].to_vec();
            for base in seq.iter_mut() {
                if rng.next_bool(error_rate) {
                    let mut replacement = BASES[rng.next_below(4) as usize];
                    while replacement == *base {
                        replacement = BASES[rng.next_below(4) as usize];
                    }
                    *base = replacement;
                }
            }
            Read {
                id,
                seq,
                true_pos: start as u32,
            }
        })
        .collect()
}

/// Render reads in FASTQ-ish text (for realistic payload bytes).
pub fn to_fastq(reads: &[Read], accession: &str) -> String {
    let mut out = String::new();
    for r in reads {
        out.push_str(&format!("@{accession}.{}\n", r.id));
        out.push_str(std::str::from_utf8(&r.seq).expect("ASCII bases"));
        out.push_str("\n+\n");
        out.push_str(&"I".repeat(r.seq.len()));
        out.push('\n');
    }
    out
}

/// Parse FASTQ-ish text back into reads (inverse of [`to_fastq`]; origin
/// positions are lost and set to `u32::MAX`).
///
/// Read ids come from the `@accession.id` header, so they survive a
/// round trip even when upstream filtering left gaps in the sequence of
/// ids; a record whose header doesn't end in `.<number>` falls back to
/// its index among the parsed records. A record missing its sequence,
/// `+` separator, or quality line is skipped and parsing re-synchronises
/// at the next `@` header instead of mis-framing the rest of the file.
pub fn from_fastq(text: &str) -> Vec<Read> {
    let mut reads: Vec<Read> = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        if !line.starts_with('@') {
            continue;
        }
        // Peek the sequence line: if the next line is another `@` header
        // this record has no sequence — resynchronise on that header.
        let Some(&seq) = lines.peek() else { break };
        if seq.starts_with('@') {
            continue;
        }
        lines.next();
        // The separator must follow; peek so a missing `+` (i.e. the next
        // record's header, or anything else) is not consumed.
        if !lines.peek().is_some_and(|l| l.starts_with('+')) {
            continue;
        }
        lines.next();
        // Quality line, also peeked: if the record was truncated and the
        // next line is the following record's `@` header, skip only the
        // damaged record instead of swallowing its intact successor.
        // (In this FASTQ-ish synthetic format quality lines never start
        // with `@`, so the header test is unambiguous.)
        match lines.peek() {
            None => break, // quality line truncated at EOF: drop the record
            Some(l) if l.starts_with('@') => continue,
            Some(_) => {
                lines.next();
            }
        }
        let id = line[1..]
            .rsplit('.')
            .next()
            .and_then(|tail| tail.parse().ok())
            .unwrap_or(reads.len() as u32);
        reads.push(Read {
            id,
            seq: seq.as_bytes().to_vec(),
            true_pos: u32::MAX,
        });
    }
    reads
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sequence_deterministic_and_valid() {
        let a = random_sequence(1000, 7);
        let b = random_sequence(1000, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|b| BASES.contains(b)));
        let c = random_sequence(1000, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn sampled_reads_match_reference_without_errors() {
        let reference = random_sequence(10_000, 1);
        let reads = sample_reads(&reference, 50, 100, 0.0, 2);
        assert_eq!(reads.len(), 50);
        for r in &reads {
            let origin = &reference[r.true_pos as usize..r.true_pos as usize + 100];
            assert_eq!(r.seq, origin);
        }
    }

    #[test]
    fn error_rate_perturbs_reads() {
        let reference = random_sequence(10_000, 1);
        let reads = sample_reads(&reference, 50, 100, 0.1, 2);
        let mut mismatches = 0usize;
        let mut total = 0usize;
        for r in &reads {
            let origin = &reference[r.true_pos as usize..r.true_pos as usize + 100];
            mismatches += r.seq.iter().zip(origin).filter(|(a, b)| a != b).count();
            total += 100;
        }
        let rate = mismatches as f64 / total as f64;
        assert!((0.05..0.15).contains(&rate), "observed error rate {rate}");
    }

    #[test]
    fn fastq_round_trip() {
        let reference = random_sequence(1_000, 3);
        let reads = sample_reads(&reference, 5, 50, 0.01, 4);
        let text = to_fastq(&reads, "SRR2931415");
        assert!(text.starts_with("@SRR2931415.0\n"));
        let parsed = from_fastq(&text);
        assert_eq!(parsed.len(), 5);
        for (orig, round) in reads.iter().zip(&parsed) {
            assert_eq!(orig.seq, round.seq);
        }
    }

    #[test]
    fn fastq_ids_survive_filtering_gaps() {
        // Upstream filtering dropped read 1: ids must come from the
        // headers, not be re-numbered by chunk index.
        let reads = vec![
            Read { id: 0, seq: b"ACGT".to_vec(), true_pos: u32::MAX },
            Read { id: 2, seq: b"GGCC".to_vec(), true_pos: u32::MAX },
            Read { id: 7, seq: b"TTAA".to_vec(), true_pos: u32::MAX },
        ];
        let parsed = from_fastq(&to_fastq(&reads, "SRR1"));
        assert_eq!(parsed, reads);
    }

    #[test]
    fn fastq_malformed_header_falls_back_to_index() {
        let text = "@weird header no dot id\nACGT\n+\nIIII\n@SRR1.9\nGGGG\n+\nIIII\n";
        let parsed = from_fastq(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].id, 0, "fallback: index among parsed records");
        assert_eq!(parsed[1].id, 9, "well-formed header keeps its id");
    }

    #[test]
    fn fastq_missing_separator_skips_record_only() {
        // Record 5 lost its `+` line; the seed parser mis-framed every
        // subsequent record. Now only the damaged record is dropped.
        let text = "@SRR1.4\nAAAA\n+\nIIII\n@SRR1.5\nCCCC\nIIII\n@SRR1.6\nGGGG\n+\nIIII\n";
        let parsed = from_fastq(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!((parsed[0].id, parsed[0].seq.as_slice()), (4, &b"AAAA"[..]));
        assert_eq!((parsed[1].id, parsed[1].seq.as_slice()), (6, &b"GGGG"[..]));
    }

    #[test]
    fn fastq_missing_sequence_resyncs_on_next_header() {
        let text = "@SRR1.1\n@SRR1.2\nACGT\n+\nIIII\n";
        let parsed = from_fastq(text);
        assert_eq!(parsed.len(), 1);
        assert_eq!((parsed[0].id, parsed[0].seq.as_slice()), (2, &b"ACGT"[..]));
    }

    #[test]
    fn fastq_truncated_record_dropped() {
        let text = "@SRR1.0\nACGT\n+\nIIII\n@SRR1.1\nGGGG\n+\n";
        let parsed = from_fastq(text);
        assert_eq!(parsed.len(), 1, "record with no quality line dropped");
        assert_eq!(parsed[0].id, 0);
    }

    #[test]
    fn fastq_missing_quality_mid_file_resyncs() {
        // Record 1 lost its quality line: its successor must still parse
        // rather than being swallowed as record 1's quality.
        let text = "@SRR1.1\nACGT\n+\n@SRR1.2\nGGGG\n+\nIIII\n";
        let parsed = from_fastq(text);
        assert_eq!(parsed.len(), 1);
        assert_eq!((parsed[0].id, parsed[0].seq.as_slice()), (2, &b"GGGG"[..]));
    }

    #[test]
    #[should_panic(expected = "reference shorter")]
    fn sample_reads_rejects_short_reference() {
        let reference = random_sequence(10, 1);
        let _ = sample_reads(&reference, 1, 100, 0.0, 2);
    }
}
