//! Synthetic nucleotide sequences and reads.
//!
//! Everything is generated deterministically from seeds (DESIGN.md §2: we
//! cannot ship NCBI data, so the workload is synthetic but algorithmically
//! real — the aligner does genuine seed-and-extend work on these sequences).

use lidc_simcore::rng::DetRng;

/// The nucleotide alphabet.
pub const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Generate a random nucleotide sequence of `len` bases.
pub fn random_sequence(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    (0..len)
        .map(|_| BASES[rng.next_below(4) as usize])
        .collect()
}

/// A sequencing read sampled from a reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Read {
    /// Read id within its batch.
    pub id: u32,
    /// Base sequence.
    pub seq: Vec<u8>,
    /// True origin on the reference (for accuracy evaluation).
    pub true_pos: u32,
}

/// Sample `n` reads of `read_len` bases from `reference`, flipping each base
/// to a random other base with probability `error_rate` (sequencing error).
pub fn sample_reads(
    reference: &[u8],
    n: usize,
    read_len: usize,
    error_rate: f64,
    seed: u64,
) -> Vec<Read> {
    assert!(
        reference.len() >= read_len,
        "reference shorter than read length"
    );
    let mut rng = DetRng::new(seed);
    let max_start = (reference.len() - read_len) as u64 + 1;
    (0..n as u32)
        .map(|id| {
            let start = rng.next_below(max_start) as usize;
            let mut seq = reference[start..start + read_len].to_vec();
            for base in seq.iter_mut() {
                if rng.next_bool(error_rate) {
                    let mut replacement = BASES[rng.next_below(4) as usize];
                    while replacement == *base {
                        replacement = BASES[rng.next_below(4) as usize];
                    }
                    *base = replacement;
                }
            }
            Read {
                id,
                seq,
                true_pos: start as u32,
            }
        })
        .collect()
}

/// Render reads in FASTQ-ish text (for realistic payload bytes).
pub fn to_fastq(reads: &[Read], accession: &str) -> String {
    let mut out = String::new();
    for r in reads {
        out.push_str(&format!("@{accession}.{}\n", r.id));
        out.push_str(std::str::from_utf8(&r.seq).expect("ASCII bases"));
        out.push_str("\n+\n");
        out.push_str(&"I".repeat(r.seq.len()));
        out.push('\n');
    }
    out
}

/// Parse FASTQ-ish text back into reads (inverse of [`to_fastq`]; origin
/// positions are lost and set to `u32::MAX`).
pub fn from_fastq(text: &str) -> Vec<Read> {
    let lines: Vec<&str> = text.lines().collect();
    lines
        .chunks(4)
        .filter(|c| c.len() == 4 && c[0].starts_with('@'))
        .enumerate()
        .map(|(i, c)| Read {
            id: i as u32,
            seq: c[1].as_bytes().to_vec(),
            true_pos: u32::MAX,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sequence_deterministic_and_valid() {
        let a = random_sequence(1000, 7);
        let b = random_sequence(1000, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|b| BASES.contains(b)));
        let c = random_sequence(1000, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn sampled_reads_match_reference_without_errors() {
        let reference = random_sequence(10_000, 1);
        let reads = sample_reads(&reference, 50, 100, 0.0, 2);
        assert_eq!(reads.len(), 50);
        for r in &reads {
            let origin = &reference[r.true_pos as usize..r.true_pos as usize + 100];
            assert_eq!(r.seq, origin);
        }
    }

    #[test]
    fn error_rate_perturbs_reads() {
        let reference = random_sequence(10_000, 1);
        let reads = sample_reads(&reference, 50, 100, 0.1, 2);
        let mut mismatches = 0usize;
        let mut total = 0usize;
        for r in &reads {
            let origin = &reference[r.true_pos as usize..r.true_pos as usize + 100];
            mismatches += r.seq.iter().zip(origin).filter(|(a, b)| a != b).count();
            total += 100;
        }
        let rate = mismatches as f64 / total as f64;
        assert!((0.05..0.15).contains(&rate), "observed error rate {rate}");
    }

    #[test]
    fn fastq_round_trip() {
        let reference = random_sequence(1_000, 3);
        let reads = sample_reads(&reference, 5, 50, 0.01, 4);
        let text = to_fastq(&reads, "SRR2931415");
        assert!(text.starts_with("@SRR2931415.0\n"));
        let parsed = from_fastq(&text);
        assert_eq!(parsed.len(), 5);
        for (orig, round) in reads.iter().zip(&parsed) {
            assert_eq!(orig.seq, round.seq);
        }
    }

    #[test]
    #[should_panic(expected = "reference shorter")]
    fn sample_reads_rejects_short_reference() {
        let reference = random_sequence(10, 1);
        let _ = sample_reads(&reference, 1, 100, 0.0, 2);
    }
}
