//! Sequence Read Archive accessions and the paper's dataset catalog.
//!
//! Accession validation (`SRR` + digits) is the concrete example of LIDC's
//! "application-specific validations" (§IV-B): the BLAST validator checks
//! SRR ids before a job is admitted.

use std::fmt;

use lidc_datalake::loader::DatasetSpec;
use lidc_ndn::name::Name;

/// Genome/sample classes used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GenomeType {
    /// Rice RNA samples (Wilkens 2015, 99 samples).
    Rice,
    /// Human kidney tumour RNA (NCBI 2017, 36 samples).
    Kidney,
    /// The human reference itself.
    Human,
    /// Anything else.
    Other,
}

impl fmt::Display for GenomeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GenomeType::Rice => "RICE",
            GenomeType::Kidney => "KIDNEY",
            GenomeType::Human => "HUMAN",
            GenomeType::Other => "OTHER",
        };
        f.write_str(s)
    }
}

/// A validated SRA run accession (e.g. `SRR2931415`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SraAccession(String);

impl SraAccession {
    /// Validate and wrap an accession: `SRR` followed by 1–12 digits.
    pub fn parse(s: &str) -> Result<SraAccession, SraError> {
        let digits = s.strip_prefix("SRR").ok_or(SraError::BadPrefix)?;
        if digits.is_empty() || digits.len() > 12 {
            return Err(SraError::BadLength);
        }
        if !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(SraError::NonNumeric);
        }
        Ok(SraAccession(s.to_owned()))
    }

    /// The accession string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SraAccession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Accession validation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SraError {
    /// Missing `SRR` prefix.
    BadPrefix,
    /// Too short or too long.
    BadLength,
    /// Non-digit characters after the prefix.
    NonNumeric,
}

impl fmt::Display for SraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SraError::BadPrefix => write!(f, "accession must start with SRR"),
            SraError::BadLength => write!(f, "accession digit count out of range"),
            SraError::NonNumeric => write!(f, "accession contains non-digits"),
        }
    }
}

impl std::error::Error for SraError {}

/// Metadata for one SRA run in the simulated archive.
#[derive(Debug, Clone, PartialEq)]
pub struct SraRun {
    /// Accession.
    pub accession: SraAccession,
    /// Sample class.
    pub genome: GenomeType,
    /// Compressed archive size in bytes.
    pub size_bytes: u64,
    /// Content seed for synthetic generation.
    pub seed: u64,
}

impl SraRun {
    /// The run's object name inside a data lake (`/sra/<accession>`).
    pub fn lake_name(&self) -> Name {
        Name::root()
            .child_str("sra")
            .child_str(self.accession.as_str())
    }

    /// As a loader spec.
    pub fn dataset_spec(&self) -> DatasetSpec {
        DatasetSpec::new(
            self.lake_name(),
            self.size_bytes,
            self.seed,
            format!("{} RNA sample {}", self.genome, self.accession),
        )
    }
}

/// The rice sample evaluated in Table I.
pub const PAPER_RICE_SRR: &str = "SRR2931415";
/// The kidney sample evaluated in Table I.
pub const PAPER_KIDNEY_SRR: &str = "SRR5139395";
/// Rice sample archive size (synthetic stand-in, ~2.1 GB).
pub const PAPER_RICE_BYTES: u64 = 2_100_000_000;
/// Kidney sample archive size (synthetic stand-in, ~6.3 GB; the paper's
/// kidney run takes ≈3× the rice run).
pub const PAPER_KIDNEY_BYTES: u64 = 6_300_000_000;

/// The two Table I runs.
pub fn paper_runs() -> Vec<SraRun> {
    vec![
        SraRun {
            accession: SraAccession::parse(PAPER_RICE_SRR).expect("valid"),
            genome: GenomeType::Rice,
            size_bytes: PAPER_RICE_BYTES,
            seed: 0x51CE,
        },
        SraRun {
            accession: SraAccession::parse(PAPER_KIDNEY_SRR).expect("valid"),
            genome: GenomeType::Kidney,
            size_bytes: PAPER_KIDNEY_BYTES,
            seed: 0x16D8,
        },
    ]
}

/// The 99-sample rice series (paper §V-B).
pub fn rice_series() -> Vec<SraRun> {
    series(GenomeType::Rice, 2_931_400, 99, 900_000_000, 0xA11CE)
}

/// The 36-sample kidney series (paper §V-B).
pub fn kidney_series() -> Vec<SraRun> {
    series(GenomeType::Kidney, 5_139_300, 36, 2_400_000_000, 0xB0B)
}

fn series(genome: GenomeType, first_id: u64, n: u64, base_size: u64, seed0: u64) -> Vec<SraRun> {
    (0..n)
        .map(|i| SraRun {
            accession: SraAccession::parse(&format!("SRR{}", first_id + i)).expect("valid"),
            genome,
            // Sizes vary ±20% deterministically so samples are not uniform.
            size_bytes: base_size + (i * 7919 % 40) * base_size / 100,
            seed: seed0 ^ i,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_accessions_validate() {
        assert!(SraAccession::parse(PAPER_RICE_SRR).is_ok());
        assert!(SraAccession::parse(PAPER_KIDNEY_SRR).is_ok());
    }

    #[test]
    fn validation_rejects_malformed() {
        assert_eq!(SraAccession::parse("ERR123"), Err(SraError::BadPrefix));
        assert_eq!(SraAccession::parse("SRR"), Err(SraError::BadLength));
        assert_eq!(
            SraAccession::parse("SRR1234567890123"),
            Err(SraError::BadLength)
        );
        assert_eq!(SraAccession::parse("SRR12a4"), Err(SraError::NonNumeric));
    }

    #[test]
    fn paper_runs_match_table1_inputs() {
        let runs = paper_runs();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].accession.as_str(), "SRR2931415");
        assert_eq!(runs[0].genome, GenomeType::Rice);
        assert_eq!(runs[1].accession.as_str(), "SRR5139395");
        assert_eq!(runs[1].genome, GenomeType::Kidney);
    }

    #[test]
    fn series_counts_match_paper() {
        assert_eq!(rice_series().len(), 99, "99 rice samples");
        assert_eq!(kidney_series().len(), 36, "36 kidney samples");
    }

    #[test]
    fn series_accessions_unique_and_valid() {
        let all: Vec<SraRun> = rice_series().into_iter().chain(kidney_series()).collect();
        let mut ids: Vec<&str> = all.iter().map(|r| r.accession.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "no duplicate accessions");
    }

    #[test]
    fn lake_names_and_specs() {
        let run = &paper_runs()[0];
        assert_eq!(run.lake_name().to_uri(), "/sra/SRR2931415");
        let spec = run.dataset_spec();
        assert_eq!(spec.size, PAPER_RICE_BYTES);
        assert!(spec.description.contains("RICE"));
    }
}
