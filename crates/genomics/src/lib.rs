//! # lidc-genomics — the synthetic genomics workload
//!
//! The Magic-BLAST / NCBI-data substitution from DESIGN.md §2:
//!
//! * [`sequence`] — seeded synthetic nucleotide sequences, reads, FASTQ.
//! * [`sra`] — SRA accession validation and the paper's dataset catalog
//!   (the Table I samples plus the 99-rice / 36-kidney series).
//! * [`pack`] — 2-bit packed sequences: O(1) k-mer windows and the
//!   XOR+popcount comparison kernel (32 bases per `u64`).
//! * [`aligner`] — a real seed-and-extend mini-aligner (rayon-parallel,
//!   packed hot path with a scalar twin for differential testing); the
//!   benches' HPC kernel.
//! * [`costmodel`] — the Table-I-calibrated virtual-time cost model (the
//!   regenerated table matches the paper's strings exactly), with its
//!   scale constants grounded in the measured kernel throughput.
//! * [`blast`] — the job facade the LIDC gateway plans jobs through.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aligner;
pub mod blast;
pub mod costmodel;
pub mod pack;
pub mod sequence;
pub mod sra;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::aligner::{
        align_parallel, align_sequential, extend_diagonal, extend_diagonal_scalar, stats,
        Alignment, AlignmentStats, Extension, Reference,
    };
    pub use crate::blast::{lookup_run, plan_blast, BlastError, BlastPlan, HUMAN_REFERENCE};
    pub use crate::costmodel::{CostModel, JobEstimate, KernelCalibration};
    pub use crate::pack::PackedSeq;
    pub use crate::sequence::{random_sequence, sample_reads, to_fastq, Read};
    pub use crate::sra::{
        kidney_series, paper_runs, rice_series, GenomeType, SraAccession, SraError, SraRun,
        PAPER_KIDNEY_SRR, PAPER_RICE_SRR,
    };
}
