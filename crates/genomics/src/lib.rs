//! # lidc-genomics — the synthetic genomics workload
//!
//! The Magic-BLAST / NCBI-data substitution from DESIGN.md §2:
//!
//! * [`sequence`] — seeded synthetic nucleotide sequences, reads, FASTQ.
//! * [`sra`] — SRA accession validation and the paper's dataset catalog
//!   (the Table I samples plus the 99-rice / 36-kidney series).
//! * [`aligner`] — a real seed-and-extend mini-aligner (rayon-parallel);
//!   the benches' HPC kernel.
//! * [`costmodel`] — the Table-I-calibrated virtual-time cost model (the
//!   regenerated table matches the paper's strings exactly).
//! * [`blast`] — the job facade the LIDC gateway plans jobs through.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aligner;
pub mod blast;
pub mod costmodel;
pub mod sequence;
pub mod sra;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::aligner::{
        align_parallel, align_sequential, stats, Alignment, AlignmentStats, Reference,
    };
    pub use crate::blast::{lookup_run, plan_blast, BlastError, BlastPlan, HUMAN_REFERENCE};
    pub use crate::costmodel::{CostModel, JobEstimate};
    pub use crate::sequence::{random_sequence, sample_reads, to_fastq, Read};
    pub use crate::sra::{
        kidney_series, paper_runs, rice_series, GenomeType, SraAccession, SraError, SraRun,
        PAPER_KIDNEY_SRR, PAPER_RICE_SRR,
    };
}
