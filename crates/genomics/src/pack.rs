//! 2-bit packed nucleotide sequences and the vectorized comparison kernel.
//!
//! The aligner's hot path — k-mer windows for seeding and ungapped
//! extension along a diagonal — runs over this representation: 32 bases
//! per `u64`, LSB-first (base `p` lives in word `p / 32` at bit
//! `2 * (p % 32)`). Two primitives fall out of the packing:
//!
//! * [`PackedSeq::kmer`] — any k-mer window (k ≤ 31) is one dual-word
//!   shift + mask, O(1), so indexing a reference is O(len) instead of the
//!   O(len·k) byte-loop re-encoding.
//! * [`count_matches`] — XOR two packed windows and popcount the bases
//!   that differ, 32 bases per iteration, portable `u64` bit-tricks only
//!   (no nightly, no `unsafe`).
//!
//! [`count_matches_scalar`] keeps a scalar zip-filter alive as the
//! differential-testing and benchmark baseline. Both kernels compare over
//! the 2-bit alphabet: every non-`ACGT` byte (ambiguity codes, lowercase)
//! collapses to `T`'s code, so `N` vs `T` *counts as a match* in both —
//! the miniature aligner trades `N`-awareness for the packed
//! representation, uniformly across kernels.

/// Bases packed into each `u64` word.
pub const BASES_PER_WORD: usize = 32;

/// Every low bit of each 2-bit base lane.
const LO_LANES: u64 = 0x5555_5555_5555_5555;

/// The 2-bit code for one base: `A`=0, `C`=1, `G`=2, anything else 3
/// (the aligner's historical encoding — `T` and ambiguity codes share 3,
/// so packed comparisons agree with byte comparisons on `ACGT` input).
/// Branchless (`3 − 3·[b=A] − 2·[b=C] − [b=G]`) so the scalar zip-filter
/// kernel auto-vectorizes and stays an honest benchmark baseline.
#[inline]
pub fn base_code(b: u8) -> u64 {
    code8(b) as u64
}

/// [`base_code`] in `u8` lanes, so the scalar kernel's comparison stays
/// byte-wide and auto-vectorizes.
#[inline]
fn code8(b: u8) -> u8 {
    let a = (b == b'A') as u8;
    let c = (b == b'C') as u8;
    let g = (b == b'G') as u8;
    3 - 3 * a - 2 * c - g
}

/// Mask selecting the low `k` base lanes of a word (`k` ≤ 32).
#[inline]
pub fn lane_mask(k: usize) -> u64 {
    debug_assert!(k <= BASES_PER_WORD);
    if k >= BASES_PER_WORD {
        u64::MAX
    } else {
        (1u64 << (2 * k)) - 1
    }
}

/// A 2-bit packed nucleotide sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedSeq {
    words: Vec<u64>,
    len: usize,
}

impl PackedSeq {
    /// Pack an ASCII sequence.
    pub fn from_ascii(seq: &[u8]) -> PackedSeq {
        let mut p = PackedSeq::default();
        p.pack(seq);
        p
    }

    /// Re-pack `seq` into this buffer, reusing the word allocation.
    pub fn pack(&mut self, seq: &[u8]) {
        self.len = seq.len();
        self.words.clear();
        self.words.extend(seq.chunks(BASES_PER_WORD).map(|chunk| {
            let mut word = 0u64;
            for (lane, &b) in chunk.iter().enumerate() {
                word |= base_code(b) << (2 * lane);
            }
            word
        }));
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The 2-bit code of the base at `pos`.
    #[inline]
    pub fn code_at(&self, pos: usize) -> u64 {
        assert!(pos < self.len, "base {pos} out of range (len {})", self.len);
        (self.words[pos / BASES_PER_WORD] >> (2 * (pos % BASES_PER_WORD))) & 3
    }

    /// The 32-base window starting at `pos`, LSB-first; bases past the end
    /// of the sequence read as zero (callers mask by length).
    #[inline]
    pub fn word_at(&self, pos: usize) -> u64 {
        let w = pos / BASES_PER_WORD;
        let sh = 2 * (pos % BASES_PER_WORD);
        let lo = self.words.get(w).copied().unwrap_or(0) >> sh;
        if sh == 0 {
            lo
        } else {
            lo | self.words.get(w + 1).copied().unwrap_or(0) << (64 - sh)
        }
    }

    /// The packed k-mer window at `pos` (`pos + k` must be in range,
    /// `k` ≤ 31). One shift-and-mask — O(1) regardless of `k` — so rolling
    /// a window across a sequence is O(len).
    #[inline]
    pub fn kmer(&self, pos: usize, k: usize) -> u64 {
        debug_assert!(k < BASES_PER_WORD);
        debug_assert!(pos + k <= self.len, "k-mer window out of range");
        self.word_at(pos) & lane_mask(k)
    }
}

/// Mismatched base lanes in an XOR of two packed windows: a lane differs
/// iff either of its two bits is set.
#[inline]
fn mismatched_lanes(x: u64) -> u32 {
    ((x | (x >> 1)) & LO_LANES).count_ones()
}

/// Count matching bases between `a[a_pos .. a_pos + len]` and
/// `b[b_pos .. b_pos + len]`, 32 bases per iteration. Both ranges must be
/// in bounds.
pub fn count_matches(a: &PackedSeq, a_pos: usize, b: &PackedSeq, b_pos: usize, len: usize) -> u32 {
    assert!(a_pos + len <= a.len, "a range out of bounds");
    assert!(b_pos + len <= b.len, "b range out of bounds");
    let mut mismatches = 0u32;
    let mut i = 0;
    while i + BASES_PER_WORD <= len {
        mismatches += mismatched_lanes(a.word_at(a_pos + i) ^ b.word_at(b_pos + i));
        i += BASES_PER_WORD;
    }
    let tail = len - i;
    if tail > 0 {
        let x = (a.word_at(a_pos + i) ^ b.word_at(b_pos + i)) & lane_mask(tail);
        mismatches += mismatched_lanes(x);
    }
    len as u32 - mismatches
}

/// The scalar zip-filter match count, kept as the differential-testing
/// and benchmark baseline for [`count_matches`]. Comparison is over the
/// 2-bit alphabet — ambiguity codes collapse to `T` ([`base_code`]) — so
/// the scalar and packed kernels agree on *arbitrary* byte input, not
/// just `ACGT` (on `ACGT` input this is exactly the seed
/// implementation's byte equality).
pub fn count_matches_scalar(a: &[u8], b: &[u8]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (code8(x) == code8(y)) as u32)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, seed: u64) -> Vec<u8> {
        // Deterministic mixed-base sequence without pulling in the rng.
        (0..n)
            .map(|i| b"ACGT"[((i as u64).wrapping_mul(seed | 1) >> 3) as usize % 4])
            .collect()
    }

    /// The branchless base_code is exactly the A=0, C=1, G=2, else-3
    /// mapping for every possible byte.
    #[test]
    fn base_code_matches_table_on_all_bytes() {
        for b in 0u8..=255 {
            let expect = match b {
                b'A' => 0,
                b'C' => 1,
                b'G' => 2,
                _ => 3,
            };
            assert_eq!(base_code(b), expect, "byte {b:#04x}");
        }
    }

    #[test]
    fn pack_round_trips_codes() {
        for n in [0usize, 1, 31, 32, 33, 63, 64, 65, 100] {
            let s = seq(n, 0x9E37);
            let p = PackedSeq::from_ascii(&s);
            assert_eq!(p.len(), n);
            assert_eq!(p.is_empty(), n == 0);
            for (i, &b) in s.iter().enumerate() {
                assert_eq!(p.code_at(i), base_code(b), "base {i} of {n}");
            }
        }
    }

    #[test]
    fn non_acgt_bases_pack_as_t() {
        let p = PackedSeq::from_ascii(b"NnXT");
        assert!(p.code_at(0) == 3 && p.code_at(1) == 3 && p.code_at(2) == 3);
        assert_eq!(p.code_at(0), p.code_at(3));
    }

    /// Both kernels agree on non-ACGT input: ambiguity codes collapse to
    /// `T`, so `N` vs `T` is a match (and `N` vs `A` a mismatch) in the
    /// packed AND scalar kernels alike.
    #[test]
    fn kernels_agree_on_ambiguity_codes() {
        let a = b"NTAGnACGTNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNN".to_vec();
        let b = b"TNACxACGANTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTT"[..a.len()].to_vec();
        let packed = count_matches(
            &PackedSeq::from_ascii(&a),
            0,
            &PackedSeq::from_ascii(&b),
            0,
            a.len(),
        );
        let scalar = count_matches_scalar(&a, &b);
        assert_eq!(packed, scalar);
        // Positions 0/1 (N vs T, T vs N) and 4 (n vs x) count as matches;
        // position 3 (G vs C) and 8 (T vs A) do not.
        assert_eq!(count_matches_scalar(b"NG", b"TG"), 2);
        assert_eq!(count_matches_scalar(b"NG", b"AG"), 1);
    }

    #[test]
    fn word_at_matches_per_base_codes() {
        let s = seq(100, 0xABCD);
        let p = PackedSeq::from_ascii(&s);
        for pos in 0..s.len() {
            let w = p.word_at(pos);
            for lane in 0..BASES_PER_WORD.min(s.len() - pos) {
                assert_eq!((w >> (2 * lane)) & 3, p.code_at(pos + lane), "pos {pos} lane {lane}");
            }
        }
    }

    #[test]
    fn kmer_windows_agree_with_byte_encoding() {
        let s = seq(80, 0xFEED);
        let p = PackedSeq::from_ascii(&s);
        for k in [1usize, 5, 16, 31] {
            for pos in 0..=(s.len() - k) {
                let mut expect = 0u64;
                for (lane, &b) in s[pos..pos + k].iter().enumerate() {
                    expect |= base_code(b) << (2 * lane);
                }
                assert_eq!(p.kmer(pos, k), expect, "pos {pos} k {k}");
            }
        }
    }

    #[test]
    fn count_matches_equals_scalar_on_edge_lengths() {
        let a = seq(200, 3);
        let b = seq(200, 11);
        let pa = PackedSeq::from_ascii(&a);
        let pb = PackedSeq::from_ascii(&b);
        for len in [0usize, 1, 31, 32, 33, 64, 96, 100] {
            for (ap, bp) in [(0usize, 0usize), (1, 0), (0, 1), (7, 33), (100, 99)] {
                if ap + len > a.len() || bp + len > b.len() {
                    continue;
                }
                let packed = count_matches(&pa, ap, &pb, bp, len);
                let scalar = count_matches_scalar(&a[ap..ap + len], &b[bp..bp + len]);
                assert_eq!(packed, scalar, "ap {ap} bp {bp} len {len}");
            }
        }
    }

    #[test]
    fn pack_reuses_buffer() {
        let mut p = PackedSeq::from_ascii(&seq(64, 1));
        p.pack(b"ACG");
        assert_eq!(p.len(), 3);
        assert_eq!(p.code_at(0), 0);
        assert_eq!(p.code_at(2), 2);
        assert_eq!(p.word_at(0) >> 6, 0, "stale high lanes cleared");
    }
}
