//! The Magic-BLAST job facade: from a semantic request to a planned job.
//!
//! Bridges the genomics domain to the rest of LIDC: given an accession, a
//! reference database, and requested resources, [`plan_blast`] resolves the
//! input from the simulated archive, consults the cost model, and produces
//! everything the gateway needs to create the Kubernetes job and later
//! publish the result.

use lidc_ndn::name::Name;
use lidc_simcore::time::SimDuration;

use crate::costmodel::CostModel;
use crate::sra::{kidney_series, paper_runs, rice_series, SraAccession, SraError, SraRun};

/// A planned BLAST execution.
#[derive(Debug, Clone, PartialEq)]
pub struct BlastPlan {
    /// The validated accession.
    pub accession: SraAccession,
    /// Input archive size (bytes).
    pub input_bytes: u64,
    /// Predicted run time.
    pub duration: SimDuration,
    /// Predicted output size (bytes).
    pub output_bytes: u64,
    /// Where the result will be published in the data lake
    /// (relative name, joined onto the lake prefix).
    pub output_name: Name,
    /// Where the input lives in the lake (relative name).
    pub input_name: Name,
}

/// Planning errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlastError {
    /// The accession string failed validation.
    InvalidAccession(SraError),
    /// The accession validates but is not in the archive.
    UnknownAccession(String),
    /// Unsupported reference database (only HUMAN is loaded, per the paper).
    UnknownReference(String),
}

impl std::fmt::Display for BlastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlastError::InvalidAccession(e) => write!(f, "invalid SRR id: {e}"),
            BlastError::UnknownAccession(a) => write!(f, "accession not in archive: {a}"),
            BlastError::UnknownReference(r) => write!(f, "unknown reference database: {r}"),
        }
    }
}

impl std::error::Error for BlastError {}

/// The reference database name the paper uses.
pub const HUMAN_REFERENCE: &str = "HUMAN";
/// Size of the (synthetic stand-in) human reference database: ~3.2 GB.
pub const HUMAN_REFERENCE_BYTES: u64 = 3_200_000_000;

/// Look up a run in the simulated archive (the two Table I samples plus the
/// 99-sample rice and 36-sample kidney series).
pub fn lookup_run(accession: &str) -> Option<SraRun> {
    paper_runs()
        .into_iter()
        .chain(rice_series())
        .chain(kidney_series())
        .find(|r| r.accession.as_str() == accession)
}

/// Plan a BLAST job.
pub fn plan_blast(
    model: &CostModel,
    accession: &str,
    reference: &str,
    cpu_cores: u64,
    mem_gib: u64,
) -> Result<BlastPlan, BlastError> {
    let acc = SraAccession::parse(accession).map_err(BlastError::InvalidAccession)?;
    if !reference.eq_ignore_ascii_case(HUMAN_REFERENCE) {
        return Err(BlastError::UnknownReference(reference.to_owned()));
    }
    let run = lookup_run(accession)
        .ok_or_else(|| BlastError::UnknownAccession(accession.to_owned()))?;
    let estimate = model.estimate("BLAST", Some(accession), run.size_bytes, cpu_cores, mem_gib);
    Ok(BlastPlan {
        accession: acc,
        input_bytes: run.size_bytes,
        duration: estimate.duration,
        output_bytes: estimate.output_bytes,
        output_name: Name::root()
            .child_str("results")
            .child_str(&format!("{accession}-vs-{}", reference.to_uppercase())),
        input_name: run.lake_name(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sra::{PAPER_KIDNEY_SRR, PAPER_RICE_SRR};

    #[test]
    fn paper_rows_plan_correctly() {
        let m = CostModel::paper_calibrated();
        let plan = plan_blast(&m, PAPER_RICE_SRR, "HUMAN", 2, 4).unwrap();
        assert_eq!(plan.duration.to_string(), "8h9m50s");
        assert_eq!(plan.output_bytes, 941_000_000);
        assert_eq!(plan.input_name.to_uri(), "/sra/SRR2931415");
        assert_eq!(plan.output_name.to_uri(), "/results/SRR2931415-vs-HUMAN");
        let plan = plan_blast(&m, PAPER_KIDNEY_SRR, "HUMAN", 2, 6).unwrap();
        assert_eq!(plan.duration.to_string(), "24h2m47s");
    }

    #[test]
    fn series_samples_resolvable() {
        let m = CostModel::paper_calibrated();
        // First rice-series sample.
        let plan = plan_blast(&m, "SRR2931400", "HUMAN", 2, 4).unwrap();
        assert!(plan.duration > SimDuration::from_hours(1), "{:?}", plan.duration);
        assert!(plan.output_bytes > 0);
    }

    #[test]
    fn validation_errors_distinguished() {
        let m = CostModel::paper_calibrated();
        assert!(matches!(
            plan_blast(&m, "BAD123", "HUMAN", 2, 4),
            Err(BlastError::InvalidAccession(_))
        ));
        assert!(matches!(
            plan_blast(&m, "SRR1", "HUMAN", 2, 4),
            Err(BlastError::UnknownAccession(_))
        ));
        assert!(matches!(
            plan_blast(&m, PAPER_RICE_SRR, "MOUSE", 2, 4),
            Err(BlastError::UnknownReference(_))
        ));
    }

    #[test]
    fn reference_name_case_insensitive() {
        let m = CostModel::paper_calibrated();
        assert!(plan_blast(&m, PAPER_RICE_SRR, "human", 2, 4).is_ok());
    }
}
