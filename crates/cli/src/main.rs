//! `lidc` — the command-line tool over the simulated multi-cluster testbed.
//!
//! Mirrors the paper's user-facing workflow (§IV): submit named
//! computations, check status, retrieve datasets — without knowing where
//! any cluster is.

mod args;
mod commands;

use args::Args;

fn main() {
    let parsed = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_deref() {
        Some("submit") => commands::submit(&parsed),
        Some("fetch") => commands::fetch(&parsed),
        Some("load-data") => commands::load_data(&parsed),
        Some("catalog") => commands::catalog(&parsed),
        Some("topology") => commands::topology(&parsed),
        Some("chaos") => commands::chaos(&parsed),
        Some("experiment") => commands::experiment(&parsed),
        Some("help") | None => {
            commands::help();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?} (try `lidc help`)")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
