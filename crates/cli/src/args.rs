//! A minimal `--flag value` argument parser (the workspace deliberately
//! avoids argument-parsing dependencies).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, positional arguments, and flags.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: Option<String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` and bare `--switch` flags (switch value = "true").
    pub flags: BTreeMap<String, String>,
}

impl Args {
    /// Parse `std::env::args` (skipping the program name).
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = raw.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty flag name".into());
                }
                if let Some((k, v)) = key.split_once('=') {
                    args.flags.insert(k.to_owned(), v.to_owned());
                } else if it.peek().map(|n| !n.starts_with("--")).unwrap_or(false) {
                    let v = it.next().expect("peeked");
                    args.flags.insert(key.to_owned(), v);
                } else {
                    args.flags.insert(key.to_owned(), "true".to_owned());
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// A flag's value, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A flag with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A required numeric flag.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got {v:?}")),
        }
    }

    /// Bare switch presence.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn command_positionals_and_flags() {
        let a = parse("submit extra --app BLAST --cpu 2 --verbose --mem=4");
        assert_eq!(a.command.as_deref(), Some("submit"));
        assert_eq!(a.positional, vec!["extra".to_owned()]);
        assert_eq!(a.get("app"), Some("BLAST"));
        assert_eq!(a.get_u64("cpu", 0).unwrap(), 2);
        assert_eq!(a.get_u64("mem", 0).unwrap(), 4);
        assert!(a.has("verbose"));
    }

    #[test]
    fn switch_before_flag_not_swallowed() {
        let a = parse("run --dry-run --seed 7");
        assert_eq!(a.get("dry-run"), Some("true"));
        assert_eq!(a.get_u64("seed", 0).unwrap(), 7);
    }

    #[test]
    fn defaults_and_errors() {
        let a = parse("x --n abc");
        assert_eq!(a.get_or("missing", "d"), "d");
        assert!(a.get_u64("n", 1).is_err());
        assert_eq!(a.get_u64("absent", 5).unwrap(), 5);
    }
}
