//! `lidc` subcommand implementations over the simulated testbed.
//!
//! Every invocation stands up a deterministic world (seeded via `--seed`),
//! performs the requested protocol interaction, and prints what a real
//! operator would see. The simulated clock makes hours-long genomics jobs
//! complete in milliseconds of wall time.

use lidc_baseline::chaos::{comparison_table, run_baseline_chaos, run_lidc_chaos, ChaosConfig};
use lidc_core::client::{ClientConfig, ScienceClient, Submit};
use lidc_core::cluster::{LidcCluster, LidcClusterConfig};
use lidc_core::naming::{data_prefix, ComputeRequest};
use lidc_core::overlay::{ClusterSpec, Overlay, OverlayConfig};
use lidc_core::placement::PlacementPolicy;
use lidc_datalake::catalog::Catalog;
use lidc_datalake::loader::DataLoader;
use lidc_datalake::repo::MemRepo;
use lidc_genomics::blast::{HUMAN_REFERENCE, HUMAN_REFERENCE_BYTES};
use lidc_genomics::sra::{kidney_series, paper_runs, rice_series};
use lidc_ndn::face::FaceIdAlloc;
use lidc_ndn::name::Name;
use lidc_simcore::bytesize::format_bytes;
use lidc_simcore::engine::{ActorId, Sim};
use lidc_simcore::time::SimDuration;

use crate::args::Args;

/// Exit-code-carrying command error.
pub type CmdResult = Result<(), String>;

/// Parse `--clusters name:latency[,name:latency...]` (default: the paper's
/// single GCP MicroK8s site).
fn cluster_specs(args: &Args) -> Result<Vec<ClusterSpec>, String> {
    let raw = args.get_or("clusters", "gcp-microk8s:5ms");
    raw.split(',')
        .map(|part| {
            let (name, lat) = part
                .split_once(':')
                .ok_or_else(|| format!("--clusters entry {part:?} must be name:latency"))?;
            let latency = SimDuration::parse(lat)
                .map_err(|e| format!("bad latency in {part:?}: {e}"))?;
            Ok(ClusterSpec::new(name, latency))
        })
        .collect()
}

fn placement(args: &Args) -> Result<PlacementPolicy, String> {
    Ok(match args.get_or("placement", "nearest") {
        "nearest" => PlacementPolicy::Nearest,
        "round-robin" => PlacementPolicy::RoundRobin,
        "adaptive" => PlacementPolicy::Adaptive,
        "least-loaded" => PlacementPolicy::LeastLoaded,
        "learned" => PlacementPolicy::Learned,
        other => return Err(format!("unknown --placement {other:?}")),
    })
}

fn build_world(args: &Args) -> Result<(Sim, Overlay, ActorId), String> {
    let seed = args.get_u64("seed", 42)?;
    let mut sim = Sim::new(seed);
    // Parallel same-instant dispatch: worker threads for distinct-actor
    // waves (1 = serial; results are bit-identical at any count).
    let threads = args.get_u64("threads", 1)? as usize;
    sim.set_threads(threads);
    // Horizon scheduler: loosely-coupled actor groups (one per overlay
    // member) run ahead of the global clock within their WAN-latency
    // lookahead. Bit-identical to the legacy loop at any thread count.
    sim.set_horizon(args.has("horizon"));
    let defaults = OverlayConfig::default();
    // Access-router Content Store shape: entry capacity plus the byte
    // budget (0 = no byte limit; the default derives one 1 MiB segment per
    // entry slot from the capacity).
    let router_cs_capacity = args.get_u64("router-cs-capacity", defaults.router_cs_capacity as u64)? as usize;
    let router_cs_budget_bytes = args.get_u64(
        "cs-budget-bytes",
        lidc_ndn::tables::cs::default_budget_bytes(router_cs_capacity),
    )?;
    // Forwarder table sharding (1 = single-shard tables, serial ingress).
    let forwarder_shards = args.get_u64("forwarder-shards", 1)?.max(1) as usize;
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: placement(args)?,
        clusters: cluster_specs(args)?,
        router_cs_capacity,
        router_cs_budget_bytes,
        forwarder_shards,
        ..defaults
    });
    let alloc = overlay.alloc.clone();
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        overlay.router,
        &alloc,
        "cli-client",
    );
    Ok((sim, overlay, client))
}

/// `lidc submit` — express a named computation and follow it to completion.
pub fn submit(args: &Args) -> CmdResult {
    let app = args.get_or("app", "BLAST").to_owned();
    let cpu = args.get_u64("cpu", 2)?;
    let mem = args.get_u64("mem", 4)?;
    let mut request = ComputeRequest::new(&app, cpu, mem);
    if let Some(srr) = args.get("srr") {
        request = request.with_param("srr", srr).with_param("ref", args.get_or("ref", "HUMAN"));
    }
    if let Some(input) = args.get("input") {
        request = request.with_param("input", input);
    }
    if let Some(url) = args.get("url") {
        request = ComputeRequest::from_http_url(url).map_err(|e| format!("bad --url: {e:?}"))?;
    }

    let (mut sim, overlay, client) = build_world(args)?;
    println!("overlay     : {}", overlay.member_names().join(", "));
    println!("placement   : {}", overlay.placement());
    println!("interest    : {}", request.to_name().to_uri());
    sim.send(client, Submit(request));

    let watch = args.has("watch");
    if watch {
        // Print periodic status snapshots while the job runs.
        let step = SimDuration::parse(args.get_or("watch-interval", "2h"))
            .map_err(|e| format!("bad --watch-interval: {e}"))?;
        loop {
            sim.run_for(step);
            let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
            let state = if run.error.is_some() {
                "Failed"
            } else if run.completed_at.is_some() {
                "Completed"
            } else if run.first_running_at.is_some() {
                "Running"
            } else {
                "Pending"
            };
            let eta = match run.last_eta_secs {
                Some(secs) if state == "Running" => {
                    format!(", eta {}", SimDuration::from_secs(secs))
                }
                _ => String::new(),
            };
            println!(
                "t+{:<12} {} (job {}, {} polls{eta})",
                sim.now().elapsed().to_string(),
                state,
                run.job_id.as_deref().unwrap_or("-"),
                run.polls
            );
            if run.completed_at.is_some() || run.error.is_some() {
                break;
            }
        }
        sim.run();
    } else {
        sim.run();
    }

    let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
    match (&run.error, run.completed_at) {
        (Some(e), _) => {
            println!("FAILED      : {e}");
            return Err(format!("job failed: {e}"));
        }
        (None, Some(_)) => {
            println!("cluster     : {}", run.cluster.as_deref().unwrap_or("-"));
            println!("job id      : {}", run.job_id.as_deref().unwrap_or("-"));
            println!("turnaround  : {}", run.turnaround().unwrap());
            println!(
                "result      : {} ({})",
                run.result_name.as_ref().map(Name::to_uri).unwrap_or_default(),
                format_bytes(run.result_size)
            );
        }
        _ => println!("job did not finish inside the simulation horizon"),
    }
    Ok(())
}

/// `lidc fetch` — retrieve a named object from the data lake.
pub fn fetch(args: &Args) -> CmdResult {
    let name = match (args.get("name"), args.get("srr")) {
        (Some(n), _) => Name::parse(n).map_err(|e| format!("bad --name: {e:?}"))?,
        (None, Some(srr)) => data_prefix().child_str("sra").child_str(srr),
        (None, None) => return Err("fetch needs --name </ndn/...> or --srr <id>".into()),
    };
    let (_sim, overlay, _client) = build_world(args)?;
    // Object metadata comes straight from the lake repo; the network
    // retrieval path is exercised by `submit` and the bench binaries.
    let repo = overlay.clusters[0].repo.clone();
    match repo.get(&name) {
        Some(content) => {
            println!("object      : {}", name.to_uri());
            println!("size        : {}", format_bytes(content.len()));
            println!(
                "segments    : {}",
                lidc_datalake::segment::segment_count(
                    content.len(),
                    lidc_datalake::segment::DEFAULT_SEGMENT_SIZE
                )
            );
            Ok(())
        }
        None => Err(format!("NACK: no such object {}", name.to_uri())),
    }
}

/// `lidc load-data` — the paper's §V-B data-loading tool.
pub fn load_data(args: &Args) -> CmdResult {
    let _ = args;
    let repo = MemRepo::shared();
    let mut loader = DataLoader::new().add(lidc_datalake::loader::DatasetSpec::new(
        Name::root().child_str("ref").child_str(HUMAN_REFERENCE),
        HUMAN_REFERENCE_BYTES,
        0xFEED,
        "human reference database",
    ));
    for run in paper_runs().into_iter().chain(rice_series()).chain(kidney_series()) {
        loader = loader.add(run.dataset_spec());
    }
    let stats = loader.load_into(repo.as_ref(), &data_prefix());
    println!(
        "loaded {} objects, {} into the data lake under {}",
        stats.objects,
        format_bytes(stats.bytes),
        data_prefix().to_uri()
    );
    println!("(human reference + 2 Table-I samples + 99 rice + 36 kidney series)");
    Ok(())
}

/// `lidc catalog` — list what a deployed cluster's data lake publishes.
pub fn catalog(args: &Args) -> CmdResult {
    let seed = args.get_u64("seed", 42)?;
    let mut sim = Sim::new(seed);
    let alloc = FaceIdAlloc::new();
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("gcp-microk8s"));
    let catalog = Catalog::load(cluster.repo.as_ref(), &data_prefix())
        .ok_or("no catalog published")?;
    let limit = args.get_u64("limit", 20)? as usize;
    println!("{} datasets, {} total", catalog.entries.len(), format_bytes(catalog.total_bytes()));
    for e in catalog.entries.iter().take(limit) {
        println!("{:>10}  {}  ({})", format_bytes(e.size), e.name.to_uri(), e.description);
    }
    if catalog.entries.len() > limit {
        println!("... {} more (raise --limit)", catalog.entries.len() - limit);
    }
    Ok(())
}

/// `lidc topology` — show the overlay as the network sees it.
pub fn topology(args: &Args) -> CmdResult {
    let (mut sim, overlay, _client) = build_world(args)?;
    sim.run();
    println!("placement policy : {}", overlay.placement());
    println!("members          :");
    for spec in cluster_specs(args)? {
        let face = overlay.face_of(&spec.name);
        println!(
            "  {:<16} wan latency {:<8} router face {:?}",
            spec.name,
            spec.latency.to_string(),
            face
        );
    }
    println!("anycast prefixes : /ndn/k8s/compute, /ndn/k8s/data (every member)");
    println!("routed prefixes  : /ndn/k8s/status/<member>, /ndn/k8s/data/results/<member>");
    Ok(())
}

/// `lidc experiment` — list the reproduction harnesses.
pub fn experiment(args: &Args) -> CmdResult {
    let _ = args;
    println!("experiment harnesses live in the lidc-bench crate:");
    for (bin, what) in [
        ("table1", "Table I — computation performance"),
        ("fig1_location_independence", "Fig. 1 — location-independent placement"),
        ("fig2_transparent_dispatch", "Fig. 2 — name-driven dispatch"),
        ("fig3_nodeport_path", "Fig. 3 — NodePort/service/DNS path"),
        ("fig4_name_service_mapping", "Fig. 4 — name → service mapping"),
        ("fig5_workflow_trace", "Fig. 5 — workflow protocol trace"),
        ("ablate_placement", "placement-policy ablation"),
        ("ablate_caching", "result-caching ablation"),
        ("ablate_aggregation", "PIT-aggregation ablation"),
        ("ablate_churn", "churn: LIDC vs centralized vs manual"),
        ("ablate_central_failure", "single-point-of-failure comparison"),
        ("ablate_scaling", "overlay scale sweep"),
        ("ablate_loss", "WAN packet-loss tolerance sweep"),
    ] {
        println!("  cargo run -p lidc-bench --release --bin {bin:<28} # {what}");
    }
    Ok(())
}

/// `lidc chaos` — run LIDC and the centralized baseline under the *same*
/// deterministic fault schedule and print the side-by-side outcome.
/// `--schedule` picks the storm: `standard` (a permanent cluster outage
/// plus transient node crashes), `byzantine` (one cluster's gateway
/// forges every reply — see docs/INTEGRITY.md), or `region-outage`
/// (a correlated two-cluster outage that heals).
pub fn chaos(args: &Args) -> CmdResult {
    let seed = args.get_u64("seed", 42)?;
    let mut cfg = match args.get_or("schedule", "standard") {
        "standard" => ChaosConfig::standard(seed),
        "byzantine" => ChaosConfig::byzantine(seed),
        "region-outage" => ChaosConfig::region_outage(seed),
        other => {
            return Err(format!(
                "unknown --schedule {other:?} (expected standard, byzantine, or region-outage)"
            ))
        }
    };
    cfg.jobs = u32::try_from(args.get_u64("jobs", u64::from(cfg.jobs))?)
        .map_err(|_| "--jobs out of range".to_owned())?;
    cfg.threads = usize::try_from(args.get_u64("threads", 1)?).unwrap_or(1);
    cfg.shards = usize::try_from(args.get_u64("forwarder-shards", 1)?).unwrap_or(1);
    cfg.horizon_mode = args.has("horizon");
    println!("fault schedule (seed {seed}):");
    for event in cfg.schedule.events() {
        println!("  {event}");
    }
    let lidc = run_lidc_chaos(&cfg);
    let baseline = run_baseline_chaos(&cfg);
    println!("\n{}", comparison_table(&[&lidc, &baseline]).to_markdown());
    println!("applied fault timeline (identical in both worlds):");
    for line in lidc.fault_timeline.lines() {
        println!("  {line}");
    }
    if lidc.fault_timeline != baseline.fault_timeline {
        return Err("fault timelines diverged between the two worlds".into());
    }
    Ok(())
}

/// `lidc help`.
pub fn help() {
    println!(
        "lidc — location-independent data and compute (simulated testbed)

USAGE: lidc <command> [flags]

COMMANDS
  submit      submit a named computation and follow it to completion
              --app BLAST --srr SRR2931415 --cpu 2 --mem 4 [--watch]
              [--url https://.../compute?...] [--clusters a:5ms,b:25ms]
              [--placement nearest|round-robin|adaptive|least-loaded|learned]
  fetch       look up a data-lake object (--name /ndn/k8s/data/... | --srr ID)
  load-data   run the paper's data-loading tool and report what it published
  catalog     list the datasets a deployed cluster publishes [--limit N]
  topology    show overlay members, latencies and routed prefixes
  chaos       LIDC vs centralized baseline under one deterministic fault
              schedule [--jobs N] [--threads N] [--forwarder-shards N]
              [--horizon] [--schedule standard|byzantine|region-outage]
  experiment  list the table/figure reproduction harnesses
  help        this text

COMMON FLAGS
  --seed N                  deterministic world seed (default 42)
  --clusters SPEC           name:latency[,name:latency...] (default gcp-microk8s:5ms)
  --placement POLICY        compute-prefix forwarding strategy (default nearest)
  --router-cs-capacity N    access-router Content Store entries (default 4096; 0 = off)
  --cs-budget-bytes N       access-router Content Store byte budget
                            (default capacity x 1 MiB; 0 = no byte limit)
  --threads N               engine workers for parallel same-instant dispatch
                            (default 1 = serial; results identical at any N)
  --horizon                 horizon scheduler: per-cluster actor groups run
                            ahead of the global clock within WAN-latency
                            lookahead (results identical to the default loop)
  --forwarder-shards N      PIT/CS/DNL shards per forwarder (default 1; >1
                            enables the two-phase parallel burst ingress)"
    );
}
