//! The paper's §IV genomics deployment, end to end: run the four Table-I
//! configurations through the full LIDC stack (client → NDN → gateway →
//! Kubernetes job → data lake) and print the regenerated table.
//!
//! ```text
//! cargo run --release --example genomics_workflow
//! ```
//!
//! Each row BLASTs one SRA sample against the human reference database with
//! a different CPU/memory configuration. The virtual-time cost model is
//! calibrated on Table I (see `lidc-genomics::costmodel`), so the *shape* of
//! the paper's result reproduces exactly: run time is insensitive to the
//! tested CPU/memory range, the kidney sample takes ~3x the rice sample, and
//! output sizes are fixed per dataset.

use lidc::prelude::*;

/// One Table-I configuration: (SRR accession, genome type, mem GiB, cpus).
const ROWS: [(&str, &str, u64, u64); 4] = [
    (PAPER_RICE_SRR, "RICE", 4, 2),
    (PAPER_RICE_SRR, "RICE", 4, 4),
    (PAPER_KIDNEY_SRR, "KIDNEY", 4, 2),
    (PAPER_KIDNEY_SRR, "KIDNEY", 6, 2),
];

fn main() {
    let mut table = Table::new(
        "Table I — Computation Performance (reproduced)",
        &[
            "SRR ID",
            "Ref. Database",
            "Genome Type",
            "Memory (GB)",
            "CPU",
            "Run Time",
            "Output Size",
        ],
    );

    for (i, &(srr, genome, mem, cpu)) in ROWS.iter().enumerate() {
        // Fresh deterministic world per row, like a fresh testbed run.
        let mut sim = Sim::new(100 + i as u64);
        let alloc = FaceIdAlloc::new();
        let cluster =
            LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("gcp-microk8s"));
        let client = ScienceClient::deploy(
            ClientConfig::default(),
            &mut sim,
            cluster.gateway_fwd,
            &alloc,
            "scientist",
        );

        let request = ComputeRequest::new("BLAST", cpu, mem)
            .with_param("srr", srr)
            .with_param("ref", "HUMAN");
        sim.send(client, Submit(request));
        sim.run();

        let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
        assert!(run.is_success(), "row {i} failed: {:?}", run.error);

        // Report the K8s-observed job run time (start -> succeeded), which
        // is what the paper's Table I measures, not the client turnaround.
        let api = cluster.k8s.api.read();
        let job = api.jobs.values().next().unwrap();
        table.push_row(vec![
            srr.to_owned(),
            "HUMAN".to_owned(),
            genome.to_owned(),
            mem.to_string(),
            cpu.to_string(),
            job.run_time().unwrap().to_string(),
            format_bytes(run.result_size),
        ]);
    }

    println!("{}", table.to_markdown());
    println!("Paper reference rows:");
    println!("  SRR2931415 HUMAN RICE   4GB 2cpu -> 8h9m50s,   941MB");
    println!("  SRR2931415 HUMAN RICE   4GB 4cpu -> 8h7m10s,   941MB");
    println!("  SRR5139395 HUMAN KIDNEY 4GB 2cpu -> 24h16m12s, 2.71GB");
    println!("  SRR5139395 HUMAN KIDNEY 6GB 2cpu -> 24h2m47s,  2.71GB");
}
