//! Dynamic overlay membership and result caching: clusters join and leave a
//! running overlay while unmodified clients keep submitting, and identical
//! requests are answered from the gateway result cache (paper §VII, both
//! implemented as extensions per DESIGN.md §6).
//!
//! ```text
//! cargo run --release --example dynamic_overlay
//! ```

use lidc::prelude::*;

fn blast(tag: u32) -> ComputeRequest {
    ComputeRequest::new("BLAST", 2, 4)
        .with_param("srr", PAPER_RICE_SRR)
        .with_param("ref", "HUMAN")
        .with_param("tag", tag.to_string())
}

fn main() {
    let mut sim = Sim::new(77);
    // Start with a single, distant cluster. Result caching is enabled
    // (capacity 64 entries) so repeated identical names short-circuit.
    let mut overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::Nearest,
        clusters: vec![
            ClusterSpec::new("faraway", SimDuration::from_millis(80)).with_cache(64, SimDuration::ZERO),
        ],
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        overlay.router,
        &alloc,
        "alice",
    );

    // Phase 1: only "faraway" exists; the job must land there.
    sim.send(client, Submit(blast(1)));
    sim.run();
    report(&sim, client, 0, "only member");

    // Phase 2: a nearby cluster joins the overlay — no client changes.
    let near = ClusterSpec::new("nearby", SimDuration::from_millis(3)).with_cache(64, SimDuration::ZERO);
    overlay.add_cluster(&mut sim, near);
    sim.send(client, Submit(blast(2)));
    sim.run();
    report(&sim, client, 1, "joined mid-run, immediately preferred");

    // Phase 3: identical request as phase 2 — served from the result cache
    // without spawning a second Kubernetes job.
    sim.send(client, Submit(blast(2)));
    sim.run();
    report(&sim, client, 2, "identical name; result cache hit");

    // Phase 4: the nearby cluster leaves; traffic transparently returns to
    // the remaining member.
    overlay.remove_cluster(&mut sim, "nearby");
    sim.send(client, Submit(blast(3)));
    sim.run();
    report(&sim, client, 3, "member left; fallback member serves");

    println!();
    for c in &overlay.clusters {
        let s = c.gateway_stats(&sim);
        println!(
            "cluster {:8} jobs_created={} cache_hits={} results_published={}",
            c.name, s.jobs_created, s.cache_hits, s.results_published
        );
    }
}

fn report(sim: &Sim, client: ActorId, idx: usize, note: &str) {
    let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[idx];
    assert!(run.is_success(), "run {idx} failed: {:?}", run.error);
    println!(
        "run {}: cluster={:8} turnaround={:>12} cached={:5}  <- {}",
        idx + 1,
        run.cluster.as_deref().unwrap_or("?"),
        run.turnaround().unwrap().to_string(),
        run.served_from_cache,
        note
    );
}
