//! A web science portal: the paper's §II claim that the framework is not
//! tied to NDN naming — HTTP users get the same location-independent
//! compute through the [`HttpBridge`] protocol translator, including
//! predicted completion times (§VII) in status responses.
//!
//! ```text
//! cargo run --release --example web_portal
//! ```

use lidc::prelude::*;
use lidc::simcore::engine::{Actor, Ctx, Msg};

/// The "browser": fires HTTP calls and prints what comes back.
struct Browser {
    replies: Vec<(u64, HttpResponse)>,
}
impl Actor for Browser {
    fn on_message(&mut self, msg: Msg, _ctx: &mut Ctx<'_>) {
        if let Ok(r) = msg.downcast::<HttpReply>() {
            self.replies.push((r.tag, r.response));
        }
    }
}

fn main() {
    let mut sim = Sim::new(8_080);
    // Three sites; the portal's bridge sits on the WAN access router, so
    // HTTP users inherit the same placement transparency as NDN users.
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::Nearest,
        clusters: vec![
            ClusterSpec::new("tennessee", SimDuration::from_millis(5)),
            ClusterSpec::new("chicago", SimDuration::from_millis(24)),
            ClusterSpec::new("geneva", SimDuration::from_millis(95)),
        ],
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let bridge = HttpBridge::deploy(&mut sim, overlay.router, &alloc, "portal-bridge");
    let browser = sim.spawn("browser", Browser { replies: vec![] });

    let call = |sim: &mut Sim, tag: u64, method: &str, target: &str| {
        println!(">> {method} {target}");
        sim.send(bridge, HttpCall {
            request: HttpRequest::new(method, target),
            reply_to: browser,
            tag,
        });
    };
    let show = |sim: &Sim, tag: u64| {
        let replies = &sim.actor::<Browser>(browser).unwrap().replies;
        let (_, response) = replies.iter().find(|(t, _)| *t == tag).expect("reply");
        let body = response.body_text();
        let body = if body.len() > 200 { format!("{}…", &body[..200]) } else { body };
        println!("<< {} {}", response.status, body.replace('\n', " | "));
        println!();
    };

    // 1. Submit the paper's BLAST job over HTTP. (run_for, not run: the
    //    whole 8-hour job would otherwise execute before we look again.)
    call(
        &mut sim,
        1,
        "POST",
        "/compute?mem=4&cpu=2&app=BLAST&srr=SRR2931415&ref=HUMAN",
    );
    sim.run_for(SimDuration::from_mins(1));
    show(&sim, 1);
    let job_id = {
        let replies = &sim.actor::<Browser>(browser).unwrap().replies;
        let ack = SubmitAck::from_text(&replies[0].1.body_text()).expect("ack");
        println!("portal: job {} accepted by cluster {}", ack.job_id, ack.cluster);
        println!();
        ack.job_id
    };

    // 2. Poll status over HTTP at a few checkpoints; while the job runs,
    //    the body carries the gateway's predicted remaining seconds (§VII).
    let mut tag = 2;
    for hours in [1u64, 4, 7] {
        let target = SimTime::ZERO + SimDuration::from_hours(hours);
        sim.run_until(target);
        call(&mut sim, tag, "GET", &format!("/status/{job_id}"));
        sim.run_for(SimDuration::from_secs(2));
        show(&sim, tag);
        tag += 1;
    }

    // 3. Run to completion and grab the final status with the result name.
    sim.run();
    call(&mut sim, tag, "GET", &format!("/status/{job_id}"));
    sim.run();
    show(&sim, tag);
    let result_path = {
        let replies = &sim.actor::<Browser>(browser).unwrap().replies;
        let body = replies.last().unwrap().1.body_text();
        body.lines()
            .find_map(|l| l.strip_prefix("result="))
            .expect("completed with result")
            .trim_start_matches("/ndn/k8s/data/")
            .to_owned()
    };

    // 4. Fetch the (manifest of the) result over HTTP.
    tag += 1;
    call(&mut sim, tag, "GET", &format!("/data/{result_path}"));
    sim.run();
    show(&sim, tag);

    println!("The HTTP user never learned a cluster address: the bridge");
    println!("translated every request onto the same semantic names the");
    println!("NDN clients use, and the overlay placed them identically.");
}
