//! Multi-cluster placement and failover: the paper's §I claim that LIDC
//! "adapts in real-time to changes in load, network conditions, or cluster
//! availability", demonstrated on a three-site overlay.
//!
//! ```text
//! cargo run --release --example multi_cluster_failover
//! ```
//!
//! Three clusters at different WAN distances advertise the same
//! `/ndn/k8s/compute` name. The client submits without naming any cluster;
//! the network carries the request to the nearest one. Mid-run, that
//! cluster is partitioned away — the client's unchanged retry logic lands
//! the resubmission on the next-nearest site.

use lidc::prelude::*;

fn main() {
    let mut sim = Sim::new(2024);
    let overlay = Overlay::build(&mut sim, OverlayConfig {
        placement: PlacementPolicy::Nearest,
        clusters: vec![
            ClusterSpec::new("tennessee", SimDuration::from_millis(5)),
            ClusterSpec::new("chicago", SimDuration::from_millis(24)),
            ClusterSpec::new("geneva", SimDuration::from_millis(95)),
        ],
        ..Default::default()
    });
    let alloc = overlay.alloc.clone();
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        overlay.router,
        &alloc,
        "alice",
    );

    println!("overlay members: {:?}", overlay.member_names());
    println!("placement policy: nearest (best-route on RTT)");
    println!();

    // Submit with zero cluster knowledge.
    let request = ComputeRequest::new("BLAST", 2, 4)
        .with_param("srr", PAPER_RICE_SRR)
        .with_param("ref", "HUMAN");
    println!("t+0       submit {}", request.to_name().to_uri());
    sim.send(client, Submit(request));

    // Let the job land and run for a while...
    sim.run_for(SimDuration::from_mins(30));
    {
        let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
        println!(
            "t+30m     job {} running on '{}' (nearest site won)",
            run.job_id.as_deref().unwrap_or("?"),
            run.cluster.as_deref().unwrap_or("?")
        );
        assert_eq!(run.cluster.as_deref(), Some("tennessee"));
    }

    // ...then partition the serving cluster away.
    println!("t+30m     !! tennessee is partitioned from the overlay");
    overlay.fail_cluster(&mut sim, "tennessee");
    sim.run();

    let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
    assert!(run.is_success(), "failover failed: {:?}", run.error);
    println!(
        "t+{}  job re-placed on '{}' after {} resubmission(s); completed",
        run.completed_at.unwrap().since(run.submitted_at),
        run.cluster.as_deref().unwrap(),
        run.resubmits
    );
    println!();
    println!("result  {}", run.result_name.as_ref().unwrap().to_uri());
    println!("size    {}", format_bytes(run.result_size));
    println!();
    println!("No client reconfiguration occurred at any point: the request");
    println!("names the computation, and the overlay finds a cluster for it.");
}
