//! Quickstart: deploy one LIDC cluster, submit a named BLAST computation,
//! and watch the paper's Fig. 5 protocol run end-to-end in virtual time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The client never learns an address, a node name, or a Kubernetes
//! namespace: it expresses the *name*
//! `/ndn/k8s/compute/mem=4&cpu=2&app=BLAST&srr=SRR2931415&ref=HUMAN` and the
//! network does the rest.

use lidc::prelude::*;

fn main() {
    // A deterministic world: same seed => byte-identical run.
    let mut sim = Sim::new(42);
    let alloc = FaceIdAlloc::new();

    // One LIDC cluster: gateway NFD + simulated Kubernetes + named data lake.
    // Deploy also runs the paper's data-loading tool (§V-B), publishing the
    // human reference database and the SRA samples under /ndn/k8s/data.
    let cluster = LidcCluster::deploy(&mut sim, &alloc, LidcClusterConfig::named("edge-a"));

    // A science user, attached over a WAN link. It knows names, not places.
    let client = ScienceClient::deploy(
        ClientConfig::default(),
        &mut sim,
        cluster.gateway_fwd,
        &alloc,
        "alice",
    );

    // Paper §IV-A: "a client asking to BLAST a known SRR ID against a human
    // genome reference dataset", parameters encoded in the Interest name.
    let request = ComputeRequest::new("BLAST", 2, 4)
        .with_param("srr", PAPER_RICE_SRR)
        .with_param("ref", "HUMAN");
    println!("submitting   {}", request.to_name().to_uri());

    sim.send(client, Submit(request));
    sim.run();

    // Replay the Fig. 5 timeline from the client's own record.
    let run = &sim.actor::<ScienceClient>(client).unwrap().runs()[0];
    assert!(run.is_success(), "run failed: {:?}", run.error);

    println!();
    println!("Fig. 5 protocol timeline (virtual time)");
    println!("----------------------------------------");
    let t0 = run.submitted_at;
    let stamp = |t: Option<SimTime>| -> String {
        t.map(|t| format!("t+{}", t.since(t0))).unwrap_or_else(|| "-".into())
    };
    println!("1. Interest submitted        t+0s");
    println!(
        "2. job acked by gateway      {}  (job {}, cluster {})",
        stamp(run.ack_at),
        run.job_id.as_deref().unwrap_or("-"),
        run.cluster.as_deref().unwrap_or("-")
    );
    println!("3. first Running status      {}", stamp(run.first_running_at));
    println!(
        "4. Completed observed        {}  ({} status polls)",
        stamp(run.completed_at),
        run.polls
    );
    println!("5. result fetched from lake  {}", stamp(run.fetched_at));
    println!();
    println!("result object   {}", run.result_name.as_ref().unwrap().to_uri());
    println!("result size     {}", format_bytes(run.result_size));
    println!("turnaround      {}", run.turnaround().unwrap());
    println!();
    println!("(Table I row 1 of the paper: rice sample vs HUMAN reference on");
    println!(" 2 CPU / 4 GB ran for 8h9m50s and produced a 941 MB archive.)");

    // Cross-check against the Kubernetes view of the same job.
    let api = cluster.k8s.api.read();
    let job = api.jobs.values().next().expect("job exists");
    println!();
    println!(
        "kubernetes says: condition={:?} run_time={}",
        job.status.condition,
        job.run_time().map(|d| d.to_string()).unwrap_or_default()
    );
}
