//! Minimal, dependency-free stand-in for `criterion`, built for offline
//! workspaces. Benches written against the criterion API run unmodified:
//! each routine is warmed up, the per-iteration cost is calibrated, and the
//! median over a fixed sample count is reported as `ns/iter`.
//!
//! Samples pass through **MAD outlier rejection** before the median is
//! taken: on shared hosts, slow samples reflect neighbor load rather than
//! the code under test, so samples more than `MAD_REJECT_K` median absolute
//! deviations *above* the raw median are discarded (low samples are signal
//! and always kept). The reported statistics are the post-rejection median,
//! the overall minimum, the MAD itself, and how many samples were dropped —
//! making `BENCH_micro.json` deltas much harder to fake out with a noisy
//! neighbor.
//!
//! Output goes to stdout in a stable `group/name  median_ns` format. When
//! the `BENCH_JSON` environment variable names a file, a JSON document with
//! every measurement is also written there (the repo's bench scripts use
//! this to persist `BENCH_micro.json`).

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// High-outlier rejection threshold: samples above
/// `median + MAD_REJECT_K × MAD` are discarded as neighbor noise.
pub const MAD_REJECT_K: f64 = 5.0;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/benchmark` identifier.
    pub id: String,
    /// Median nanoseconds per iteration, after MAD outlier rejection.
    pub median_ns: f64,
    /// Fastest sample (ns/iter) — the noise-robust statistic on shared
    /// hosts, where slow samples reflect neighbor load, not the code.
    pub min_ns: f64,
    /// Median absolute deviation of all samples around the raw median
    /// (ns/iter) — the spread estimate the rejection threshold uses.
    pub mad_ns: f64,
    /// Samples discarded as high outliers (`> median + MAD_REJECT_K × MAD`).
    pub outliers_rejected: usize,
    /// Iterations per sample used after calibration.
    pub iters_per_sample: u64,
    /// Number of samples taken (before rejection).
    pub samples: usize,
    /// Optional throughput annotation.
    pub throughput: Option<Throughput>,
}

/// Throughput annotation (reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A parameterised benchmark id, rendered as `name/param`.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            rendered: format!("{}/{param}", name.into()),
        }
    }

    /// Parameter-only id (used inside `bench_with_input` groups).
    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            rendered: param.to_string(),
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    results: Rc<RefCell<Vec<Measurement>>>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Accept and ignore criterion's CLI surface; honour a positional
        // filter string (`cargo bench -- name`) like the real crate.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg.starts_with('-') {
                continue; // --bench, --noplot, --save-baseline, ...
            }
            filter = Some(arg);
        }
        Criterion {
            filter,
            results: Rc::new(RefCell::new(Vec::new())),
        }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            criterion: self,
        }
    }

    /// Run a standalone (ungrouped) benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
    }

    fn record(&self, m: Measurement) {
        let line = match m.throughput {
            Some(Throughput::Bytes(b)) => {
                let gib = (b as f64) / m.median_ns; // bytes/ns == GB/s
                format!("{:<44} {:>12.1} ns/iter  ({:.2} GB/s)", m.id, m.median_ns, gib)
            }
            Some(Throughput::Elements(e)) => {
                let meps = (e as f64) / m.median_ns * 1000.0; // elems/us
                format!("{:<44} {:>12.1} ns/iter  ({:.1} Kelem/s)", m.id, m.median_ns, meps * 1000.0)
            }
            None => format!(
                "{:<44} {:>12.1} ns/iter  (min {:.1}, ±{:.1} mad{})",
                m.id,
                m.median_ns,
                m.min_ns,
                m.mad_ns,
                if m.outliers_rejected > 0 {
                    format!(", {} outliers dropped", m.outliers_rejected)
                } else {
                    String::new()
                },
            ),
        };
        println!("{line}");
        self.results.borrow_mut().push(m);
    }

    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    /// Write the JSON report if `BENCH_JSON` is set. Called by
    /// `criterion_main!` after all groups run.
    pub fn final_summary(&self) {
        let Some(path) = std::env::var_os("BENCH_JSON") else {
            return;
        };
        let results = self.results.borrow();
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, m) in results.iter().enumerate() {
            let sep = if i + 1 == results.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"mad_ns\": {:.1}, \"outliers_rejected\": {}, \"iters_per_sample\": {}, \"samples\": {}}}{sep}\n",
                m.id, m.median_ns, m.min_ns, m.mad_ns, m.outliers_rejected, m.iters_per_sample, m.samples
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("criterion-shim: could not write {path:?}: {e}");
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (also scales measurement time down for slow
    /// routines, mirroring how criterion uses it).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Annotate following benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = self.qualified(&name.into_bench_id());
        if self.criterion.matches(&id) {
            let m = run_bench(&id, self.sample_size, self.throughput, |b| f(b));
            self.criterion.record(m);
        }
        self
    }

    /// Run one benchmark with an input parameter.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = self.qualified(&id.rendered);
        if self.criterion.matches(&id) {
            let m = run_bench(&id, self.sample_size, self.throughput, |b| f(b, input));
            self.criterion.record(m);
        }
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}

    fn qualified(&self, name: &str) -> String {
        if self.name.is_empty() {
            name.to_owned()
        } else {
            format!("{}/{name}", self.name)
        }
    }
}

/// Accepts both `&str` and [`BenchmarkId`] benchmark names.
pub trait IntoBenchId {
    /// Render to the flat id string.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.rendered
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the routine.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    sample_medians_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate: target ~2ms per sample, capped batches.
        let t0 = Instant::now();
        black_box(routine());
        let first = t0.elapsed();
        let target = Duration::from_millis(2);
        let iters = if first.is_zero() {
            1024
        } else {
            (target.as_nanos() / first.as_nanos().max(1)).clamp(1, 100_000) as u64
        };
        self.iters_per_sample = iters;
        self.sample_medians_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.sample_medians_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Robust statistics over raw samples: `(median, min, mad, rejected)`.
/// The median is taken after dropping samples more than [`MAD_REJECT_K`]
/// MADs *above* the raw median; low samples are never rejected (on a
/// shared host, fast is signal and slow is neighbors).
fn robust_stats(xs: &mut [f64]) -> (f64, f64, f64, usize) {
    if xs.is_empty() {
        return (0.0, 0.0, 0.0, 0);
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let raw_median = xs[xs.len() / 2];
    let mut deviations: Vec<f64> = xs.iter().map(|x| (x - raw_median).abs()).collect();
    deviations.sort_by(|a, b| a.partial_cmp(b).expect("finite deviations"));
    let mad = deviations[deviations.len() / 2];
    // MAD of 0 (over half the samples identical) keeps everything at or
    // below the median and rejects anything above it only if strictly
    // greater — use the threshold as-is; cutoff == median in that case.
    let cutoff = raw_median + MAD_REJECT_K * mad;
    let kept = xs.partition_point(|x| *x <= cutoff);
    let rejected = xs.len() - kept;
    let retained = &xs[..kept];
    let median = retained[retained.len() / 2];
    (median, xs[0], mad, rejected)
}

fn run_bench(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) -> Measurement {
    let mut b = Bencher {
        iters_per_sample: 0,
        samples: sample_size,
        sample_medians_ns: Vec::new(),
    };
    f(&mut b);
    let mut xs = b.sample_medians_ns.clone();
    let (median, min, mad, rejected) = robust_stats(&mut xs);
    Measurement {
        id: id.to_owned(),
        median_ns: median,
        min_ns: min,
        mad_ns: mad,
        outliers_rejected: rejected,
        iters_per_sample: b.iters_per_sample,
        samples: b.sample_medians_ns.len(),
        throughput,
    }
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declare the bench `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let m = run_bench("t/x", 5, None, |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        assert!(m.median_ns > 0.0);
        assert_eq!(m.samples, 5);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("fib", 42).rendered, "fib/42");
    }

    #[test]
    fn mad_rejects_high_outliers_only() {
        // 9 tight samples plus one 50× neighbor-noise spike: the spike is
        // dropped, the median stays in the tight cluster, the min survives.
        let mut xs = vec![10.0, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9, 10.3, 9.7, 500.0];
        let (median, min, mad, rejected) = robust_stats(&mut xs);
        assert_eq!(rejected, 1, "spike rejected");
        assert!((9.5..=10.5).contains(&median), "median in cluster: {median}");
        assert_eq!(min, 9.5);
        assert!(mad > 0.0 && mad < 1.0, "tight spread: {mad}");
        // Low samples are never rejected: fast is signal.
        let mut xs = vec![10.0, 10.0, 10.0, 10.0, 1.0];
        let (_, min, _, rejected) = robust_stats(&mut xs);
        assert_eq!(rejected, 0);
        assert_eq!(min, 1.0);
    }

    #[test]
    fn mad_zero_spread_keeps_everything() {
        let mut xs = vec![7.0; 12];
        let (median, min, mad, rejected) = robust_stats(&mut xs);
        assert_eq!((median, min, mad, rejected), (7.0, 7.0, 0.0, 0));
    }

    #[test]
    fn robust_stats_empty_and_singleton() {
        let (median, min, mad, rejected) = robust_stats(&mut []);
        assert_eq!((median, min, mad, rejected), (0.0, 0.0, 0.0, 0));
        let mut one = [42.0];
        assert_eq!(robust_stats(&mut one), (42.0, 42.0, 0.0, 0));
    }
}
