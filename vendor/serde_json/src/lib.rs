//! Minimal, dependency-free stand-in for `serde_json`: a [`Value`] tree,
//! the [`json!`] constructor macro, a strict parser ([`from_str`]), and a
//! pretty printer ([`to_string_pretty`]). No serde trait machinery — values
//! convert through `From` impls for the types this workspace feeds in.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document tree. Objects keep sorted key order (BTreeMap), which is
/// deterministic across runs — good for diffable artifacts.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; integers print without decimals).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as f64, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if pretty {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    item.write(out, indent + 1, pretty);
                    if i + 1 != items.len() {
                        out.push(',');
                        if !pretty {
                            out.push(' ');
                        }
                    }
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if pretty {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1, pretty);
                    if i + 1 != map.len() {
                        out.push(',');
                        if !pretty {
                            out.push(' ');
                        }
                    }
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, 0, false);
        f.write_str(&s)
    }
}

// --- conversions ------------------------------------------------------------

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<&&str> for Value {
    fn from(s: &&str) -> Value {
        Value::String((*s).to_owned())
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

macro_rules! number_from {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(n as f64)
            }
        }
        impl From<&$t> for Value {
            fn from(n: &$t) -> Value {
                Value::Number(*n as f64)
            }
        }
    )*};
}

number_from!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! array_from {
    ($($t:ty => |$x:ident| $conv:expr),* $(,)?) => {$(
        impl From<Vec<$t>> for Value {
            fn from(items: Vec<$t>) -> Value {
                Value::Array(items.iter().map(|$x| $conv).collect())
            }
        }
        impl From<&Vec<$t>> for Value {
            fn from(items: &Vec<$t>) -> Value {
                Value::Array(items.iter().map(|$x| $conv).collect())
            }
        }
        impl From<&[$t]> for Value {
            fn from(items: &[$t]) -> Value {
                Value::Array(items.iter().map(|$x| $conv).collect())
            }
        }
    )*};
}

array_from! {
    String => |x| Value::String(x.clone()),
    Vec<String> => |x| Value::from(x),
    Value => |x| x.clone(),
    u64 => |x| Value::Number(*x as f64),
    f64 => |x| Value::Number(*x),
}

// --- indexing ----------------------------------------------------------------

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

// --- ser/de ------------------------------------------------------------------

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Pretty-print with two-space indentation.
pub fn to_string_pretty<V: Into<Value> + Clone>(value: &V) -> Result<String, Error> {
    let v: Value = value.clone().into();
    let mut out = String::new();
    v.write(&mut out, 0, true);
    Ok(out)
}

/// Compact print.
pub fn to_string<V: Into<Value> + Clone>(value: &V) -> Result<String, Error> {
    Ok(value.clone().into().to_string())
}

/// Parse a JSON document.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let bytes: Vec<char> = input.chars().collect();
    let mut p = Parser { chars: &bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(Error(format!("trailing characters at {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Result<char, Error> {
        self.chars
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, c: char) -> Result<(), Error> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected {:?} at {}", c, self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek()? {
            '{' => self.object(),
            '[' => self.array(),
            '"' => Ok(Value::String(self.string()?)),
            't' => self.literal("true", Value::Bool(true)),
            'f' => self.literal("false", Value::Bool(false)),
            'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        for c in text.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek()? == '}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek()? {
                ',' => {
                    self.pos += 1;
                }
                '}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                c => return Err(Error(format!("expected ',' or '}}', found {c:?}"))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == ']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                ',' => {
                    self.pos += 1;
                }
                ']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => return Err(Error(format!("expected ',' or ']', found {c:?}"))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let c = self.peek()?;
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let e = self.peek()?;
                    self.pos += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{0008}'),
                        'f' => out.push('\u{000C}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let h = self.peek()?;
                                self.pos += 1;
                                code = code * 16
                                    + h.to_digit(16)
                                        .ok_or_else(|| Error("bad \\u escape".into()))?;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape \\{other}"))),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while self.chars.get(self.pos).is_some_and(|c| {
            c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
        }) {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("bad number {text:?}")))
    }
}

/// Build a [`Value`] from JSON-looking syntax. Field values are converted
/// through `Into<Value>` on a reference, so borrowed fields work.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = ::std::collections::BTreeMap::new();
        $( map.insert($key.to_string(), $crate::Value::from(&$val)); )*
        $crate::Value::Object(map)
    }};
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from(&$item) ),* ])
    };
    ($other:expr) => { $crate::Value::from(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = json!({
            "id": "table1",
            "n": 3u32,
            "tags": vec!["a".to_string(), "b".to_string()],
        });
        let pretty = to_string_pretty(&v).unwrap();
        let back = from_str(&pretty).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["id"], "table1");
        assert_eq!(back["tags"][1], "b");
        assert_eq!(back["missing"], Value::Null);
    }

    #[test]
    fn escapes() {
        let v = Value::String("a\"b\\c\nd".into());
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn nested_vec_of_vec() {
        let rows = vec![vec!["a".to_string()], vec!["b".to_string()]];
        let v = json!({ "rows": rows });
        assert_eq!(v["rows"][1][0], "b");
    }
}
