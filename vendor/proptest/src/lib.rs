//! Minimal, dependency-free stand-in for the `proptest` crate, built for
//! offline workspaces. It keeps the same *testing model* — strategies
//! generate random inputs, `proptest!` runs a case budget, `prop_assert*`
//! failures report the failing case — but with a much smaller engine:
//!
//! * generation is deterministic (seeded from the test name + case index),
//!   so failures reproduce across runs and machines;
//! * there is no shrinking — the failing inputs are printed as generated;
//! * the regex strategy supports the character-class subset this
//!   workspace's patterns use (classes, ranges, `{m,n}` repeats, literals,
//!   `&&[^…]` class intersection).
//!
//! Covered API: `proptest!`, `prop_compose!`, `prop_oneof!`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, `any::<T>()`,
//! integer-range strategies, `Just`, tuple strategies, string-literal regex
//! strategies, `collection::{vec, btree_map, btree_set}`,
//! `string::string_regex`, `num::*::ANY`, `array::uniform32`,
//! `ProptestConfig::with_cases`, and `TestCaseError`.

#![forbid(unsafe_code)]

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest};
}

pub mod test_runner {
    //! Case scheduling, deterministic seeding, and failure reporting.

    use std::fmt;

    /// Per-test configuration (only the case budget is modelled).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Config { cases }
        }
    }

    /// A property failure (no reject/filter machinery — just failure text).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Construct a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }

        /// Alias used by some call styles.
        #[allow(non_snake_case)]
        pub fn Fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::fail(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic generator handed to strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded generator.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Multiply-shift bounded draw (bias is irrelevant for tests).
            (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
        }

        /// Uniform draw in `[lo, hi]` inclusive.
        pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
            if lo >= hi {
                return lo;
            }
            let span = hi - lo;
            if span == u64::MAX {
                return self.next_u64();
            }
            lo + self.below(span + 1)
        }

        /// Bernoulli(1/2).
        pub fn flip(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// Drives the cases of one property.
    pub struct TestRunner {
        base_seed: u64,
        cases: u32,
        name: &'static str,
    }

    impl TestRunner {
        /// Runner for the property called `name`.
        pub fn new(config: Config, name: &'static str) -> TestRunner {
            // FNV-1a of the property name: deterministic per-test streams.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                base_seed: h,
                cases: config.cases.max(1),
                name,
            }
        }

        /// The case budget.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The property name (for failure messages).
        pub fn name(&self) -> &'static str {
            self.name
        }

        /// The generator for case `case`.
        pub fn rng_for(&self, case: u32) -> TestRng {
            TestRng::new(self.base_seed.wrapping_add(0x1000_0000_0000_0001u64.wrapping_mul(u64::from(case) + 1)))
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and basic combinators.

    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a deterministic RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A strategy backed by a generation closure (used by `prop_compose!`).
    pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T>(pub F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among boxed strategies (used by `prop_oneof!`).
    pub struct OneOf<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> OneOf<V> {
        /// An empty option set (must gain at least one option before use).
        pub fn empty() -> OneOf<V> {
            OneOf {
                options: Vec::new(),
            }
        }

        /// Builder: add one option (lets `prop_oneof!` infer `V` from the
        /// first strategy without naming it).
        pub fn with<S: Strategy<Value = V> + 'static>(mut self, s: S) -> OneOf<V> {
            self.options.push(Box::new(s));
            self
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            assert!(!self.options.is_empty(), "prop_oneof! needs at least one option");
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.range_inclusive(self.start as u64, (self.end - 1) as u64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.range_inclusive(*self.start() as u64, *self.end() as u64) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    signed_range_strategies!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + u * (self.end - self.start)
        }
    }

    /// String literals act as regex strategies, as in real proptest.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::Regex::compile(self)
                .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
                .generate(rng)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(pub PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<T> Copy for Any<T> {}

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias towards small values and boundaries, like real
                    // proptest's binary-search-friendly distributions.
                    match rng.below(8) {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => (rng.next_u64() % 16) as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.flip()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Option<T> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(T::arbitrary(rng))
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};

    /// An inclusive size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            rng.range_inclusive(self.min as u64, self.max as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector of `elem` values with a size drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// A map with up to the drawn number of entries (duplicate keys merge).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A set with up to the drawn number of elements (duplicates merge).
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            for _ in 0..n {
                out.insert(self.elem.generate(rng));
            }
            out
        }
    }
}

pub mod string {
    //! Regex-shaped string strategies (character-class subset).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Error from [`string_regex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One regex atom plus its repeat window.
    #[derive(Debug, Clone)]
    struct Atom {
        /// Candidate characters (singleton for literals).
        chars: Vec<char>,
        min: u32,
        max: u32,
    }

    /// A compiled pattern: a sequence of repeated character choices.
    #[derive(Debug, Clone)]
    pub struct Regex {
        atoms: Vec<Atom>,
    }

    impl Regex {
        /// Compile the supported subset: literals, escapes, `[...]` classes
        /// (ranges, negation via `&&[^...]` intersection), `{n}` / `{m,n}`.
        pub fn compile(pattern: &str) -> Result<Regex, Error> {
            let chars: Vec<char> = pattern.chars().collect();
            let mut i = 0;
            let mut atoms = Vec::new();
            while i < chars.len() {
                let set: Vec<char> = match chars[i] {
                    '[' => {
                        let (set, next) = parse_class(&chars, i + 1, pattern)?;
                        i = next;
                        set
                    }
                    '\\' => {
                        let c = *chars
                            .get(i + 1)
                            .ok_or_else(|| Error(pattern.to_owned()))?;
                        i += 2;
                        vec![unescape(c)]
                    }
                    '.' => {
                        i += 1;
                        (' '..='~').collect()
                    }
                    '(' | ')' | '|' | '*' | '+' | '?' => {
                        return Err(Error(format!("{pattern}: unsupported operator {:?}", chars[i])));
                    }
                    c => {
                        i += 1;
                        vec![c]
                    }
                };
                let (min, max) = if chars.get(i) == Some(&'{') {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i)
                        .ok_or_else(|| Error(pattern.to_owned()))?;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().map_err(|_| Error(pattern.to_owned()))?,
                            hi.trim().parse().map_err(|_| Error(pattern.to_owned()))?,
                        ),
                        None => {
                            let n: u32 = body.trim().parse().map_err(|_| Error(pattern.to_owned()))?;
                            (n, n)
                        }
                    }
                } else {
                    (1, 1)
                };
                if set.is_empty() {
                    return Err(Error(format!("{pattern}: empty character class")));
                }
                atoms.push(Atom {
                    chars: set,
                    min,
                    max,
                });
            }
            Ok(Regex { atoms })
        }

        /// Generate one matching string.
        pub fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = rng.range_inclusive(u64::from(atom.min), u64::from(atom.max));
                for _ in 0..n {
                    let i = rng.below(atom.chars.len() as u64) as usize;
                    out.push(atom.chars[i]);
                }
            }
            out
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    /// Parse a `[...]` class starting just past the `[`. Returns the
    /// candidate set and the index one past the closing `]`. Supports
    /// leading `^` negation (over printable ASCII) and `&&[^...]`
    /// intersection-with-negation.
    fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> Result<(Vec<char>, usize), Error> {
        let mut include: Vec<char> = Vec::new();
        let mut exclude: Vec<char> = Vec::new();
        let negated = chars.get(i) == Some(&'^');
        if negated {
            i += 1;
        }
        let mut first = true;
        loop {
            let c = *chars.get(i).ok_or_else(|| Error(pattern.to_owned()))?;
            match c {
                ']' if !first => {
                    i += 1;
                    break;
                }
                '&' if chars.get(i + 1) == Some(&'&') => {
                    // `&&[^...]`: subtract the nested negated class.
                    if chars.get(i + 2) != Some(&'[') || chars.get(i + 3) != Some(&'^') {
                        return Err(Error(format!("{pattern}: only &&[^...] intersections supported")));
                    }
                    let (sub, next) = parse_class(chars, i + 4, pattern)?;
                    exclude.extend(sub);
                    i = next;
                }
                '\\' => {
                    let e = *chars.get(i + 1).ok_or_else(|| Error(pattern.to_owned()))?;
                    include.push(unescape(e));
                    i += 2;
                }
                lo => {
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
                        let hi = chars[i + 2];
                        if hi < lo {
                            return Err(Error(format!("{pattern}: inverted range {lo}-{hi}")));
                        }
                        include.extend(lo..=hi);
                        i += 3;
                    } else {
                        include.push(lo);
                        i += 1;
                    }
                }
            }
            first = false;
        }
        let mut set: Vec<char> = if negated {
            (' '..='~').filter(|c| !include.contains(c)).collect()
        } else {
            include
        };
        set.retain(|c| !exclude.contains(c));
        Ok((set, i))
    }

    /// The strategy form of [`Regex::compile`].
    pub fn string_regex(pattern: &str) -> Result<Regex, Error> {
        Regex::compile(pattern)
    }

    impl Strategy for Regex {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            Regex::generate(self, rng)
        }
    }
}

pub mod num {
    //! `proptest::num::<type>::ANY` constants.

    macro_rules! any_mods {
        ($($m:ident => $t:ty),*) => {$(
            pub mod $m {
                //! Canonical full-range strategy for this integer type.
                use std::marker::PhantomData;
                /// Any value of this type.
                pub const ANY: crate::arbitrary::Any<$t> = crate::arbitrary::Any(PhantomData);
            }
        )*};
    }

    any_mods!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize, i64 => i64);
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; 32]`.
    pub struct Uniform32<S>(S);

    /// 32 independent draws from `elem`.
    pub fn uniform32<S: Strategy>(elem: S) -> Uniform32<S> {
        Uniform32(elem)
    }

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

/// Assert inside a property; failures abort only the current case with a
/// report instead of panicking the whole process (as in real proptest, the
/// enclosing generated test then panics with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            va == vb,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), va, vb
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            va == vb,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), va, vb
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            va != vb,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), va
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            va != vb,
            "{}\n  both: {:?}",
            format!($($fmt)*), va
        );
    }};
}

/// Uniform choice among same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::empty()$(.with($s))+
    };
}

/// Define a named composite strategy:
/// `prop_compose! { fn name()(a in s1, b in s2) -> T { body } }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$attr:meta])*
        $vis:vis fn $name:ident($($fnarg:ident: $fnty:ty),* $(,)?)
        ($($arg:ident in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$attr])*
        $vis fn $name($($fnarg: $fnty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Run properties over generated inputs:
/// `proptest! { #[test] fn prop(x in strat) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        cfg = ($cfg:expr);
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let runner = $crate::test_runner::TestRunner::new($cfg, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{} (deterministic seed; rerun reproduces):\n{}",
                            runner.name(), case + 1, runner.cases(), e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u8..10, y in 1u64..=4, z in 0usize..100) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!(z < 100);
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn regex_shapes(s in "[a-z][a-z0-9-]{0,5}") {
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }

        #[test]
        fn oneof_picks_members(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }

    prop_compose! {
        fn pair()(a in 0u8..4, b in 0u8..4) -> (u8, u8) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed(p in pair()) {
            prop_assert!(p.0 < 4 && p.1 < 4);
        }
    }

    #[test]
    fn intersection_class_excludes() {
        let r = crate::string::string_regex("[ -~&&[^\\n]]{0,40}").unwrap();
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..50 {
            let s = r.generate(&mut rng);
            assert!(!s.contains('\n'));
            assert!(s.len() <= 40);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let runner = crate::test_runner::TestRunner::new(
            crate::test_runner::Config::with_cases(4),
            "stable",
        );
        let a: Vec<u64> = (0..4).map(|c| runner.rng_for(c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| runner.rng_for(c).next_u64()).collect();
        assert_eq!(a, b);
    }
}
