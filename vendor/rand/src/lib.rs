//! Minimal stand-in for `rand`: only the [`RngCore`] trait (and its error
//! type), which is all this workspace uses — the deterministic generator in
//! `lidc-simcore` implements the trait itself.

#![forbid(unsafe_code)]

use std::fmt;

/// Random-generator error (never produced by infallible generators).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Core random-generator interface (API-compatible subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fallible fill (infallible here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}
