//! Minimal stand-in for `parking_lot`, wrapping `std::sync` primitives with
//! parking_lot's non-poisoning API (lock methods return guards directly).
//! Poisoning is handled by taking the inner value from a poisoned lock —
//! matching parking_lot, which has no poisoning at all.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex that hands out guards without a poison `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Lock, blocking until acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&*self.lock()).finish()
    }
}

/// A reader-writer lock that hands out guards without a poison `Result`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&*self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(*rw.read(), vec![1, 2, 3]);
    }
}
