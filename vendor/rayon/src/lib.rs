//! Minimal stand-in for `rayon`: implements `slice.par_iter().map(f).collect()`
//! with real data parallelism (scoped std threads over contiguous chunks,
//! results concatenated in order). Only the surface this workspace uses.

#![forbid(unsafe_code)]

use std::marker::PhantomData;

/// The rayon-style prelude.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// Extension trait providing [`IntoParallelRefIterator::par_iter`] on slices
/// and slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;

    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element through `f` (applied in parallel at collect time).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
            _marker: PhantomData,
        }
    }
}

/// A mapped parallel iterator; consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
    _marker: PhantomData<&'a T>,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    /// Apply the map across worker threads and collect results in input
    /// order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if workers <= 1 || n < 2 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut per_chunk: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|items| scope.spawn(move || items.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                per_chunk.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        per_chunk.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled.len(), xs.len());
        assert!(doubled.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u8> = Vec::new();
        let out: Vec<u8> = none.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u8];
        let out: Vec<u8> = one[..].par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
