//! Minimal, dependency-free stand-in for the `bytes` crate, built for
//! offline workspaces. It implements the subset of the API this repository
//! uses with the same semantics that matter here:
//!
//! * [`Bytes`] is a refcounted view into a shared buffer: `clone()` and
//!   [`Bytes::slice`] / [`Bytes::slice_ref`] are O(1) and allocation-free.
//! * [`BytesMut`] is a growable buffer with big-endian put helpers (via the
//!   [`BufMut`] trait) that [`BytesMut::freeze`]s into a `Bytes` without
//!   copying.
//!
//! Equality, ordering, and hashing are by byte content, so `Bytes` values
//! slicing different arenas compare like plain `[u8]`.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::{Arc, OnceLock};

fn empty_arc() -> Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new())).clone()
}

/// A cheaply cloneable, immutable view into a shared byte buffer.
#[derive(Clone)]
pub struct Bytes {
    buf: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty `Bytes` (no allocation).
    pub fn new() -> Bytes {
        Bytes {
            buf: empty_arc(),
            off: 0,
            len: 0,
        }
    }

    /// Copy `data` into a fresh owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// A `Bytes` over static data (copies here; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) sub-view sharing the same underlying buffer.
    ///
    /// Panics when the range is out of bounds, matching the real crate.
    #[inline]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice range {start}..{end} out of bounds of {}",
            self.len
        );
        Bytes {
            buf: self.buf.clone(),
            off: self.off + start,
            len: end - start,
        }
    }

    /// O(1) view of `subset`, which must lie inside `self` (same buffer).
    ///
    /// This is the zero-copy hook the TLV decoder uses: decode hands out
    /// `&[u8]` slices of the wire buffer, and `slice_ref` turns them back
    /// into refcounted views without copying.
    #[inline]
    pub fn slice_ref(&self, subset: &[u8]) -> Bytes {
        if subset.is_empty() {
            return Bytes::new();
        }
        let whole = self.as_ref().as_ptr() as usize;
        let sub = subset.as_ptr() as usize;
        assert!(
            sub >= whole && sub + subset.len() <= whole + self.len,
            "slice_ref subset is not inside this Bytes"
        );
        let start = sub - whole;
        self.slice(start..start + subset.len())
    }

    /// Iterate the bytes.
    pub fn iter(&self) -> std::slice::Iter<'_, u8> {
        self.as_ref().iter()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            buf: Arc::new(v),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Bytes {
        m.freeze()
    }
}

impl PartialEq for Bytes {
    #[inline]
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// Growable byte buffer with big-endian put helpers.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    /// Empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Append a byte slice.
    #[inline]
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.vec.extend_from_slice(data);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    // Inherent put helpers shadow the `BufMut` defaults with faster
    // implementations (`put_u8` is a plain `Vec::push`, not a 1-byte
    // memcpy) — they are the hot path of the TLV encoder and the name
    // parser's arena fill.

    /// Append one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.vec.push(v);
    }

    /// Append a slice.
    #[inline]
    pub fn put_slice(&mut self, data: &[u8]) {
        self.vec.extend_from_slice(data);
    }

    /// Append a big-endian u16.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.vec.extend_from_slice(&v.to_be_bytes());
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> BytesMut {
        BytesMut {
            vec: data.to_vec(),
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> BytesMut {
        BytesMut { vec }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.vec).fmt(f)
    }
}

/// Write-side trait: the subset of `bytes::BufMut` used here.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, data: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.vec.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_buffer() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let s2 = s.slice(1..2);
        assert_eq!(s2.as_ref(), &[3]);
    }

    #[test]
    fn slice_ref_zero_copy() {
        let b = Bytes::from(vec![9u8; 32]);
        let sub = &b[4..12];
        let v = b.slice_ref(sub);
        assert_eq!(v.len(), 8);
        assert_eq!(v.as_ref(), sub);
    }

    #[test]
    fn bytes_mut_put_and_freeze() {
        let mut m = BytesMut::new();
        m.put_u8(1);
        m.put_u16(0x0203);
        m.put_u32(0x04050607);
        m.put_u64(0x08090A0B0C0D0E0F);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(b.len(), 17);
        assert_eq!(&b[..3], &[1, 2, 3]);
        assert_eq!(&b[15..], b"xy");
    }

    #[test]
    fn eq_hash_by_content() {
        use std::collections::hash_map::DefaultHasher;
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4]).slice(1..4);
        assert_eq!(a, b);
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }
}
