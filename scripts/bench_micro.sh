#!/usr/bin/env bash
# Run the `micro` criterion bench suite and persist the numbers as JSON.
#
#   ./scripts/bench_micro.sh [output.json] [filter]
#
# Defaults to BENCH_micro.json in the repo root. The local criterion
# stand-in (vendor/criterion) honours BENCH_JSON and writes one record per
# benchmark: {id, median_ns, iters_per_sample, samples}. Pass a filter
# (e.g. "naming") to run a subset — note the JSON then only contains that
# subset.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_micro.json}"
FILTER="${2:-}"

BENCH_JSON="$OUT" cargo bench --bench micro -- --noplot ${FILTER:+"$FILTER"}
echo "wrote $OUT"
