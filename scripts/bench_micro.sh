#!/usr/bin/env bash
# Run the `micro` criterion bench suite and fold the numbers into the
# trajectory file.
#
#   ./scripts/bench_micro.sh [output.json] [filter]
#
# Defaults to BENCH_micro.json in the repo root. The local criterion
# stand-in (vendor/criterion) honours BENCH_JSON and writes one raw record
# per benchmark: {id, median_ns, min_ns, mad_ns, ...}. When the output file
# already holds the trajectory format (a "current" map, as BENCH_micro.json
# does), the raw run is *merged* into it: every measured bench id's
# median_ns/min_ns refreshes "current" (new ids — e.g. the
# align/{seq,par,extend,extend_scalar} aligner-kernel group, cs_evict/*,
# cs_churn/*, chaos/recovery_latency and chaos/verify_overhead, the
# byzantine variant pricing per-hop Data verification — are added), and
# speedups
# against any recorded
# "baseline" entry are recomputed. Otherwise the raw shim output is
# written as-is. Pass a filter (e.g. "cs_" or "align/") to run and
# refresh only a subset.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_micro.json}"
FILTER="${2:-}"

RAW="$(mktemp)"
MERGED="$(mktemp)"
trap 'rm -f "$RAW" "$MERGED"' EXIT
BENCH_JSON="$RAW" cargo bench --bench micro -- --noplot ${FILTER:+"$FILTER"}

# Merge into the trajectory format when $OUT already uses it. Exit code 2
# is the deliberate "not a trajectory file" sentinel (fall back to the raw
# copy); any other failure aborts so a merge bug can never clobber the
# trajectory history. The merge writes to a temp file and renames, so a
# mid-write crash leaves $OUT untouched.
merge_status=0
if [ -f "$OUT" ]; then
  python3 - "$RAW" "$OUT" "$MERGED" <<'PY' || merge_status=$?
import json, os, sys

raw_path, out_path, merged_path = sys.argv[1], sys.argv[2], sys.argv[3]
with open(out_path) as f:
    doc = json.load(f)
if not isinstance(doc, dict) or "current" not in doc:
    sys.exit(2)  # not a trajectory file: the caller copies the raw output
with open(raw_path) as f:
    raw = json.load(f)["benchmarks"]
for m in raw:
    doc["current"][m["id"]] = {"median_ns": m["median_ns"], "min_ns": m["min_ns"]}
    base = doc.get("baseline", {}).get(m["id"])
    if base and m["median_ns"] > 0 and m["min_ns"] > 0:
        doc.setdefault("speedup_median", {})[m["id"]] = round(base["median_ns"] / m["median_ns"], 2)
        doc.setdefault("speedup_min", {})[m["id"]] = round(base["min_ns"] / m["min_ns"], 2)
# Record the parallel configuration behind the thread/shard-suffixed bench
# ids (engine/parallel_dispatch/t{N}, burst/parallel_ingress/shards{N})
# plus the cores the host actually allowed — a 1-CPU container cannot show
# multi-core speedups, and the trajectory must say so.
try:
    host_cpus = len(os.sched_getaffinity(0))
except AttributeError:
    host_cpus = os.cpu_count() or 1
doc["parallel_config"] = {
    "engine_threads": [1, 4],
    "forwarder_shards": [1, 4],
    "host_usable_cpus": host_cpus,
}
# Ditto for the horizon-scheduler group (engine/horizon/{multi_cluster,t1,t4}):
# multi_cluster is the legacy-loop reference on the same 3-cluster pass; the
# t{N} rows run the conservative horizon scheduler. On a 1-CPU host the
# pooled group-advance path is skipped, so t1/t4 measure pure window
# bookkeeping, not parallel speedup.
doc["horizon"] = {
    "reference": "engine/horizon/multi_cluster",
    "engine_threads": [1, 4],
    "host_usable_cpus": host_cpus,
}
with open(merged_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
PY
else
  merge_status=2
fi

case "$merge_status" in
  0) mv "$MERGED" "$OUT"; echo "merged bench run into $OUT" ;;
  2) cp "$RAW" "$OUT"; echo "wrote $OUT (raw shim format)" ;;
  *) echo "merge failed (exit $merge_status); $OUT left untouched, raw run kept at $RAW" >&2
     trap - EXIT; rm -f "$MERGED"; exit "$merge_status" ;;
esac
