#!/usr/bin/env bash
# Run lidc-lint — the workspace determinism & actor-isolation pass — over
# the whole tree.
#
#   ./scripts/lint.sh [--json] [paths...]
#
# With no paths, scans the workspace (what CI runs). Exit codes: 0 clean,
# 1 findings, 2 usage/IO error. The rule catalogue and the allow-directive
# grammar are documented in docs/DETERMINISM.md; `cargo run -p lidc_lint
# -- --rules` prints the one-line summaries.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "$#" -eq 0 ]; then
    exec cargo run -p lidc_lint --release -q -- --workspace
fi
exec cargo run -p lidc_lint --release -q -- "$@"
