#!/usr/bin/env sh
# Pre-commit gate: lint the files changed relative to a base revision.
#
#   scripts/precommit.sh            # diff against HEAD (staged + unstaged)
#   scripts/precommit.sh origin/main
#
# The whole workspace is still analyzed (the cross-file rules need every
# caller in view); only the reporting is narrowed to your diff. Wire it
# up as a git hook with:
#
#   ln -s ../../scripts/precommit.sh .git/hooks/pre-commit
set -eu
BASE="${1:-HEAD}"
cd "$(dirname "$0")/.."
exec cargo run -q -p lidc_lint -- --changed="$BASE"
